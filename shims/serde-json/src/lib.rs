//! Offline stand-in for `serde_json`, backed by the shimmed `serde` crate's
//! value tree and hand-written JSON parser/printer.

pub use serde::{Error, Map, Number, Value};

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::parse(text)?;
    T::deserialize_value(&value)
}

/// Renders any [`serde::Serialize`] type as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::format_compact(&value.serialize_value()))
}

/// Renders any [`serde::Serialize`] type as pretty-printed JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::format_pretty(&value.serialize_value()))
}

/// Converts any [`serde::Serialize`] type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Reconstructs a type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<Option<u64>> = from_str("[1, null, 3]").unwrap();
        assert_eq!(v, vec![Some(1), None, Some(3)]);
        assert_eq!(to_string(&v).unwrap(), "[1,null,3]");
        let m: std::collections::HashMap<String, f64> = from_str("{\"a\": 1.5, \"b\": 2}").unwrap();
        assert_eq!(m["a"], 1.5);
        assert_eq!(m["b"], 2.0);
    }

    #[test]
    fn value_supports_object_editing() {
        let mut v: Value = from_str("{\"keep\": 1, \"drop\": true}").unwrap();
        v.as_object_mut().unwrap().remove("drop");
        assert_eq!(v.to_string(), "{\"keep\":1}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s: String = from_str("\"a\\\"b\\\\c\\n\\u0041\"").unwrap();
        assert_eq!(s, "a\"b\\c\nA");
        let back = to_string(&s).unwrap();
        let again: String = from_str(&back).unwrap();
        assert_eq!(again, s);
    }

    #[test]
    fn astral_plane_escapes_and_bad_surrogates() {
        let s: String = from_str("\"\\ud801\\udc00\"").unwrap();
        assert_eq!(s, "\u{10400}");
        assert!(from_str::<String>("\"\\ud800\\ue000\"").is_err());
        assert!(from_str::<String>("\"\\ud800x\"").is_err());
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1e300f64).unwrap(), "1e300");
    }
}
