//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Supports the subset this workspace's tests use: the `proptest!` macro
//! (with an optional `#![proptest_config(...)]` inner attribute),
//! `prop_assert!` / `prop_assert_eq!`, numeric-range strategies,
//! `any::<T>()`, strategy tuples, `prop::collection::vec`,
//! `prop::sample::select` and `Strategy::prop_map`.
//!
//! Sampling is pseudo-random but fully deterministic: every generated test
//! derives its RNG seed from the test's name, so failures reproduce exactly.
//! There is no shrinking — the failing inputs are printed instead.

use std::ops::Range;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while still
        // exercising a meaningful spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 RNG used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (stable across runs and platforms).
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty integer range strategy");
                let span = (hi - lo) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded arbitrary floats: plenty for simulation-style tests and
        // avoids NaN/infinity noise.
        (rng.next_f64() - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// A strategy that always yields a clone of one value.
pub struct JustStrategy<T>(pub T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Just(x)`: a strategy producing exactly `x`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy(value)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A vector-length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.0.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors proptest's `prop::` module shorthand.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a property holds, reporting the failing message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for _ in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}
