//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just the API surface this workspace's benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`, `Bencher::iter`
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! timed over a bounded number of iterations and a mean wall-clock time is
//! printed; there is no statistical analysis or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Maximum measured iterations per benchmark (keeps `cargo bench` bounded).
const MAX_ITERS: u64 = 10;

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label, 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of samples (clamped by the shim's iteration bound).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut wrapper = |b: &mut Bencher| f(b, input);
        run_benchmark(&label, self.sample_size, &mut wrapper);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let iters = (sample_size as u64).clamp(1, MAX_ITERS);
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iters as f64;
    println!("bench {label:<50} {:>12.6} s/iter ({iters} iters)", mean);
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
