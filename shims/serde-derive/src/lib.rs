//! Offline `#[derive(Serialize, Deserialize)]` for the shimmed `serde` crate.
//!
//! The build environment has no crates.io access, so this proc macro parses
//! the derive input by hand (no `syn`/`quote`) and emits impls of the shim's
//! value-tree traits. It supports exactly the shapes used in this repository:
//!
//! * structs with named fields (external representation: JSON object),
//! * tuple structs (JSON array; single-field + `#[serde(transparent)]`
//!   serializes as the inner value),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde: `"Variant"`, `{"Variant": payload}`),
//! * field attributes `#[serde(default)]` and `#[serde(default = "path")]`,
//! * missing `Option<T>` fields deserialize as `None`.
//!
//! Generic types are intentionally unsupported (the repo has none).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ----- input model ----------------------------------------------------------

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    /// First path segment of the type (enough to special-case `Option`).
    type_head: String,
    default: Option<DefaultKind>,
}

enum DefaultKind {
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

// ----- token-stream parsing -------------------------------------------------

struct Attrs {
    transparent: bool,
    default: Option<DefaultKind>,
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                transparent: attrs.transparent,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                transparent: attrs.transparent,
                kind: Kind::TupleStruct(parse_tuple_fields(g.stream())),
            },
            _ => Input {
                name,
                transparent: attrs.transparent,
                kind: Kind::NamedStruct(Vec::new()),
            },
        },
        "enum" => {
            let body = match tokens.remove(pos) {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other}"),
            };
            Input {
                name,
                transparent: attrs.transparent,
                kind: Kind::Enum(parse_variants(body)),
            }
        }
        other => panic!("serde shim derive supports struct/enum, found `{other}`"),
    }
}

/// Consumes leading attributes, returning the serde-relevant ones.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> Attrs {
    let mut attrs = Attrs {
        transparent: false,
        default: None,
    };
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        let group = match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("expected attribute brackets after '#', found {other:?}"),
        };
        *pos += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let Some(TokenTree::Ident(head)) = inner.first() else {
            continue;
        };
        if head.to_string() != "serde" {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            continue;
        };
        parse_serde_args(args.stream(), &mut attrs);
    }
    attrs
}

/// Parses the inside of `#[serde(...)]`.
fn parse_serde_args(stream: TokenStream, attrs: &mut Attrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(ident) => match ident.to_string().as_str() {
                "transparent" => {
                    attrs.transparent = true;
                    i += 1;
                }
                "default" => {
                    if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                    {
                        let lit = match tokens.get(i + 2) {
                            Some(TokenTree::Literal(l)) => l.to_string(),
                            other => panic!("expected string after `default =`, found {other:?}"),
                        };
                        attrs.default = Some(DefaultKind::Path(lit.trim_matches('"').to_string()));
                        i += 3;
                    } else {
                        attrs.default = Some(DefaultKind::Std);
                        i += 1;
                    }
                }
                other => panic!("serde shim does not support `#[serde({other})]`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("unexpected token in #[serde(...)]: {other}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(ident)) = tokens.get(*pos) {
        if ident.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(ident)) => {
            *pos += 1;
            ident.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Skips a type, returning its first identifier. Commas nested in angle
/// brackets, parens or brackets do not terminate the type.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) -> String {
    let mut head = String::new();
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        match token {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                *pos += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                *pos += 1;
            }
            TokenTree::Ident(ident) => {
                if head.is_empty() {
                    head = ident.to_string();
                }
                *pos += 1;
            }
            _ => *pos += 1,
        }
    }
    head
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        let type_head = skip_type(&tokens, &mut pos);
        fields.push(Field {
            name: Some(name),
            type_head,
            default: attrs.default,
        });
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = parse_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let type_head = skip_type(&tokens, &mut pos);
        fields.push(Field {
            name: None,
            type_head,
            default: attrs.default,
        });
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _attrs = parse_attrs(&tokens, &mut pos); // e.g. #[default], doc comments
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    variants
}

// ----- code generation ------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut out = String::from("let mut map = ::serde::Map::new();\n");
            for field in fields {
                let fname = field.name.as_ref().unwrap();
                out.push_str(&format!(
                    "map.insert(\"{fname}\".to_string(), ::serde::Serialize::serialize_value(&self.{fname}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(map)");
            out
        }
        Kind::TupleStruct(fields) if fields.len() == 1 && item.transparent => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Kind::TupleStruct(fields) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(\"{vname}\".to_string(), {payload});\n\
                             ::serde::Value::Object(map)\n\
                             }}\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let fnames: Vec<&String> =
                            fields.iter().map(|f| f.name.as_ref().unwrap()).collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for fname in &fnames {
                            inner.push_str(&format!(
                                "inner.insert(\"{fname}\".to_string(), ::serde::Serialize::serialize_value({fname}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(\"{vname}\".to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n\
                             }}\n",
                            binds = fnames
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Expression deserializing named `fields` from the object expr `obj` into a
/// `Ctor { ... }` literal.
fn named_fields_ctor(ctor: &str, fields: &[Field], obj: &str, context: &str) -> String {
    let mut out = format!("{ctor} {{\n");
    for field in fields {
        let fname = field.name.as_ref().unwrap();
        let missing = match (&field.default, field.type_head.as_str()) {
            (Some(DefaultKind::Std), _) => "::std::default::Default::default()".to_string(),
            (Some(DefaultKind::Path(path)), _) => format!("{path}()"),
            (None, "Option") => "None".to_string(),
            (None, _) => format!(
                "return Err(::serde::Error::custom(\"missing field `{fname}` in {context}\"))"
            ),
        };
        out.push_str(&format!(
            "{fname}: match {obj}.get(\"{fname}\") {{\n\
             Some(__v) => ::serde::Deserialize::deserialize_value(__v)?,\n\
             None => {missing},\n\
             }},\n"
        ));
    }
    out.push('}');
    out
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let ctor = named_fields_ctor(name, fields, "obj", name);
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}, got {{v}}\")))?;\n\
                 Ok({ctor})"
            )
        }
        Kind::TupleStruct(fields) if fields.len() == 1 && item.transparent => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(v)?))")
        }
        Kind::TupleStruct(fields) => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected array for {name}, got {{v}}\")))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(\"wrong tuple length for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    VariantKind::Tuple(fields) if fields.len() == 1 => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize_value(payload)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vname}\"))?;\n\
                             if items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"wrong tuple length for {name}::{vname}\"));\n\
                             }}\n\
                             Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let ctor = named_fields_ctor(
                            &format!("{name}::{vname}"),
                            fields,
                            "inner",
                            &format!("{name}::{vname}"),
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let inner = payload.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                             Ok({ctor})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                 let (tag, payload) = map.iter().next().unwrap();\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"expected string or single-key object for {name}, got {{other}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n\
         }}\n"
    )
}
