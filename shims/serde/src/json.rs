//! JSON text parsing and printing for the shimmed [`Value`] tree.

use crate::{Error, Map, Number, Value};

/// Renders `v` as compact JSON (no whitespace).
pub fn format_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Renders `v` as pretty JSON (2-space indent, like serde_json).
pub fn format_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // `{:?}` is the shortest round-tripping form and keeps a
                // trailing `.0` on integral floats, matching serde_json.
                out.push_str(&format!("{v:?}"));
            } else {
                // serde_json refuses non-finite floats; emitting null matches
                // its lossy Value-level behaviour and keeps output parseable.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(found) if found == b => Ok(()),
            Some(found) => Err(Error::custom(format!(
                "expected '{}' at offset {}, found '{}'",
                b as char,
                self.pos - 1,
                found as char
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        for &b in literal.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character '{}' at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::custom(
                                    "expected low surrogate after high surrogate",
                                ));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::custom("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 starting at the byte we took.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::custom(format!("invalid number literal: {text}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
