//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small API-compatible subset of serde: the [`Serialize`] / [`Deserialize`]
//! traits are backed by a JSON-like [`Value`] tree instead of serde's
//! visitor machinery, and the companion `serde_derive` proc-macro crate
//! generates impls for the `#[derive(Serialize, Deserialize)]` and
//! `#[serde(...)]` attribute forms used in this repository (`default`,
//! `default = "path"`, `transparent`).
//!
//! `serde_json` (also shimmed) provides the text format on top of this tree.

pub use serde_derive::{Deserialize, Serialize};

mod json;
mod value;

pub use json::{format_compact, format_pretty, parse};
pub use value::{Map, Number, Value};

/// Error raised by (de)serialization and by JSON parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `v`.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ----- primitive impls ------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Value::Number(Number::from_i64(*self as i64))
                } else {
                    Value::Number(Number::from_u64(*self as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_number()
                    .ok_or_else(|| Error::custom(format!("expected number, got {v}")))?;
                if let Some(i) = n.as_i64() {
                    return <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("integer {i} out of range")));
                }
                if let Some(u) = n.as_u64() {
                    return <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")));
                }
                let f = n.as_f64();
                if f.fract() == 0.0 && f >= <$t>::MIN as f64 && f <= <$t>::MAX as f64 {
                    Ok(f as $t)
                } else {
                    Err(Error::custom(format!("expected integer, got {f}")))
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_number()
                    .map(|n| n.as_f64() as $t)
                    .ok_or_else(|| Error::custom(format!("expected number, got {v}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, got {other}"
            ))),
        }
    }
}

// ----- std container impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sort for deterministic output: HashMap iteration order is random.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Map::new();
        for k in keys {
            map.insert(k.clone(), self[k].serialize_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut map = Map::new();
        for (k, val) in self {
            map.insert(k.clone(), val.serialize_value());
        }
        Value::Object(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(Error::custom(format!("expected array, got {other}"))),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
