//! The JSON-like value tree the shimmed serde traits serialize through.

/// An arbitrary JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object (insertion-ordered, like serde_json's `preserve_order`).
    Object(Map),
}

impl Value {
    /// Returns the number if this is a numeric value.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number().and_then(Number::as_u64)
    }

    /// Returns the value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number().and_then(Number::as_i64)
    }

    /// Returns the string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the object mutably if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key or array-index lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// True when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::json::format_compact(self))
    }
}

/// A JSON number: an integer when it round-trips as one, a float otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Wraps an `i64` (normalised to `UInt` when non-negative).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::UInt(v as u64)
        } else {
            Number::Int(v)
        }
    }

    /// Wraps a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Number::UInt(v)
    }

    /// Wraps an `f64`.
    pub fn from_f64(v: f64) -> Self {
        Number::Float(v)
    }

    /// The number as a float (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(v) => *v as f64,
            Number::UInt(v) => *v as f64,
            Number::Float(v) => *v,
        }
    }

    /// The number as `i64` when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::Int(v) => Some(*v),
            Number::UInt(v) => i64::try_from(*v).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as `u64` when a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::Int(_) => None,
            Number::UInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map (small, linear-scan lookups).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up `key` mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Removes and returns the entry under `key`.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}
