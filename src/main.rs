//! The `cgsim` command-line interface.
//!
//! Mirrors the paper's workflow: point the simulator at the JSON input files
//! (platform/infrastructure + execution parameters) and a workload trace,
//! pick an allocation policy, and get the output layer (metrics, CSV tables,
//! event-level dataset, dashboard) written to a directory.
//!
//! ```bash
//! # generate example configuration + trace, then simulate them
//! cgsim init      --dir /tmp/cgsim-run
//! cgsim simulate  --platform /tmp/cgsim-run/platform.json \
//!                 --execution /tmp/cgsim-run/execution.json \
//!                 --trace /tmp/cgsim-run/trace.jsonl \
//!                 --output /tmp/cgsim-run/out
//! # or synthesise everything in one go
//! cgsim demo --sites 20 --jobs 2000 --policy least-loaded
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use cgsim::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let options = parse_options(&args[1..]);
    let result = match command.as_str() {
        "init" => cmd_init(&options),
        "simulate" => cmd_simulate(&options),
        "demo" => cmd_demo(&options),
        "serve" => cmd_serve(&options),
        "trace-check" => cmd_trace_check(&options),
        "policies" => {
            for name in PolicyRegistry::with_builtins().names() {
                println!("{name}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "cgsim — simulation framework for large-scale distributed computing

USAGE:
    cgsim init      --dir <DIR> [--sites N] [--jobs N] [--seed N]
    cgsim simulate  --platform <platform.json> --execution <execution.json>
                    --trace <trace.jsonl> [--output <DIR>] [--policy NAME]
                    [--faults SPEC] [--fault-seed N] [CHECKPOINT FLAGS]
                    [OBSERVABILITY FLAGS]
    cgsim demo      [--sites N] [--jobs N] [--policy NAME] [--seed N] [--output DIR]
                    [--faults SPEC] [--fault-seed N] [--stream] [CHECKPOINT FLAGS]
                    [MONITORING FLAGS] [OBSERVABILITY FLAGS]
    cgsim serve     --platform <platform.json> --execution <execution.json>
                    --trace <trace.jsonl> [--listen HOST:PORT]
                    [--cache-capacity N] [--no-cache] [--serial]
    cgsim trace-check  [--jsonl <trace.jsonl>] [--chrome <trace.json>]
                    validate trace files against the record schema (CI gate)
    cgsim policies            list the registered allocation policies

OBSERVABILITY FLAGS (see README \"Observability\"; tracing and profiling never
change simulation results — results.json stays byte-identical either way):
    --trace-out <path>       write a structured execution trace (sim-time
                             spans/events; on demo, --trace works too)
    --trace-format jsonl|chrome   trace file format (default jsonl; chrome
                             loads in Perfetto / chrome://tracing)
    --trace-filter CATS      comma-separated categories to keep, from:
                             job,fault,ckpt,fluid,broker (default: all)
    --profile [path]         print a per-subsystem wall-clock table and write
                             machine-readable profile JSON to <path> (default
                             <output>/profile.json when --output is given)

SERVE (simulation as a service):
    Reads one JSONL request per line from stdin (or, with --listen, from
    sequential TCP connections) and writes one JSON response line per
    request. A line holding an array is a batch: evaluated as one engine
    batch, one response line per element, in order. Repeated scenarios are
    answered from a deterministic response cache; replies are byte-identical
    across server restarts. See README \"Simulation as a service\".

FAULT SPECS (semicolon-separated clauses; durations take s/m/h/d suffixes):
    outage:site=2,mttf=4h,mttr=30m[,shape=1.5]   random outages (site=all for every site)
    maint:site=1,start=6h,duration=1h[,period=24h]
    incident:sites=0+2,mttf=24h,mttr=45m         correlated multi-site incidents
    nodeloss:site=0,fraction=0.25,mttf=8h,mttr=1h
    diskloss:site=1,mttf=24h                      storage-media loss (replicas +
                                                  checkpoints gone, site stays up)
    degrade:link=all,factor=0.3,mttf=6h,mttr=15m  (link=<i> is the i-th WAN link)
    kill:rate=1.5                                 job kills per simulated hour
    horizon=48h                                   fault-generation horizon

MONITORING FLAGS (bound the monitoring state for scale campaigns; see README
\"Scale campaigns\" — demo also takes --stream to feed the generator straight
into the engine without materialising the trace):
    --max-events <n>         cap retained event records (ring of the newest;
                             0 = unbounded, the default)
    --sample-stride <n>      keep one of every n event records
    --window <dur>           windowed metrics of this width (e.g. 1h)

CHECKPOINT FLAGS (override the execution config; interval 0 disables):
    --checkpoint-interval <dur>    checkpoint every <dur> of completed work
    --checkpoint-bytes <n>         fixed checkpoint size in bytes
    --checkpoint-per-core-bytes <n>  extra bytes per job core
    --checkpoint-target site|main  write to site storage or the main server
    --checkpoint-overlap           asynchronous writes: overlap each write
                                   with the next execution segment (stall
                                   only if the previous write is in flight)
    --checkpoint-delta-bytes-per-s <n>  incremental checkpoints: ship n bytes
                                   per second of new progress instead of the
                                   full image (0 = full images)

REPAIR FLAGS (fault-aware re-replication; see README \"Self-healing data
layer\" — only --repair enables the planner, the knob flags alone leave it
off and the results byte-identical):
    --repair                       enable background re-replication of task
                                   inputs lost to diskloss/outage eviction
    --repair-target <n>            replicas to maintain per dataset (default 2)
    --repair-concurrent <n>        max in-flight repair transfers (default 4)
    --repair-backoff <dur>         base retry backoff, doubled per failed
                                   attempt (default 300s)
    --repair-retries <n>           failed attempts before a dataset is
                                   abandoned (default 5)
";

fn parse_options(args: &[String]) -> HashMap<String, String> {
    let mut options = HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(flag) = iter.next() {
        if let Some(name) = flag.strip_prefix("--") {
            // A following `--token` is the next flag, not this one's value,
            // so valueless switches like `--no-cache` parse as empty.
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => iter.next().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            options.insert(name.to_string(), value);
        }
    }
    options
}

fn get_usize(options: &HashMap<String, String>, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn get_u64(options: &HashMap<String, String>, key: &str, default: u64) -> u64 {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `cgsim init`: write example platform/execution/trace files.
fn cmd_init(options: &HashMap<String, String>) -> Result<(), String> {
    let dir = PathBuf::from(
        options
            .get("dir")
            .cloned()
            .unwrap_or_else(|| "cgsim-run".to_string()),
    );
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let sites = get_usize(options, "sites", 10);
    let jobs = get_usize(options, "jobs", 1_000);
    let seed = get_u64(options, "seed", 42);

    let platform = wlcg_platform(sites, seed);
    platform
        .save(dir.join("platform.json"))
        .map_err(|e| e.to_string())?;
    std::fs::write(
        dir.join("execution.json"),
        ExecutionConfig::default().to_json(),
    )
    .map_err(|e| e.to_string())?;
    let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
    trace
        .save_jsonl(dir.join("trace.jsonl"))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote platform.json ({sites} sites), execution.json and trace.jsonl ({jobs} jobs) to {}",
        dir.display()
    );
    Ok(())
}

/// Builds a fault plan from `--faults` / `--fault-seed`, resolving link
/// selectors against the platform's WAN links. Returns `None` when no
/// `--faults` spec was given.
fn build_fault_plan(
    options: &HashMap<String, String>,
    platform_spec: &PlatformSpec,
    trace_len: usize,
) -> Result<Option<FaultPlan>, String> {
    let Some(spec_text) = options.get("faults") else {
        return Ok(None);
    };
    let config = parse_fault_spec(spec_text)?;
    let platform = Platform::build(platform_spec).map_err(|e| e.to_string())?;
    let topology = FaultTopology::for_platform(&platform, trace_len);
    let fault_seed = get_u64(options, "fault-seed", 7);
    let plan = FaultPlan::generate(&config, &topology, fault_seed);
    println!(
        "fault plan: {} events over {:.1} h (fault seed {})",
        plan.len(),
        config.horizon_s / 3600.0,
        fault_seed
    );
    Ok(Some(plan))
}

/// Applies the `--checkpoint-*` flag overrides to an execution config.
fn apply_checkpoint_flags(
    options: &HashMap<String, String>,
    execution: &mut ExecutionConfig,
) -> Result<(), String> {
    if let Some(interval) = options.get("checkpoint-interval") {
        execution.checkpoint.interval_s = cgsim::faults::parse_duration(interval)?;
    }
    if let Some(bytes) = options.get("checkpoint-bytes") {
        execution.checkpoint.base_bytes = bytes
            .parse()
            .map_err(|_| format!("--checkpoint-bytes '{bytes}' is not a byte count"))?;
    }
    if let Some(bytes) = options.get("checkpoint-per-core-bytes") {
        execution.checkpoint.bytes_per_core = bytes
            .parse()
            .map_err(|_| format!("--checkpoint-per-core-bytes '{bytes}' is not a byte count"))?;
    }
    if let Some(target) = options.get("checkpoint-target") {
        execution.checkpoint.target = match target.as_str() {
            "site" => CheckpointTarget::SiteStorage,
            "main" => CheckpointTarget::MainServer,
            other => {
                return Err(format!(
                    "--checkpoint-target must be site or main, got {other}"
                ))
            }
        };
    }
    if options.contains_key("checkpoint-overlap") {
        execution.checkpoint.overlap = true;
    }
    if let Some(rate) = options.get("checkpoint-delta-bytes-per-s") {
        execution.checkpoint.delta_bytes_per_s = rate
            .parse()
            .map_err(|_| format!("--checkpoint-delta-bytes-per-s '{rate}' is not a byte rate"))?;
    }
    Ok(())
}

/// Applies the bounded-monitoring flag overrides (`--max-events`,
/// `--sample-stride`, `--window`) to an execution config. Scale campaigns
/// must bound the event ring: unbounded event records are the one per-job
/// O(jobs) retention the simulator otherwise keeps.
fn apply_monitoring_flags(
    options: &HashMap<String, String>,
    execution: &mut ExecutionConfig,
) -> Result<(), String> {
    if let Some(cap) = options.get("max-events") {
        execution.monitoring.max_events = cap
            .parse()
            .map_err(|_| format!("--max-events '{cap}' is not a count"))?;
    }
    if let Some(stride) = options.get("sample-stride") {
        execution.monitoring.sample_stride = stride
            .parse()
            .map_err(|_| format!("--sample-stride '{stride}' is not a count"))?;
    }
    if let Some(window) = options.get("window") {
        execution.monitoring.window_s = cgsim::faults::parse_duration(window)?;
    }
    Ok(())
}

/// Applies the `--repair*` flag overrides to an execution config. Only the
/// `--repair` switch enables the planner; the knob flags tune it without
/// turning it on (so knobs passed alongside a disabled planner leave the
/// simulation byte-identical — the CI determinism gate relies on this).
fn apply_repair_flags(
    options: &HashMap<String, String>,
    execution: &mut ExecutionConfig,
) -> Result<(), String> {
    if options.contains_key("repair") {
        execution.repair.enabled = true;
    }
    if let Some(target) = options.get("repair-target") {
        execution.repair.target_factor = target
            .parse()
            .map_err(|_| format!("--repair-target '{target}' is not a replica count"))?;
    }
    if let Some(limit) = options.get("repair-concurrent") {
        execution.repair.max_concurrent = limit
            .parse()
            .map_err(|_| format!("--repair-concurrent '{limit}' is not a transfer count"))?;
    }
    if let Some(backoff) = options.get("repair-backoff") {
        execution.repair.backoff_s = cgsim::faults::parse_duration(backoff)?;
    }
    if let Some(retries) = options.get("repair-retries") {
        execution.repair.max_retries = retries
            .parse()
            .map_err(|_| format!("--repair-retries '{retries}' is not a retry count"))?;
    }
    Ok(())
}

/// A trace sink paired with its category mask, ready for
/// `SimulationBuilder::trace_sink`.
type MaskedSink = (Box<dyn TraceSink>, u32);

/// Builds a trace sink from the observability flags. `keys` lists the flag
/// names that may carry the output path (`simulate` only honours
/// `--trace-out` because `--trace` is its workload input; `demo` takes both).
fn build_trace_sink(
    options: &HashMap<String, String>,
    keys: &[&str],
) -> Result<Option<MaskedSink>, String> {
    let Some(path) = keys
        .iter()
        .find_map(|k| options.get(*k))
        .filter(|p| !p.is_empty())
    else {
        return Ok(None);
    };
    let mask = match options.get("trace-filter") {
        Some(spec) if !spec.is_empty() => parse_filter(spec)?,
        _ => MASK_ALL,
    };
    let path = PathBuf::from(path);
    let sink: Box<dyn TraceSink> = match options.get("trace-format").map(String::as_str) {
        None | Some("") | Some("jsonl") => Box::new(
            JsonlSink::create(&path).map_err(|e| format!("cannot create trace file: {e}"))?,
        ),
        Some("chrome") => Box::new(
            ChromeSink::create(&path).map_err(|e| format!("cannot create trace file: {e}"))?,
        ),
        Some(other) => {
            return Err(format!(
                "--trace-format must be jsonl or chrome, got {other}"
            ))
        }
    };
    println!("tracing to {}", path.display());
    Ok(Some((sink, mask)))
}

/// Applies the observability flags to a simulation builder.
fn apply_observability(
    options: &HashMap<String, String>,
    mut builder: cgsim::core::SimulationBuilder,
    trace_keys: &[&str],
) -> Result<cgsim::core::SimulationBuilder, String> {
    if let Some((sink, mask)) = build_trace_sink(options, trace_keys)? {
        builder = builder.trace_sink(sink, mask);
    }
    Ok(builder.profile(options.contains_key("profile")))
}

/// `cgsim trace-check`: validate trace files for the CI trace gate.
fn cmd_trace_check(options: &HashMap<String, String>) -> Result<(), String> {
    let mut checked = false;
    if let Some(path) = options.get("jsonl").filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let records = cgsim::obs::validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {records} schema-valid JSONL records");
        checked = true;
    }
    if let Some(path) = options.get("chrome").filter(|p| !p.is_empty()) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let events = cgsim::obs::validate_chrome(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {events} well-formed trace_event objects");
        checked = true;
    }
    if !checked {
        return Err("trace-check needs --jsonl <path> and/or --chrome <path>".to_string());
    }
    Ok(())
}

/// `cgsim simulate`: run the three input files through the simulator.
fn cmd_simulate(options: &HashMap<String, String>) -> Result<(), String> {
    let platform_path = options
        .get("platform")
        .ok_or("missing --platform <platform.json>")?;
    let execution_path = options
        .get("execution")
        .ok_or("missing --execution <execution.json>")?;
    let trace_path = options
        .get("trace")
        .ok_or("missing --trace <trace.jsonl>")?;

    let config =
        SimulationConfig::load(platform_path, execution_path).map_err(|e| e.to_string())?;
    let trace = Trace::load_jsonl(trace_path).map_err(|e| e.to_string())?;
    let mut execution = config.execution.clone();
    if let Some(policy) = options.get("policy") {
        execution.allocation_policy = policy.clone();
    }
    apply_checkpoint_flags(options, &mut execution)?;
    apply_repair_flags(options, &mut execution)?;
    apply_monitoring_flags(options, &mut execution)?;
    println!(
        "simulating {} jobs on {} sites with policy '{}'",
        trace.len(),
        config.platform.sites.len(),
        execution.allocation_policy
    );
    let fault_plan = build_fault_plan(options, &config.platform, trace.len())?;
    let mut builder = Simulation::builder()
        .platform_spec(&config.platform)
        .map_err(|e| e.to_string())?
        .trace(trace)
        .execution(execution);
    if let Some(plan) = fault_plan {
        builder = builder.fault_plan(plan);
    }
    builder = apply_observability(options, builder, &["trace-out"])?;
    let results = builder.run().map_err(|e| e.to_string())?;
    report(&results, options)
}

/// `cgsim demo`: synthesise a platform + trace and run immediately.
fn cmd_demo(options: &HashMap<String, String>) -> Result<(), String> {
    let sites = get_usize(options, "sites", 10);
    let jobs = get_usize(options, "jobs", 1_000);
    let seed = get_u64(options, "seed", 42);
    let policy = options
        .get("policy")
        .cloned()
        .unwrap_or_else(|| "least-loaded".to_string());

    let platform = wlcg_platform(sites, seed);
    let generator = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed));
    let streamed = options.contains_key("stream");
    println!(
        "simulating {jobs} jobs on {sites} sites with policy '{policy}'{}",
        if streamed { " (streamed)" } else { "" }
    );
    let fault_plan = build_fault_plan(options, &platform, jobs)?;
    let mut execution = ExecutionConfig::with_policy(&policy);
    apply_checkpoint_flags(options, &mut execution)?;
    apply_repair_flags(options, &mut execution)?;
    apply_monitoring_flags(options, &mut execution)?;
    let builder = Simulation::builder()
        .platform_spec(&platform)
        .map_err(|e| e.to_string())?;
    // `--stream` feeds the generator's iterator straight into the engine:
    // no trace is materialised, peak memory drops to one record per job.
    let mut builder = if streamed {
        builder.trace_stream(generator.stream(&platform))
    } else {
        builder.trace(generator.generate(&platform))
    };
    builder = builder.policy_name(&policy).execution(execution);
    if let Some(plan) = fault_plan {
        builder = builder.fault_plan(plan);
    }
    builder = apply_observability(options, builder, &["trace-out", "trace"])?;
    let results = builder.run().map_err(|e| e.to_string())?;
    report(&results, options)
}

/// `cgsim serve`: long-running JSONL scenario-evaluation service over the
/// loaded platform + trace. stdout (or the TCP stream) carries the protocol;
/// human-readable chatter goes to stderr.
fn cmd_serve(options: &HashMap<String, String>) -> Result<(), String> {
    let platform_path = options
        .get("platform")
        .ok_or("missing --platform <platform.json>")?;
    let execution_path = options
        .get("execution")
        .ok_or("missing --execution <execution.json>")?;
    let trace_path = options
        .get("trace")
        .ok_or("missing --trace <trace.jsonl>")?;

    let config =
        SimulationConfig::load(platform_path, execution_path).map_err(|e| e.to_string())?;
    let trace = Trace::load_jsonl(trace_path).map_err(|e| e.to_string())?;
    let mut execution = config.execution.clone();
    if let Some(policy) = options.get("policy") {
        if !policy.is_empty() {
            execution.allocation_policy = policy.clone();
        }
    }
    apply_checkpoint_flags(options, &mut execution)?;
    apply_repair_flags(options, &mut execution)?;

    let no_cache = options.contains_key("no-cache");
    let mut engine = ScenarioEngine::new();
    let cache_label = if no_cache {
        engine = engine.no_cache();
        "off".to_string()
    } else if let Some(capacity) = options.get("cache-capacity") {
        let capacity: usize = capacity
            .parse()
            .map_err(|_| format!("--cache-capacity '{capacity}' is not a number"))?;
        engine = engine.cache_capacity(capacity);
        format!("{capacity} entries")
    } else {
        "256 entries".to_string()
    };
    if options.contains_key("serial") {
        engine = engine.parallel(false);
    }
    let base = ScenarioBase::shared(config.platform, trace);
    eprintln!(
        "cgsim serve: {} jobs on {} sites, base policy '{}', cache {}",
        base.trace().len(),
        base.platform().sites.len(),
        execution.allocation_policy,
        cache_label
    );

    match options.get("listen") {
        Some(addr) if !addr.is_empty() => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            eprintln!("listening on {addr} (one JSONL session per connection)");
            for stream in listener.incoming() {
                let stream = stream.map_err(|e| e.to_string())?;
                let reader =
                    std::io::BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
                let shutdown = serve_loop(&engine, &base, &execution, reader, stream)
                    .map_err(|e| e.to_string())?;
                if shutdown {
                    break;
                }
            }
        }
        _ => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_loop(&engine, &base, &execution, stdin.lock(), stdout.lock())
                .map_err(|e| e.to_string())?;
        }
    }
    eprintln!("cgsim serve: bye");
    Ok(())
}

fn report(results: &SimulationResults, options: &HashMap<String, String>) -> Result<(), String> {
    println!("\n{}", results.metrics.text_summary());
    let faults = &results.grid_counters;
    if faults.site_outages + faults.node_losses + faults.link_degradations > 0
        || faults.job_interruptions > 0
    {
        println!(
            "faults: {} site outages, {} node losses, {} link degradations; \
             {} jobs interrupted, {} fault retries",
            faults.site_outages,
            faults.node_losses,
            faults.link_degradations,
            faults.job_interruptions,
            faults.fault_retries
        );
    }
    if faults.checkpoints_written + faults.checkpoint_restores + faults.checkpoints_lost > 0 {
        println!(
            "checkpoints: {} written ({:.2} GB), {} restores saving {:.2} h of recompute, \
             {} lost to faults; {:.2} h of work discarded",
            faults.checkpoints_written,
            faults.checkpoint_bytes as f64 / 1e9,
            faults.checkpoint_restores,
            faults.work_saved_s / 3600.0,
            faults.checkpoints_lost,
            faults.work_lost_s / 3600.0
        );
    }
    if faults.ckpt_overlapped + faults.ckpt_stalls > 0 {
        println!(
            "async checkpoints: {} overlapped with execution, {} stalls on the previous \
             write, {:.2} GB shipped",
            faults.ckpt_overlapped,
            faults.ckpt_stalls,
            faults.ckpt_bytes_shipped as f64 / 1e9
        );
    }
    if faults.repairs_started > 0 {
        println!(
            "repairs: {} started, {} completed ({:.2} GB re-replicated), \
             {} cancelled by faults, {} datasets abandoned",
            faults.repairs_started,
            faults.repairs_completed,
            faults.repair_bytes as f64 / 1e9,
            faults.repairs_cancelled,
            faults.repairs_abandoned
        );
    }
    println!(
        "simulator wall-clock: {:.3}s for {} events",
        results.wall_clock_s, results.engine_events
    );
    if let Some(profile) = &results.profile {
        println!("\n{}", profile.summary_table());
        // `--profile <path>` names the JSON destination explicitly; with a
        // bare `--profile` it lands next to the other outputs when there are
        // any. Wall-clock numbers stay out of results.json either way.
        let dest = options
            .get("profile")
            .filter(|p| !p.is_empty())
            .map(PathBuf::from)
            .or_else(|| {
                options
                    .get("output")
                    .map(|o| PathBuf::from(o).join("profile.json"))
            });
        if let Some(dest) = dest {
            if let Some(parent) = dest.parent() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
            std::fs::write(&dest, profile.to_json()).map_err(|e| e.to_string())?;
            println!("profile written to {}", dest.display());
        }
    }
    println!("\n{}", results.ascii_dashboard());
    if let Some(output) = options.get("output") {
        let dir = PathBuf::from(output);
        results
            .to_table_store()
            .save_csv_dir(&dir)
            .map_err(|e| e.to_string())?;
        std::fs::write(dir.join("dashboard.html"), results.html_dashboard())
            .map_err(|e| e.to_string())?;
        // Deterministic result summary (no wall-clock): the CI determinism
        // gate runs the same scenario twice and diffs this file.
        std::fs::write(dir.join("results.json"), results.deterministic_json())
            .map_err(|e| e.to_string())?;
        if !results.windows.is_empty() {
            std::fs::write(
                dir.join("windows.csv"),
                cgsim::monitor::windows_csv(&results.windows),
            )
            .map_err(|e| e.to_string())?;
        }
        let examples =
            cgsim::monitor::mldataset::build_examples(&results.outcomes, &results.events);
        std::fs::write(
            dir.join("ml_dataset.csv"),
            cgsim::monitor::mldataset::to_csv(&examples),
        )
        .map_err(|e| e.to_string())?;
        println!("output written to {}", dir.display());
    }
    Ok(())
}
