//! # CGSim-RS
//!
//! A Rust reproduction of **CGSim: A Simulation Framework for Large Scale
//! Distributed Computing Environment** (SC'25 PMBS workshop): a discrete-event
//! simulator for WLCG-scale computing grids with a pluggable workload
//! allocation layer, a Rucio-like data-management substrate, per-site
//! calibration against historical job records, event-level monitoring
//! datasets and offline dashboards.
//!
//! This facade crate re-exports the whole workspace under one name so that
//! applications (and the examples in `examples/`) can depend on a single
//! crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`des`] | `cgsim-des` | discrete-event engine, fluid max-min sharing, RNG, statistics |
//! | [`platform`] | `cgsim-platform` | sites, hosts, links, routes, JSON platform specs, WLCG presets |
//! | [`workload`] | `cgsim-workload` | PanDA-like job records, synthetic trace generation, trace I/O |
//! | [`data`] | `cgsim-data` | replica catalog, storage elements, LRU caches, staging plans |
//! | [`policies`] | `cgsim-policies` | the plugin traits, policy registry and built-in policies |
//! | [`faults`] | `cgsim-faults` | deterministic fault-injection plans: outages, degradation, job kills |
//! | [`core`] | `cgsim-core` | the simulation core: main server, site receivers, job lifecycle |
//! | [`monitor`] | `cgsim-monitor` | event-level datasets, metrics, table store, dashboards, ML export |
//! | [`obs`] | `cgsim-obs` | deterministic structured tracing and self-profiling |
//! | [`calibrate`] | `cgsim-calibrate` | calibration objectives and the four optimisers of §4.2 |
//! | [`baseline`] | `cgsim-baseline` | coarse-grained GridSim/CloudSim-style baseline simulator |
//! | [`surrogate`] | `cgsim-surrogate` | ML surrogate models trained on the event-level datasets |
//!
//! ## Quickstart
//!
//! ```
//! use cgsim::prelude::*;
//!
//! // 1. Describe the grid (or load the JSON files of the paper's input layer).
//! let platform = cgsim::platform::presets::example_platform();
//! // 2. Generate (or load) a PanDA-like workload trace.
//! let trace = TraceGenerator::new(TraceConfig::with_jobs(100, 7)).generate(&platform);
//! // 3. Pick an allocation policy and run.
//! let results = Simulation::builder()
//!     .platform_spec(&platform).unwrap()
//!     .trace(trace)
//!     .policy_name("least-loaded")
//!     .execution(ExecutionConfig::default())
//!     .run()
//!     .unwrap();
//! assert_eq!(results.outcomes.len(), 100);
//! println!("{}", results.metrics.text_summary());
//! ```

#![warn(missing_docs)]

pub use cgsim_baseline as baseline;
pub use cgsim_calibrate as calibrate;
pub use cgsim_core as core;
pub use cgsim_data as data;
pub use cgsim_des as des;
pub use cgsim_faults as faults;
pub use cgsim_monitor as monitor;
pub use cgsim_obs as obs;
pub use cgsim_platform as platform;
pub use cgsim_policies as policies;
pub use cgsim_surrogate as surrogate;
pub use cgsim_workload as workload;

/// Convenience re-exports of the types most applications need.
pub mod prelude {
    pub use cgsim_baseline::BaselineSimulator;
    pub use cgsim_calibrate::{Calibrator, OptimizerKind, SensitivityStudy};
    pub use cgsim_core::{
        compare_policies, compare_policies_faulted, run_sweep, run_sweep_on, serve_loop,
        CheckpointConfig, CheckpointTarget, ComputeMode, ExecutionConfig, QueueModel, RepairConfig,
        ScenarioBase, ScenarioDelta, ScenarioEngine, ScenarioSpec, ServeRequest, Simulation,
        SimulationConfig, SimulationResults, SweepPoint,
    };
    pub use cgsim_data::SourceSelection;
    pub use cgsim_des::SimTime;
    pub use cgsim_faults::{parse_fault_spec, FaultPlan, FaultPlanConfig, FaultTopology};
    pub use cgsim_monitor::{MetricsReport, MonitoringConfig};
    pub use cgsim_obs::{
        parse_filter, ChromeSink, JsonlSink, ProfileReport, TraceRecord, TraceSink, MASK_ALL,
    };
    pub use cgsim_platform::presets::{example_platform, wlcg_platform};
    pub use cgsim_platform::{Platform, PlatformSpec, SiteId, SiteSpec, Tier};
    pub use cgsim_policies::{
        AllocationPolicy, DataMovementPolicy, DataPolicyRegistry, GridInfo, GridView,
        PolicyRegistry,
    };
    pub use cgsim_surrogate::{SurrogateKind, SurrogateModel, Target, TrainConfig};
    pub use cgsim_workload::{JobKind, JobRecord, JobState, Trace, TraceConfig, TraceGenerator};
}
