//! The policy registry: name → factory.
//!
//! In the paper, plugins are shared libraries referenced by name from the
//! execution-parameters JSON file and `dlopen`-ed by the simulator. CGSim-RS
//! keeps the name-based indirection — the execution configuration still says
//! `"allocation_policy": "least-loaded"` — but resolves names through this
//! registry instead of the dynamic loader. Downstream users register their
//! own policies with [`PolicyRegistry::register`] before building the
//! simulation, which is the moral equivalent of dropping a new `.so` next to
//! the simulator.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::advanced::{
    CapacityProportionalPolicy, GreedyCostPolicy, ShortestExpectedWaitPolicy,
    WeightedFairSharePolicy,
};
use crate::builtin::{
    BlacklistFlappingPolicy, CheckpointLocalityPolicy, DataAwarePolicy, FastestAvailablePolicy,
    HistoricalPandaPolicy, LeastLoadedPolicy, RandomPolicy, RepairAwarePolicy, RoundRobinPolicy,
};
use crate::plugin::AllocationPolicy;

/// Factory signature: builds a fresh policy instance from a seed (policies
/// that do not use randomness simply ignore it). Factories are reference
/// counted so registries can be cloned cheaply and shared across the sweep
/// workers and long-running evaluation services.
pub type PolicyFactory = Arc<dyn Fn(u64) -> Box<dyn AllocationPolicy> + Send + Sync>;

/// A string-keyed registry of allocation-policy factories.
///
/// Cloning a registry clones the name → factory table only (the factories
/// themselves are `Arc`-shared), so handing a registry to a
/// `ScenarioEngine` or a worker pool costs a few pointer copies per policy.
#[derive(Clone)]
pub struct PolicyRegistry {
    factories: BTreeMap<String, PolicyFactory>,
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl PolicyRegistry {
    /// Creates an empty registry (no built-ins).
    pub fn empty() -> Self {
        PolicyRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// Creates a registry pre-populated with every built-in policy.
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        registry.register("historical-panda", |_| {
            Box::new(HistoricalPandaPolicy::new())
        });
        registry.register("round-robin", |_| Box::new(RoundRobinPolicy::new()));
        registry.register("random", |seed| Box::new(RandomPolicy::new(seed)));
        registry.register("least-loaded", |_| Box::new(LeastLoadedPolicy::new()));
        registry.register("fastest-available", |_| {
            Box::new(FastestAvailablePolicy::new())
        });
        registry.register("data-aware", |_| Box::new(DataAwarePolicy::new()));
        registry.register("blacklist-flapping", |_| {
            Box::new(BlacklistFlappingPolicy::new())
        });
        registry.register("checkpoint-locality", |_| {
            Box::new(CheckpointLocalityPolicy::new())
        });
        registry.register("repair-aware", |_| Box::new(RepairAwarePolicy::new()));
        registry.register("shortest-expected-wait", |_| {
            Box::new(ShortestExpectedWaitPolicy::new())
        });
        registry.register("weighted-fair-share", |_| {
            Box::new(WeightedFairSharePolicy::new())
        });
        registry.register("greedy-cost", |_| Box::new(GreedyCostPolicy::new()));
        registry.register("capacity-proportional", |seed| {
            Box::new(CapacityProportionalPolicy::new(seed))
        });
        registry
    }

    /// Registers (or replaces) a policy factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u64) -> Box<dyn AllocationPolicy> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Arc::new(factory));
    }

    /// Instantiates the policy registered under `name`.
    pub fn create(&self, name: &str, seed: u64) -> Option<Box<dyn AllocationPolicy>> {
        self.factories.get(name).map(|f| f(seed))
    }

    /// Names of all registered policies, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::GridView;
    use cgsim_platform::SiteId;
    use cgsim_workload::{JobKind, JobRecord};

    #[test]
    fn builtins_are_registered() {
        let registry = PolicyRegistry::with_builtins();
        for name in [
            "historical-panda",
            "round-robin",
            "random",
            "least-loaded",
            "fastest-available",
            "data-aware",
            "blacklist-flapping",
            "checkpoint-locality",
            "repair-aware",
            "shortest-expected-wait",
            "weighted-fair-share",
            "greedy-cost",
            "capacity-proportional",
        ] {
            assert!(registry.contains(name), "{name} missing");
            let policy = registry.create(name, 42).unwrap();
            assert_eq!(policy.name(), name);
        }
        assert_eq!(registry.names().len(), 13);
        assert!(registry.create("nope", 0).is_none());
    }

    #[test]
    fn user_policies_can_be_registered() {
        struct PinToSiteZero;
        impl AllocationPolicy for PinToSiteZero {
            fn name(&self) -> &str {
                "pin-zero"
            }
            fn assign_job(&mut self, _job: &JobRecord, _view: &GridView) -> Option<SiteId> {
                Some(SiteId::new(0))
            }
        }

        let mut registry = PolicyRegistry::with_builtins();
        registry.register("pin-zero", |_| Box::new(PinToSiteZero));
        let mut policy = registry.create("pin-zero", 0).unwrap();
        let job = JobRecord::new(1, JobKind::SingleCore, 1, 1.0);
        assert_eq!(
            policy.assign_job(&job, &GridView::default()),
            Some(SiteId::new(0))
        );
    }

    #[test]
    fn empty_registry_has_nothing() {
        let registry = PolicyRegistry::empty();
        assert!(registry.names().is_empty());
        assert!(!registry.contains("round-robin"));
    }

    #[test]
    fn default_is_with_builtins() {
        assert!(PolicyRegistry::default().contains("least-loaded"));
    }
}
