//! Built-in allocation policies.
//!
//! These cover the strategies needed by the paper's experiments plus the
//! usual scheduling baselines a downstream user would want to compare
//! against:
//!
//! * [`HistoricalPandaPolicy`] replays the historical PanDA dispatch decision
//!   stored in each job record — "our calibration process follows PanDA's
//!   dispatching policies to replicate realistic job-to-site assignments"
//!   (§4.2). Jobs with no historical site fall back to least-loaded.
//! * [`RoundRobinPolicy`], [`RandomPolicy`] — classic baselines.
//! * [`LeastLoadedPolicy`] — most free cores first; used for the multi-site
//!   scaling and distributed-speedup experiments.
//! * [`FastestAvailablePolicy`] — highest effective per-core speed among
//!   sites with enough free cores.
//! * [`DataAwarePolicy`] — prefers sites that already hold the job's input
//!   data, falling back to least-loaded (a simple Rucio-aware strategy).
//! * [`CheckpointLocalityPolicy`] — resubmits fault-interrupted jobs to the
//!   site holding their newest durable checkpoint, turning the restore into
//!   a site-local read instead of a WAN re-stage.
//! * [`RepairAwarePolicy`] — least-loaded allocation that avoids sites whose
//!   storage and LAN are busy with re-replication repair transfers.

use cgsim_des::rng::Rng;
use cgsim_platform::SiteId;
use cgsim_workload::JobRecord;

use crate::plugin::AllocationPolicy;
use crate::view::{GridInfo, GridView};

/// Returns the up site with the most available cores that can fit `cores`,
/// or, if none fits, the up site with the shortest queue. Sites taken down
/// by fault injection are never chosen (jobs sent there would only be
/// parked); when every site is down the job stays pending.
fn least_loaded_site(view: &GridView, cores: u64) -> Option<SiteId> {
    let fitting = view
        .sites
        .iter()
        .filter(|s| s.up && s.available_cores >= cores)
        .max_by_key(|s| (s.available_cores, std::cmp::Reverse(s.queued_jobs)));
    match fitting {
        Some(s) => Some(s.site),
        None => view
            .sites
            .iter()
            .filter(|s| s.up)
            .min_by_key(|s| s.queued_jobs)
            .map(|s| s.site),
    }
}

/// Replays historical PanDA dispatch decisions (calibration workload).
#[derive(Debug, Default)]
pub struct HistoricalPandaPolicy {
    info: GridInfo,
}

impl HistoricalPandaPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AllocationPolicy for HistoricalPandaPolicy {
    fn name(&self) -> &str {
        "historical-panda"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        self.info = info.clone();
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if !job.hist_site.is_empty() {
            if let Some(site) = self.info.site_by_name(&job.hist_site) {
                return Some(site);
            }
        }
        least_loaded_site(view, job.cores as u64)
    }
}

/// Round-robin over sites, skipping sites with no free cores when possible.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AllocationPolicy for RoundRobinPolicy {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if view.sites.is_empty() {
            return None;
        }
        let n = view.sites.len();
        // First pass: next site in rotation that can fit the job now.
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            if view.sites[idx].available_cores >= job.cores as u64 {
                self.cursor = idx + 1;
                return Some(view.sites[idx].site);
            }
        }
        // Otherwise just take the next site in rotation (it will queue).
        let idx = self.cursor % n;
        self.cursor += 1;
        Some(view.sites[idx].site)
    }
}

/// Uniformly random site selection (seeded, hence reproducible).
#[derive(Debug)]
pub struct RandomPolicy {
    rng: Rng,
}

impl RandomPolicy {
    /// Creates the policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: Rng::new(seed),
        }
    }
}

impl AllocationPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn assign_job(&mut self, _job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if view.sites.is_empty() {
            return None;
        }
        let idx = self.rng.index(view.sites.len());
        Some(view.sites[idx].site)
    }
}

/// Dispatch to the site with the most available cores.
#[derive(Debug, Default)]
pub struct LeastLoadedPolicy;

impl LeastLoadedPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl AllocationPolicy for LeastLoadedPolicy {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        least_loaded_site(view, job.cores as u64)
    }
}

/// Dispatch to the fastest site that can start the job immediately; if no
/// site has enough free cores, queue at the fastest site overall.
#[derive(Debug, Default)]
pub struct FastestAvailablePolicy {
    info: GridInfo,
}

impl FastestAvailablePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn fastest(&self, candidates: impl Iterator<Item = SiteId>) -> Option<SiteId> {
        candidates.max_by(|&a, &b| {
            let sa = self.info.sites[a.index()].speed_per_core;
            let sb = self.info.sites[b.index()].speed_per_core;
            sa.partial_cmp(&sb).expect("speeds are finite")
        })
    }
}

impl AllocationPolicy for FastestAvailablePolicy {
    fn name(&self) -> &str {
        "fastest-available"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        self.info = info.clone();
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if self.info.sites.is_empty() {
            return least_loaded_site(view, job.cores as u64);
        }
        let with_room = view
            .sites
            .iter()
            .filter(|s| s.available_cores >= job.cores as u64)
            .map(|s| s.site);
        self.fastest(with_room)
            .or_else(|| self.fastest(view.sites.iter().map(|s| s.site)))
    }
}

/// Prefer sites that already hold the job's input data.
#[derive(Debug, Default)]
pub struct DataAwarePolicy;

impl DataAwarePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl AllocationPolicy for DataAwarePolicy {
    fn name(&self) -> &str {
        "data-aware"
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        let best_with_data = view
            .sites
            .iter()
            .filter(|s| s.has_input_replica && s.available_cores >= job.cores as u64)
            .max_by_key(|s| s.available_cores);
        if let Some(s) = best_with_data {
            return Some(s.site);
        }
        least_loaded_site(view, job.cores as u64)
    }
}

/// Blacklist flapping sites: least-loaded allocation that refuses to send
/// work to a site after fault injection has interrupted too many of the
/// policy's jobs there. Strikes decay on successful completions, so a site
/// that stabilises after an incident eventually earns its way back; if every
/// candidate site is blacklisted the policy falls back to plain least-loaded
/// rather than starving the job.
///
/// This is the reference consumer of the
/// [`AllocationPolicy::on_job_interrupted`] hook — the retry/resubmit path of
/// the fault subsystem routes every interruption through it.
#[derive(Debug)]
pub struct BlacklistFlappingPolicy {
    /// Interruption strikes per site.
    strikes: Vec<f64>,
    /// Strikes at which a site is considered flapping.
    threshold: f64,
    /// Strike credit restored by one successful completion at the site.
    decay: f64,
}

impl Default for BlacklistFlappingPolicy {
    fn default() -> Self {
        BlacklistFlappingPolicy {
            strikes: Vec::new(),
            threshold: 2.0,
            decay: 0.25,
        }
    }
}

impl BlacklistFlappingPolicy {
    /// Creates the policy with the default threshold (2 interruptions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the policy with a custom blacklist threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        BlacklistFlappingPolicy {
            threshold: threshold.max(1.0),
            ..Self::default()
        }
    }

    fn ensure_sites(&mut self, n: usize) {
        if self.strikes.len() < n {
            self.strikes.resize(n, 0.0);
        }
    }

    fn blacklisted(&self, site: SiteId) -> bool {
        self.strikes
            .get(site.index())
            .is_some_and(|&s| s >= self.threshold)
    }
}

impl AllocationPolicy for BlacklistFlappingPolicy {
    fn name(&self) -> &str {
        "blacklist-flapping"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        self.ensure_sites(info.site_count());
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        self.ensure_sites(view.sites.len());
        let cores = job.cores as u64;
        let trusted = view
            .sites
            .iter()
            .filter(|s| s.up && !self.blacklisted(s.site) && s.available_cores >= cores)
            .max_by_key(|s| (s.available_cores, std::cmp::Reverse(s.queued_jobs)));
        if let Some(s) = trusted {
            return Some(s.site);
        }
        // No trusted site can start the job now: queue at the trusted site
        // with the shortest queue, or fall back to plain least-loaded when
        // the blacklist has eaten the whole grid.
        view.sites
            .iter()
            .filter(|s| s.up && !self.blacklisted(s.site))
            .min_by_key(|s| s.queued_jobs)
            .map(|s| s.site)
            .or_else(|| least_loaded_site(view, cores))
    }

    fn on_job_completed(&mut self, _job: &JobRecord, site: SiteId, _view: &GridView) {
        self.ensure_sites(site.index() + 1);
        let strikes = &mut self.strikes[site.index()];
        *strikes = (*strikes - self.decay).max(0.0);
    }

    fn on_job_interrupted(&mut self, _job: &JobRecord, site: SiteId, _view: &GridView) {
        self.ensure_sites(site.index() + 1);
        self.strikes[site.index()] += 1.0;
    }
}

/// Prefer the site holding a restored job's newest durable checkpoint.
///
/// This is the reference consumer of the
/// [`AllocationPolicy::on_job_restored`] hook: when the fault subsystem
/// resubmits a job that has a surviving checkpoint, the hook records which
/// site's storage holds it, and the next `assign_job` for that job returns
/// the recorded site (if it is still up) so the restore read never crosses
/// the WAN. Jobs without a recorded checkpoint — first submissions, jobs
/// whose checkpoint lives at the main server, jobs whose checkpoint site is
/// down — fall back to plain least-loaded.
#[derive(Debug, Default)]
pub struct CheckpointLocalityPolicy {
    /// Newest durable checkpoint site per job id (`None` = main server).
    checkpoint_sites: std::collections::HashMap<u64, Option<SiteId>>,
}

impl CheckpointLocalityPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AllocationPolicy for CheckpointLocalityPolicy {
    fn name(&self) -> &str {
        "checkpoint-locality"
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if let Some(&Some(site)) = self.checkpoint_sites.get(&job.id.0) {
            if view.sites.get(site.index()).is_some_and(|s| s.up) {
                return Some(site);
            }
        }
        least_loaded_site(view, job.cores as u64)
    }

    fn on_job_completed(&mut self, job: &JobRecord, _site: SiteId, _view: &GridView) {
        self.checkpoint_sites.remove(&job.id.0);
    }

    fn on_job_restored(
        &mut self,
        job: &JobRecord,
        checkpoint_site: Option<SiteId>,
        _view: &GridView,
    ) {
        self.checkpoint_sites.insert(job.id.0, checkpoint_site);
    }
}

/// Least-loaded allocation that steers work away from sites busy with
/// re-replication repairs.
///
/// A site receiving repair transfers is reconstructing lost replicas: its
/// storage frontend and LAN are saturated with repair traffic, and new jobs
/// staged there contend with the repairs (slowing both). Among up sites that
/// can fit the job, the policy picks the one with the fewest in-flight
/// repairs, breaking ties towards the most free cores and then the shortest
/// queue; when nothing fits it falls back to plain least-loaded.
#[derive(Debug, Default)]
pub struct RepairAwarePolicy;

impl RepairAwarePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl AllocationPolicy for RepairAwarePolicy {
    fn name(&self) -> &str {
        "repair-aware"
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        let cores = job.cores as u64;
        let calmest = view
            .sites
            .iter()
            .filter(|s| s.up && s.available_cores >= cores)
            .min_by_key(|s| {
                (
                    s.active_repairs,
                    std::cmp::Reverse(s.available_cores),
                    s.queued_jobs,
                )
            });
        match calmest {
            Some(s) => Some(s.site),
            None => least_loaded_site(view, cores),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::SiteLoad;
    use cgsim_platform::Tier;
    use cgsim_workload::JobKind;

    fn job(cores: u32) -> JobRecord {
        JobRecord::new(1, JobKind::SingleCore, cores, 1_000.0)
    }

    fn view(avail: &[u64]) -> GridView {
        GridView {
            now_s: 0.0,
            sites: avail
                .iter()
                .enumerate()
                .map(|(i, &a)| SiteLoad {
                    site: SiteId::new(i),
                    available_cores: a,
                    queued_jobs: 0,
                    running_jobs: 0,
                    finished_jobs: 0,
                    has_input_replica: false,
                    up: true,
                    active_repairs: 0,
                })
                .collect(),
            pending_jobs: 0,
        }
    }

    fn info(speeds: &[f64]) -> GridInfo {
        GridInfo {
            sites: speeds
                .iter()
                .enumerate()
                .map(|(i, &s)| crate::view::SiteInfo {
                    id: SiteId::new(i),
                    name: format!("S{i}"),
                    tier: Tier::Tier2,
                    total_cores: 100,
                    speed_per_core: s,
                    storage_tb: 100.0,
                })
                .collect(),
        }
    }

    #[test]
    fn historical_policy_follows_trace_site() {
        let mut policy = HistoricalPandaPolicy::new();
        policy.get_resource_information(&info(&[1.0, 1.0, 1.0]));
        let mut j = job(1);
        j.hist_site = "S2".into();
        assert_eq!(
            policy.assign_job(&j, &view(&[10, 10, 10])),
            Some(SiteId::new(2))
        );
        // Unknown historical site falls back to least-loaded.
        j.hist_site = "UNKNOWN".into();
        assert_eq!(
            policy.assign_job(&j, &view(&[1, 50, 10])),
            Some(SiteId::new(1))
        );
    }

    #[test]
    fn round_robin_cycles_and_skips_full_sites() {
        let mut policy = RoundRobinPolicy::new();
        let v = view(&[10, 0, 10]);
        let first = policy.assign_job(&job(1), &v).unwrap();
        let second = policy.assign_job(&job(1), &v).unwrap();
        let third = policy.assign_job(&job(1), &v).unwrap();
        assert_eq!(first, SiteId::new(0));
        assert_eq!(second, SiteId::new(2)); // skips the full site #1
        assert_eq!(third, SiteId::new(0));
    }

    #[test]
    fn round_robin_queues_when_everything_full() {
        let mut policy = RoundRobinPolicy::new();
        let v = view(&[0, 0]);
        assert!(policy.assign_job(&job(1), &v).is_some());
    }

    #[test]
    fn random_policy_is_seeded_and_covers_sites() {
        let mut a = RandomPolicy::new(5);
        let mut b = RandomPolicy::new(5);
        let v = view(&[1, 1, 1, 1]);
        let seq_a: Vec<_> = (0..20).map(|_| a.assign_job(&job(1), &v)).collect();
        let seq_b: Vec<_> = (0..20).map(|_| b.assign_job(&job(1), &v)).collect();
        assert_eq!(seq_a, seq_b);
        let distinct: std::collections::HashSet<_> = seq_a.into_iter().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn least_loaded_picks_most_free_cores() {
        let mut policy = LeastLoadedPolicy::new();
        assert_eq!(
            policy.assign_job(&job(1), &view(&[5, 80, 20])),
            Some(SiteId::new(1))
        );
        // When nothing fits an 8-core job, it still picks a site to queue at.
        assert!(policy.assign_job(&job(8), &view(&[2, 3, 1])).is_some());
    }

    #[test]
    fn fastest_available_respects_free_cores() {
        let mut policy = FastestAvailablePolicy::new();
        policy.get_resource_information(&info(&[5.0, 20.0, 10.0]));
        // Fastest site (#1) has no room for 4 cores -> picks #2 (next fastest with room).
        let v = view(&[10, 2, 10]);
        assert_eq!(policy.assign_job(&job(4), &v), Some(SiteId::new(2)));
        // With room everywhere it picks the fastest.
        assert_eq!(
            policy.assign_job(&job(1), &view(&[10, 10, 10])),
            Some(SiteId::new(1))
        );
    }

    #[test]
    fn data_aware_prefers_sites_with_replica() {
        let mut policy = DataAwarePolicy::new();
        let mut v = view(&[50, 10, 30]);
        v.sites[1].has_input_replica = true;
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(1)));
        // Without any replica it behaves like least-loaded.
        v.sites[1].has_input_replica = false;
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(0)));
    }

    #[test]
    fn least_loaded_avoids_down_sites() {
        let mut policy = LeastLoadedPolicy::new();
        let mut v = view(&[5, 80, 20]);
        v.sites[1].up = false;
        // The biggest site is down -> next best up site wins.
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(2)));
        v.sites[0].up = false;
        v.sites[2].up = false;
        // Everything down -> park the job.
        assert_eq!(policy.assign_job(&job(1), &v), None);
    }

    #[test]
    fn blacklist_flapping_learns_from_interruptions() {
        let mut policy = BlacklistFlappingPolicy::new();
        let v = view(&[50, 80, 20]);
        // Initially behaves like least-loaded.
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(1)));
        // Two interruptions at site 1 blacklist it.
        policy.on_job_interrupted(&job(1), SiteId::new(1), &v);
        policy.on_job_interrupted(&job(1), SiteId::new(1), &v);
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(0)));
        // Successful completions decay the strikes back below the threshold.
        for _ in 0..8 {
            policy.on_job_completed(&job(1), SiteId::new(1), &v);
        }
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(1)));
    }

    #[test]
    fn blacklist_flapping_falls_back_when_grid_is_blacklisted() {
        let mut policy = BlacklistFlappingPolicy::with_threshold(1.0);
        let v = view(&[10, 20]);
        policy.on_job_interrupted(&job(1), SiteId::new(0), &v);
        policy.on_job_interrupted(&job(1), SiteId::new(1), &v);
        // Both sites blacklisted -> still places the job (plain least-loaded).
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(1)));
    }

    #[test]
    fn checkpoint_locality_returns_to_checkpoint_site() {
        let mut policy = CheckpointLocalityPolicy::new();
        let v = view(&[80, 10, 20]);
        // No recorded checkpoint -> plain least-loaded.
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(0)));
        // After a restore notification, the job goes back to its checkpoint.
        policy.on_job_restored(&job(1), Some(SiteId::new(1)), &v);
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(1)));
        // A checkpoint at the main server gives no site preference.
        policy.on_job_restored(&job(1), None, &v);
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(0)));
        // A down checkpoint site is not chosen.
        policy.on_job_restored(&job(1), Some(SiteId::new(1)), &v);
        let mut down = v.clone();
        down.sites[1].up = false;
        assert_eq!(policy.assign_job(&job(1), &down), Some(SiteId::new(0)));
        // Completion clears the memory.
        policy.on_job_completed(&job(1), SiteId::new(1), &v);
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(0)));
    }

    #[test]
    fn repair_aware_avoids_sites_under_repair() {
        let mut policy = RepairAwarePolicy::new();
        let mut v = view(&[80, 50, 20]);
        // Without repairs it behaves like least-loaded.
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(0)));
        // The biggest site is busy repairing -> next calmest site wins.
        v.sites[0].active_repairs = 3;
        assert_eq!(policy.assign_job(&job(1), &v), Some(SiteId::new(1)));
        // When nothing fits, it still queues somewhere (least-loaded fallback).
        assert!(policy.assign_job(&job(200), &v).is_some());
    }

    #[test]
    fn policies_report_names() {
        assert_eq!(HistoricalPandaPolicy::new().name(), "historical-panda");
        assert_eq!(RoundRobinPolicy::new().name(), "round-robin");
        assert_eq!(RandomPolicy::new(1).name(), "random");
        assert_eq!(LeastLoadedPolicy::new().name(), "least-loaded");
        assert_eq!(FastestAvailablePolicy::new().name(), "fastest-available");
        assert_eq!(DataAwarePolicy::new().name(), "data-aware");
        assert_eq!(BlacklistFlappingPolicy::new().name(), "blacklist-flapping");
        assert_eq!(
            CheckpointLocalityPolicy::new().name(),
            "checkpoint-locality"
        );
        assert_eq!(RepairAwarePolicy::new().name(), "repair-aware");
    }
}
