//! Built-in data-movement policies and their registry.
//!
//! The paper's plugin mechanism covers "custom workflow scheduling and data
//! movement policies" (§1). The allocation side lives in [`crate::builtin`];
//! this module provides the data-movement side: where a job's input is read
//! from and whether the staged dataset is cached at the execution site
//! afterwards (the XRootD-style caching DCSim models and CGSim-RS reproduces
//! in `cgsim-data`).
//!
//! Like allocation policies, data-movement policies are selected by name from
//! the execution configuration through [`DataPolicyRegistry`], so a policy
//! study can swap strategies without touching the simulation core.

use cgsim_des::rng::Rng;
use cgsim_platform::{NodeId, SiteId};
use cgsim_workload::JobRecord;
use std::collections::BTreeMap;

use crate::plugin::{CachePolicy, DataMovementPolicy, DefaultDataMovement};

/// Never cache staged datasets at the execution site: every job of a task
/// re-transfers its input (the "no XRootD cache" ablation baseline).
#[derive(Debug, Clone, Default)]
pub struct NeverCachePolicy;

impl NeverCachePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl DataMovementPolicy for NeverCachePolicy {
    fn name(&self) -> &str {
        "never-cache"
    }

    fn cache_decision(&mut self, _job: &JobRecord, _destination: SiteId) -> CachePolicy {
        CachePolicy::NoCache
    }
}

/// Cache staged datasets only when the job's input is below a size threshold,
/// protecting the site cache from being churned by a few huge datasets.
#[derive(Debug, Clone)]
pub struct SizeThresholdCachePolicy {
    /// Inputs larger than this many bytes are not cached.
    pub max_cached_bytes: u64,
}

impl SizeThresholdCachePolicy {
    /// Creates the policy with the given admission threshold.
    pub fn new(max_cached_bytes: u64) -> Self {
        SizeThresholdCachePolicy { max_cached_bytes }
    }
}

impl Default for SizeThresholdCachePolicy {
    fn default() -> Self {
        // 10 GB: admits typical analysis inputs, rejects bulk production inputs.
        SizeThresholdCachePolicy::new(10_000_000_000)
    }
}

impl DataMovementPolicy for SizeThresholdCachePolicy {
    fn name(&self) -> &str {
        "size-threshold-cache"
    }

    fn cache_decision(&mut self, job: &JobRecord, _destination: SiteId) -> CachePolicy {
        if job.input_bytes <= self.max_cached_bytes {
            CachePolicy::CacheAtSite
        } else {
            CachePolicy::NoCache
        }
    }
}

/// Always stage from the main server (the star-topology default of the
/// paper's architecture), ignoring closer replicas.
#[derive(Debug, Clone, Default)]
pub struct MainServerSourcePolicy;

impl MainServerSourcePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl DataMovementPolicy for MainServerSourcePolicy {
    fn name(&self) -> &str {
        "main-server-source"
    }

    fn select_source(
        &mut self,
        _job: &JobRecord,
        _destination: SiteId,
        candidates: &[NodeId],
    ) -> Option<NodeId> {
        if candidates.contains(&NodeId::MainServer) {
            Some(NodeId::MainServer)
        } else {
            None
        }
    }
}

/// Picks a uniformly random replica source (seeded, hence reproducible) —
/// a load-spreading strategy for heavily replicated datasets.
#[derive(Debug)]
pub struct RandomSourcePolicy {
    rng: Rng,
}

impl RandomSourcePolicy {
    /// Creates the policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomSourcePolicy {
            rng: Rng::new(seed),
        }
    }
}

impl DataMovementPolicy for RandomSourcePolicy {
    fn name(&self) -> &str {
        "random-source"
    }

    fn select_source(
        &mut self,
        _job: &JobRecord,
        destination: SiteId,
        candidates: &[NodeId],
    ) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        // A replica at the destination is always the right answer.
        if candidates.contains(&NodeId::Site(destination)) {
            return Some(NodeId::Site(destination));
        }
        Some(candidates[self.rng.index(candidates.len())])
    }
}

/// Factory signature for data-movement policies (mirrors the allocation-policy
/// registry: policies that do not use randomness ignore the seed).
pub type DataPolicyFactory = Box<dyn Fn(u64) -> Box<dyn DataMovementPolicy> + Send + Sync>;

/// A string-keyed registry of data-movement policy factories.
pub struct DataPolicyRegistry {
    factories: BTreeMap<String, DataPolicyFactory>,
}

impl Default for DataPolicyRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl DataPolicyRegistry {
    /// Creates an empty registry (no built-ins).
    pub fn empty() -> Self {
        DataPolicyRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// Creates a registry pre-populated with every built-in data policy.
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        registry.register("default-data-movement", |_| Box::new(DefaultDataMovement));
        registry.register("never-cache", |_| Box::new(NeverCachePolicy::new()));
        registry.register("size-threshold-cache", |_| {
            Box::new(SizeThresholdCachePolicy::default())
        });
        registry.register("main-server-source", |_| {
            Box::new(MainServerSourcePolicy::new())
        });
        registry.register("random-source", |seed| {
            Box::new(RandomSourcePolicy::new(seed))
        });
        registry
    }

    /// Registers (or replaces) a data-policy factory under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u64) -> Box<dyn DataMovementPolicy> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Instantiates the policy registered under `name`.
    pub fn create(&self, name: &str, seed: u64) -> Option<Box<dyn DataMovementPolicy>> {
        self.factories.get(name).map(|f| f(seed))
    }

    /// Names of all registered policies, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::{JobKind, JobRecord};

    fn job(input_bytes: u64) -> JobRecord {
        let mut j = JobRecord::new(1, JobKind::SingleCore, 1, 1_000.0);
        j.input_bytes = input_bytes;
        j
    }

    #[test]
    fn never_cache_refuses_everything() {
        let mut p = NeverCachePolicy::new();
        assert_eq!(
            p.cache_decision(&job(1), SiteId::new(0)),
            CachePolicy::NoCache
        );
        assert_eq!(p.name(), "never-cache");
        // Source selection falls back to the core's default.
        assert_eq!(p.select_source(&job(1), SiteId::new(0), &[]), None);
    }

    #[test]
    fn size_threshold_admits_small_inputs_only() {
        let mut p = SizeThresholdCachePolicy::new(1_000);
        assert_eq!(
            p.cache_decision(&job(999), SiteId::new(0)),
            CachePolicy::CacheAtSite
        );
        assert_eq!(
            p.cache_decision(&job(1_000), SiteId::new(0)),
            CachePolicy::CacheAtSite
        );
        assert_eq!(
            p.cache_decision(&job(1_001), SiteId::new(0)),
            CachePolicy::NoCache
        );
    }

    #[test]
    fn main_server_source_only_picks_the_main_server() {
        let mut p = MainServerSourcePolicy::new();
        let with_server = [NodeId::Site(SiteId::new(1)), NodeId::MainServer];
        assert_eq!(
            p.select_source(&job(1), SiteId::new(0), &with_server),
            Some(NodeId::MainServer)
        );
        let without = [NodeId::Site(SiteId::new(1))];
        assert_eq!(p.select_source(&job(1), SiteId::new(0), &without), None);
    }

    #[test]
    fn random_source_is_seeded_and_prefers_local_replicas() {
        let candidates = [
            NodeId::Site(SiteId::new(1)),
            NodeId::Site(SiteId::new(2)),
            NodeId::MainServer,
        ];
        let mut a = RandomSourcePolicy::new(3);
        let mut b = RandomSourcePolicy::new(3);
        let seq_a: Vec<_> = (0..20)
            .map(|_| a.select_source(&job(1), SiteId::new(0), &candidates))
            .collect();
        let seq_b: Vec<_> = (0..20)
            .map(|_| b.select_source(&job(1), SiteId::new(0), &candidates))
            .collect();
        assert_eq!(seq_a, seq_b);
        // A destination replica always wins.
        let mut p = RandomSourcePolicy::new(1);
        let local = [NodeId::Site(SiteId::new(0)), NodeId::MainServer];
        assert_eq!(
            p.select_source(&job(1), SiteId::new(0), &local),
            Some(NodeId::Site(SiteId::new(0)))
        );
        assert_eq!(p.select_source(&job(1), SiteId::new(0), &[]), None);
    }

    #[test]
    fn registry_has_all_builtins_and_accepts_user_policies() {
        let registry = DataPolicyRegistry::with_builtins();
        for name in [
            "default-data-movement",
            "never-cache",
            "size-threshold-cache",
            "main-server-source",
            "random-source",
        ] {
            assert!(registry.contains(name), "{name} missing");
            let policy = registry.create(name, 7).unwrap();
            assert_eq!(policy.name(), name);
        }
        assert_eq!(registry.names().len(), 5);
        assert!(registry.create("nope", 0).is_none());

        struct AlwaysNoCache;
        impl DataMovementPolicy for AlwaysNoCache {
            fn name(&self) -> &str {
                "user-no-cache"
            }
            fn cache_decision(&mut self, _job: &JobRecord, _site: SiteId) -> CachePolicy {
                CachePolicy::NoCache
            }
        }
        let mut registry = DataPolicyRegistry::with_builtins();
        registry.register("user-no-cache", |_| Box::new(AlwaysNoCache));
        assert!(registry.contains("user-no-cache"));
        assert!(DataPolicyRegistry::empty().names().is_empty());
        assert!(DataPolicyRegistry::default().contains("never-cache"));
    }
}
