//! Read-only views of the grid exposed to policies.
//!
//! The paper's `getResourceInformation` hook gives plugin authors access to
//! the grid topology defined in SimGrid; `assignJob` receives the job
//! structure plus whatever state the plugin keeps. CGSim-RS formalises the
//! same information as two snapshot types: the static [`GridInfo`] delivered
//! once at simulation start, and the dynamic [`GridView`] delivered with
//! every dispatch decision.

use cgsim_platform::{Platform, SiteId, Tier};
use serde::{Deserialize, Serialize};

/// Static description of one site (available at simulation start).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteInfo {
    /// Site identifier.
    pub id: SiteId,
    /// Site name.
    pub name: String,
    /// WLCG tier.
    pub tier: Tier,
    /// Total cores.
    pub total_cores: u64,
    /// Effective per-core speed (HS23-like units, calibration included).
    pub speed_per_core: f64,
    /// Storage capacity in TB.
    pub storage_tb: f64,
}

/// Static description of the whole grid, handed to
/// `AllocationPolicy::get_resource_information` once before the first job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GridInfo {
    /// One entry per site, indexed by `SiteId`.
    pub sites: Vec<SiteInfo>,
}

impl GridInfo {
    /// Builds the static grid description from a platform.
    pub fn from_platform(platform: &Platform) -> Self {
        GridInfo {
            sites: platform
                .sites()
                .iter()
                .map(|s| SiteInfo {
                    id: s.id,
                    name: s.name.clone(),
                    tier: s.tier,
                    total_cores: s.total_cores,
                    speed_per_core: platform.effective_speed(s.id),
                    storage_tb: s.storage_tb,
                })
                .collect(),
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Looks up a site by name.
    pub fn site_by_name(&self, name: &str) -> Option<SiteId> {
        self.sites.iter().find(|s| s.name == name).map(|s| s.id)
    }
}

/// Dynamic load of one site at dispatch time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteLoad {
    /// Site identifier.
    pub site: SiteId,
    /// Cores not currently allocated to running jobs.
    pub available_cores: u64,
    /// Jobs dispatched to the site and waiting for cores.
    pub queued_jobs: u64,
    /// Jobs currently running (or staging) at the site.
    pub running_jobs: u64,
    /// Jobs finished at the site so far.
    pub finished_jobs: u64,
    /// True when the input dataset of the job being placed already has a
    /// replica (or cache entry) at this site.
    pub has_input_replica: bool,
    /// True when the site is currently up (fault injection can take sites
    /// down mid-run; jobs dispatched to a down site are parked instead).
    pub up: bool,
    /// Re-replication repair transfers currently streaming *into* the site
    /// (0 unless the repair planner is enabled). Repair-aware policies avoid
    /// sites with deep repair queues, whose storage and LAN are busy
    /// reconstructing replicas.
    #[serde(default)]
    pub active_repairs: u64,
}

/// Dynamic snapshot of the grid at dispatch time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GridView {
    /// Virtual time of the snapshot, in seconds.
    pub now_s: f64,
    /// Per-site load, indexed by `SiteId`.
    pub sites: Vec<SiteLoad>,
    /// Jobs currently parked in the main server's pending list.
    pub pending_jobs: u64,
}

impl GridView {
    /// Load of a specific site.
    pub fn load(&self, site: SiteId) -> &SiteLoad {
        &self.sites[site.index()]
    }

    /// Sites that currently have at least `cores` free cores.
    pub fn sites_with_free_cores(&self, cores: u64) -> impl Iterator<Item = &SiteLoad> {
        self.sites
            .iter()
            .filter(move |s| s.available_cores >= cores)
    }

    /// Sites currently up (not taken down by fault injection).
    pub fn available_sites(&self) -> impl Iterator<Item = &SiteLoad> {
        self.sites.iter().filter(|s| s.up)
    }

    /// Total free cores across the grid.
    pub fn total_available_cores(&self) -> u64 {
        self.sites.iter().map(|s| s.available_cores).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;

    #[test]
    fn grid_info_mirrors_platform() {
        let platform = Platform::build(&example_platform()).unwrap();
        let info = GridInfo::from_platform(&platform);
        assert_eq!(info.site_count(), 4);
        let cern = info.site_by_name("CERN").unwrap();
        assert_eq!(info.sites[cern.index()].total_cores, 2_000);
        assert!(info.sites[cern.index()].speed_per_core > 0.0);
        assert!(info.site_by_name("none").is_none());
    }

    #[test]
    fn grid_view_queries() {
        let view = GridView {
            now_s: 10.0,
            sites: vec![
                SiteLoad {
                    site: SiteId::new(0),
                    available_cores: 100,
                    queued_jobs: 2,
                    running_jobs: 5,
                    finished_jobs: 1,
                    has_input_replica: false,
                    up: true,
                    active_repairs: 0,
                },
                SiteLoad {
                    site: SiteId::new(1),
                    available_cores: 4,
                    queued_jobs: 0,
                    running_jobs: 0,
                    finished_jobs: 0,
                    has_input_replica: true,
                    up: false,
                    active_repairs: 2,
                },
            ],
            pending_jobs: 3,
        };
        assert_eq!(view.total_available_cores(), 104);
        assert_eq!(view.sites_with_free_cores(8).count(), 1);
        assert_eq!(view.load(SiteId::new(1)).available_cores, 4);
        assert_eq!(view.available_sites().count(), 1);
        assert_eq!(view.available_sites().next().unwrap().site, SiteId::new(0));
    }
}
