//! The plugin traits (the paper's abstract plugin class).
//!
//! The paper's Figure 2 shows the abstract class plugin authors inherit from;
//! its key methods are `assignJob` (the allocation decision) and
//! `getResourceInformation` (access to the grid topology). CGSim-RS exposes
//! the same hooks as the [`AllocationPolicy`] trait, with an extra completion
//! callback so stateful policies (e.g. load estimators) can update themselves.

use cgsim_platform::{NodeId, SiteId};
use cgsim_workload::JobRecord;

use crate::view::{GridInfo, GridView};

/// Decision returned by a data-movement policy for one staging operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Cache the dataset at the destination site after staging.
    CacheAtSite,
    /// Do not cache; the next job needing the dataset transfers it again.
    NoCache,
}

/// The workload-allocation plugin interface.
///
/// Implementations must be deterministic given the same sequence of calls
/// (any randomness should come from an internally seeded generator), so that
/// simulations remain reproducible.
pub trait AllocationPolicy: Send {
    /// Policy name (matches the name used in the execution configuration).
    fn name(&self) -> &str;

    /// Called once before the first job with the static grid description
    /// (the paper's `getResourceInformation` hook).
    fn get_resource_information(&mut self, _info: &GridInfo) {}

    /// The main allocation decision (the paper's `assignJob`): pick the site
    /// the job should run at, or `None` to leave it in the pending list until
    /// resources free up.
    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId>;

    /// Called when a job reaches a terminal state.
    fn on_job_completed(&mut self, _job: &JobRecord, _site: SiteId, _view: &GridView) {}

    /// Called when an infrastructure fault kills a job mid-flight at `site`
    /// (a site outage, partial node loss, or a targeted job kill). The job
    /// will be resubmitted through `assign_job` if it has fault retries
    /// left, so stateful policies can use this hook to blacklist flapping
    /// sites before the resubmission arrives.
    fn on_job_interrupted(&mut self, _job: &JobRecord, _site: SiteId, _view: &GridView) {}

    /// Called just before a fault-interrupted job that holds a *durable
    /// checkpoint* is resubmitted through `assign_job`. `checkpoint_site` is
    /// the site whose storage holds the newest surviving checkpoint
    /// (`None` when it lives at the main server), so stateful policies can
    /// steer the resubmission towards the data and turn the restore into a
    /// site-local read instead of a WAN re-stage. Jobs without a surviving
    /// checkpoint are resubmitted without this call (they rerun from
    /// scratch).
    fn on_job_restored(
        &mut self,
        _job: &JobRecord,
        _checkpoint_site: Option<SiteId>,
        _view: &GridView,
    ) {
    }
}

/// The data-movement plugin interface: choose where job input is read from
/// and whether it is cached at the execution site afterwards.
pub trait DataMovementPolicy: Send {
    /// Policy name.
    fn name(&self) -> &str;

    /// Chooses the source endpoint for staging `job`'s input to `destination`
    /// among `candidates` (all endpoints currently holding a replica).
    /// Returning `None` lets the core fall back to its default selection.
    fn select_source(
        &mut self,
        _job: &JobRecord,
        _destination: SiteId,
        _candidates: &[NodeId],
    ) -> Option<NodeId> {
        None
    }

    /// Whether the staged dataset should be cached at the execution site.
    fn cache_decision(&mut self, _job: &JobRecord, _destination: SiteId) -> CachePolicy {
        CachePolicy::CacheAtSite
    }
}

/// Default data-movement behaviour: lowest-latency source, always cache.
#[derive(Debug, Clone, Default)]
pub struct DefaultDataMovement;

impl DataMovementPolicy for DefaultDataMovement {
    fn name(&self) -> &str {
        "default-data-movement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::{JobKind, JobRecord};

    /// A minimal user-written policy, as it would appear in a plugin crate.
    struct AlwaysFirstSite {
        configured_sites: usize,
    }

    impl AllocationPolicy for AlwaysFirstSite {
        fn name(&self) -> &str {
            "always-first"
        }
        fn get_resource_information(&mut self, info: &GridInfo) {
            self.configured_sites = info.site_count();
        }
        fn assign_job(&mut self, _job: &JobRecord, view: &GridView) -> Option<SiteId> {
            view.sites.first().map(|s| s.site)
        }
    }

    #[test]
    fn custom_policy_implements_the_contract() {
        let mut policy = AlwaysFirstSite {
            configured_sites: 0,
        };
        policy.get_resource_information(&GridInfo::default());
        assert_eq!(policy.configured_sites, 0);
        let job = JobRecord::new(1, JobKind::SingleCore, 1, 100.0);
        assert_eq!(policy.assign_job(&job, &GridView::default()), None);
        assert_eq!(policy.name(), "always-first");
    }

    #[test]
    fn default_data_movement_caches_and_defers_source_choice() {
        let mut dm = DefaultDataMovement;
        let job = JobRecord::new(1, JobKind::SingleCore, 1, 100.0);
        assert_eq!(
            dm.cache_decision(&job, SiteId::new(0)),
            CachePolicy::CacheAtSite
        );
        assert_eq!(dm.select_source(&job, SiteId::new(0), &[]), None);
        assert_eq!(dm.name(), "default-data-movement");
    }
}
