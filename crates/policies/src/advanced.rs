//! Advanced allocation policies.
//!
//! These go beyond the simple baselines of [`crate::builtin`] and cover the
//! strategies the CGSim papers motivate testing in simulation before
//! deploying on the production grid: cost-model scheduling that trades
//! compute speed against data movement (the joint job-scheduling /
//! data-allocation problem of Feng et al.), fair-share allocation across
//! sites, expected-wait minimisation, and PanDA's capacity-proportional
//! dispatch.

use cgsim_des::rng::Rng;
use cgsim_platform::SiteId;
use cgsim_workload::{ideal_walltime, JobRecord};

use crate::plugin::AllocationPolicy;
use crate::view::{GridInfo, GridView};

/// Dispatch to the site with the smallest estimated completion time
/// (expected queue wait plus execution time), using the static per-site
/// speeds from `getResourceInformation` and the dynamic queue depths from
/// the dispatch-time view.
#[derive(Debug, Default)]
pub struct ShortestExpectedWaitPolicy {
    info: GridInfo,
}

impl ShortestExpectedWaitPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated completion time of `job` at site `i` given the current view.
    fn estimate(&self, job: &JobRecord, view: &GridView, i: usize) -> f64 {
        let site = &self.info.sites[i];
        let load = &view.sites[i];
        let exec = ideal_walltime(job.work_hs23, job.cores, site.speed_per_core.max(1e-9));
        // Expected wait: if cores are free the job starts immediately;
        // otherwise approximate the backlog as queued jobs sharing the whole
        // site, each taking roughly this job's execution time.
        let wait = if load.available_cores >= job.cores as u64 {
            0.0
        } else {
            let slots = (site.total_cores / job.cores.max(1) as u64).max(1) as f64;
            (load.queued_jobs as f64 + 1.0) / slots * exec
        };
        wait + exec
    }
}

impl AllocationPolicy for ShortestExpectedWaitPolicy {
    fn name(&self) -> &str {
        "shortest-expected-wait"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        self.info = info.clone();
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if self.info.sites.is_empty() || view.sites.is_empty() {
            return view.sites.first().map(|s| s.site);
        }
        (0..view.sites.len().min(self.info.sites.len()))
            .min_by(|&a, &b| {
                self.estimate(job, view, a)
                    .partial_cmp(&self.estimate(job, view, b))
                    .expect("estimates are finite")
            })
            .map(|i| view.sites[i].site)
    }
}

/// Weighted fair-share allocation: every site should receive work in
/// proportion to its capacity share (cores × speed). The policy tracks the
/// work it has dispatched so far and always picks the most under-served site
/// that can eventually run the job.
#[derive(Debug, Default)]
pub struct WeightedFairSharePolicy {
    info: GridInfo,
    /// HS23-seconds of work dispatched to each site so far.
    dispatched_work: Vec<f64>,
    /// Capacity share of each site in `[0, 1]`.
    capacity_share: Vec<f64>,
}

impl WeightedFairSharePolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Work dispatched so far, per site (test / inspection hook).
    pub fn dispatched_work(&self) -> &[f64] {
        &self.dispatched_work
    }
}

impl AllocationPolicy for WeightedFairSharePolicy {
    fn name(&self) -> &str {
        "weighted-fair-share"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        let total_capacity: f64 = info
            .sites
            .iter()
            .map(|s| s.total_cores as f64 * s.speed_per_core)
            .sum();
        self.capacity_share = info
            .sites
            .iter()
            .map(|s| {
                if total_capacity > 0.0 {
                    s.total_cores as f64 * s.speed_per_core / total_capacity
                } else {
                    1.0 / info.sites.len().max(1) as f64
                }
            })
            .collect();
        self.dispatched_work = vec![0.0; info.sites.len()];
        self.info = info.clone();
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if self.capacity_share.is_empty() {
            return view.sites.first().map(|s| s.site);
        }
        let total_dispatched: f64 = self.dispatched_work.iter().sum::<f64>() + job.work_hs23;
        // Deficit = target share − actual share if the job were sent there.
        let best = (0..view.sites.len().min(self.capacity_share.len()))
            .filter(|&i| self.info.sites[i].total_cores >= job.cores as u64)
            .min_by(|&a, &b| {
                let share = |i: usize| {
                    (self.dispatched_work[i] + job.work_hs23) / total_dispatched
                        - self.capacity_share[i]
                };
                share(a).partial_cmp(&share(b)).expect("shares are finite")
            });
        let chosen = best.or_else(|| {
            // No site is large enough for this job; fall back to the largest.
            (0..view.sites.len().min(self.info.sites.len()))
                .max_by_key(|&i| self.info.sites[i].total_cores)
        })?;
        self.dispatched_work[chosen] += job.work_hs23;
        Some(view.sites[chosen].site)
    }
}

/// Greedy joint compute + data-movement cost model (a lightweight stand-in
/// for the MILP formulation of Feng et al.): for every site, estimate
/// execution time, input-transfer time (zero when the site already holds a
/// replica) and a queue-wait penalty, and dispatch to the cheapest site.
#[derive(Debug)]
pub struct GreedyCostPolicy {
    info: GridInfo,
    /// Assumed wide-area bandwidth for inputs that must be transferred (B/s).
    pub wan_bandwidth_bps: f64,
    /// Weight of the queue-wait penalty relative to execution time.
    pub wait_weight: f64,
}

impl Default for GreedyCostPolicy {
    fn default() -> Self {
        GreedyCostPolicy {
            info: GridInfo::default(),
            wan_bandwidth_bps: 10e9 / 8.0, // 10 Gb/s expressed in bytes/s
            wait_weight: 1.0,
        }
    }
}

impl GreedyCostPolicy {
    /// Creates the policy with default cost weights.
    pub fn new() -> Self {
        Self::default()
    }

    fn cost(&self, job: &JobRecord, view: &GridView, i: usize) -> f64 {
        let site = &self.info.sites[i];
        let load = &view.sites[i];
        let exec = ideal_walltime(job.work_hs23, job.cores, site.speed_per_core.max(1e-9));
        let transfer = if load.has_input_replica {
            0.0
        } else {
            job.input_bytes as f64 / self.wan_bandwidth_bps.max(1.0)
        };
        let wait = if load.available_cores >= job.cores as u64 {
            0.0
        } else {
            let slots = (site.total_cores / job.cores.max(1) as u64).max(1) as f64;
            (load.queued_jobs as f64 + 1.0) / slots * exec
        };
        exec + transfer + self.wait_weight * wait
    }
}

impl AllocationPolicy for GreedyCostPolicy {
    fn name(&self) -> &str {
        "greedy-cost"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        self.info = info.clone();
    }

    fn assign_job(&mut self, job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if self.info.sites.is_empty() || view.sites.is_empty() {
            return view.sites.first().map(|s| s.site);
        }
        (0..view.sites.len().min(self.info.sites.len()))
            .min_by(|&a, &b| {
                self.cost(job, view, a)
                    .partial_cmp(&self.cost(job, view, b))
                    .expect("costs are finite")
            })
            .map(|i| view.sites[i].site)
    }
}

/// PanDA-style capacity-proportional dispatch: sites are drawn at random with
/// probability proportional to their core count, regardless of instantaneous
/// load. This is the statistical behaviour the historical traces exhibit and
/// a useful baseline for the smarter policies above.
#[derive(Debug)]
pub struct CapacityProportionalPolicy {
    info: GridInfo,
    rng: Rng,
    weights: Vec<f64>,
}

impl CapacityProportionalPolicy {
    /// Creates the policy with the given seed.
    pub fn new(seed: u64) -> Self {
        CapacityProportionalPolicy {
            info: GridInfo::default(),
            rng: Rng::new(seed),
            weights: Vec::new(),
        }
    }
}

impl AllocationPolicy for CapacityProportionalPolicy {
    fn name(&self) -> &str {
        "capacity-proportional"
    }

    fn get_resource_information(&mut self, info: &GridInfo) {
        self.weights = info.sites.iter().map(|s| s.total_cores as f64).collect();
        self.info = info.clone();
    }

    fn assign_job(&mut self, _job: &JobRecord, view: &GridView) -> Option<SiteId> {
        if view.sites.is_empty() {
            return None;
        }
        if self.weights.len() != view.sites.len() || self.weights.iter().all(|&w| w <= 0.0) {
            let idx = self.rng.index(view.sites.len());
            return Some(view.sites[idx].site);
        }
        let idx = self.rng.weighted_index(&self.weights);
        Some(view.sites[idx].site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{SiteInfo, SiteLoad};
    use cgsim_platform::Tier;
    use cgsim_workload::JobKind;

    fn job(cores: u32, work: f64, input_bytes: u64) -> JobRecord {
        let mut j = JobRecord::new(1, JobKind::SingleCore, cores, work);
        j.input_bytes = input_bytes;
        j
    }

    fn info(sites: &[(u64, f64)]) -> GridInfo {
        GridInfo {
            sites: sites
                .iter()
                .enumerate()
                .map(|(i, &(cores, speed))| SiteInfo {
                    id: SiteId::new(i),
                    name: format!("S{i}"),
                    tier: Tier::Tier2,
                    total_cores: cores,
                    speed_per_core: speed,
                    storage_tb: 100.0,
                })
                .collect(),
        }
    }

    fn view(loads: &[(u64, u64, bool)]) -> GridView {
        GridView {
            now_s: 0.0,
            sites: loads
                .iter()
                .enumerate()
                .map(|(i, &(avail, queued, replica))| SiteLoad {
                    site: SiteId::new(i),
                    available_cores: avail,
                    queued_jobs: queued,
                    running_jobs: 0,
                    finished_jobs: 0,
                    has_input_replica: replica,
                    up: true,
                    active_repairs: 0,
                })
                .collect(),
            pending_jobs: 0,
        }
    }

    #[test]
    fn shortest_expected_wait_prefers_fast_idle_sites() {
        let mut policy = ShortestExpectedWaitPolicy::new();
        policy.get_resource_information(&info(&[(100, 5.0), (100, 20.0), (100, 10.0)]));
        // All idle: the fastest site wins.
        let choice = policy.assign_job(&job(1, 36_000.0, 0), &view(&[(100, 0, false); 3]));
        assert_eq!(choice, Some(SiteId::new(1)));
        // The fastest site is saturated with a very deep queue: the policy
        // moves on to the next-best completion-time estimate.
        let busy = view(&[(100, 0, false), (0, 500, false), (100, 0, false)]);
        assert_eq!(
            policy.assign_job(&job(1, 36_000.0, 0), &busy),
            Some(SiteId::new(2))
        );
    }

    #[test]
    fn weighted_fair_share_tracks_capacity_shares() {
        let mut policy = WeightedFairSharePolicy::new();
        // Site 0 has 3x the capacity of site 1.
        policy.get_resource_information(&info(&[(300, 10.0), (100, 10.0)]));
        let v = view(&[(300, 0, false), (100, 0, false)]);
        let mut counts = [0usize; 2];
        for _ in 0..400 {
            let site = policy.assign_job(&job(1, 1_000.0, 0), &v).unwrap();
            counts[site.index()] += 1;
        }
        // Shares should approach 3:1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (2.0..4.5).contains(&ratio),
            "ratio {ratio}, counts {counts:?}"
        );
        assert_eq!(policy.dispatched_work().len(), 2);
    }

    #[test]
    fn fair_share_falls_back_to_largest_site_for_huge_jobs() {
        let mut policy = WeightedFairSharePolicy::new();
        policy.get_resource_information(&info(&[(4, 10.0), (64, 10.0)]));
        let v = view(&[(4, 0, false), (64, 0, false)]);
        // A 16-core job does not fit site 0 at all.
        assert_eq!(
            policy.assign_job(&job(16, 1_000.0, 0), &v),
            Some(SiteId::new(1))
        );
    }

    #[test]
    fn greedy_cost_trades_speed_against_data_locality() {
        let mut policy = GreedyCostPolicy::new();
        // Site 0 is slower but holds the input replica; site 1 is faster.
        policy.get_resource_information(&info(&[(100, 8.0), (100, 10.0)]));
        // Small input: the faster site wins despite the transfer.
        let small = job(1, 36_000.0, 1_000_000);
        assert_eq!(
            policy.assign_job(&small, &view(&[(100, 0, true), (100, 0, false)])),
            Some(SiteId::new(1))
        );
        // Huge input: data gravity wins.
        let huge = job(1, 36_000.0, 4_000_000_000_000);
        assert_eq!(
            policy.assign_job(&huge, &view(&[(100, 0, true), (100, 0, false)])),
            Some(SiteId::new(0))
        );
    }

    #[test]
    fn capacity_proportional_matches_core_counts_statistically() {
        let mut policy = CapacityProportionalPolicy::new(11);
        policy.get_resource_information(&info(&[(1600, 10.0), (400, 10.0)]));
        let v = view(&[(1600, 0, false), (400, 0, false)]);
        let mut counts = [0usize; 2];
        for _ in 0..2_000 {
            let site = policy.assign_job(&job(1, 1_000.0, 0), &v).unwrap();
            counts[site.index()] += 1;
        }
        let frac = counts[0] as f64 / 2_000.0;
        assert!((frac - 0.8).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn policies_without_resource_info_still_answer() {
        let v = view(&[(10, 0, false)]);
        assert!(ShortestExpectedWaitPolicy::new()
            .assign_job(&job(1, 1.0, 0), &v)
            .is_some());
        assert!(WeightedFairSharePolicy::new()
            .assign_job(&job(1, 1.0, 0), &v)
            .is_some());
        assert!(GreedyCostPolicy::new()
            .assign_job(&job(1, 1.0, 0), &v)
            .is_some());
        assert!(CapacityProportionalPolicy::new(1)
            .assign_job(&job(1, 1.0, 0), &v)
            .is_some());
        assert!(CapacityProportionalPolicy::new(1)
            .assign_job(&job(1, 1.0, 0), &GridView::default())
            .is_none());
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(
            ShortestExpectedWaitPolicy::new().name(),
            "shortest-expected-wait"
        );
        assert_eq!(WeightedFairSharePolicy::new().name(), "weighted-fair-share");
        assert_eq!(GreedyCostPolicy::new().name(), "greedy-cost");
        assert_eq!(
            CapacityProportionalPolicy::new(0).name(),
            "capacity-proportional"
        );
    }
}
