//! # cgsim-policies — the plugin mechanism and built-in policies
//!
//! One of CGSim's headline features is that custom workload-allocation
//! algorithms can be tested through a plugin system without modifying the
//! simulator's core (paper §3.3). The paper ships an abstract C++ class whose
//! methods (`assignJob`, `getResourceInformation`, …) a user overrides and
//! compiles into a shared library that the simulation loads at run time.
//!
//! CGSim-RS keeps the exact same extension contract but replaces `dlopen`
//! with safe Rust trait objects:
//!
//! * [`plugin::AllocationPolicy`] is the abstract class — implement it to
//!   define a scheduling strategy; the simulation core calls
//!   [`plugin::AllocationPolicy::assign_job`] for every incoming job and the
//!   other hooks at the matching lifecycle points,
//! * [`plugin::DataMovementPolicy`] plays the same role for replica-source
//!   selection and cache admission,
//! * [`registry::PolicyRegistry`] maps the policy *name written in the JSON
//!   execution configuration* to a factory, which is how the paper's "plugin
//!   loaded via the input configuration" workflow is preserved,
//! * [`builtin`] provides the policies used by the paper's experiments and
//!   baselines: the PanDA-historical dispatcher used during calibration,
//!   round-robin, random, least-loaded, fastest-available and data-aware
//!   strategies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advanced;
pub mod builtin;
pub mod data_builtin;
pub mod plugin;
pub mod registry;
pub mod view;

pub use advanced::{
    CapacityProportionalPolicy, GreedyCostPolicy, ShortestExpectedWaitPolicy,
    WeightedFairSharePolicy,
};
pub use builtin::{
    BlacklistFlappingPolicy, CheckpointLocalityPolicy, DataAwarePolicy, FastestAvailablePolicy,
    HistoricalPandaPolicy, LeastLoadedPolicy, RandomPolicy, RepairAwarePolicy, RoundRobinPolicy,
};
pub use data_builtin::{
    DataPolicyRegistry, MainServerSourcePolicy, NeverCachePolicy, RandomSourcePolicy,
    SizeThresholdCachePolicy,
};
pub use plugin::{AllocationPolicy, CachePolicy, DataMovementPolicy, DefaultDataMovement};
pub use registry::PolicyRegistry;
pub use view::{GridInfo, GridView, SiteInfo, SiteLoad};
