//! # cgsim-obs — deterministic structured tracing and self-profiling
//!
//! The paper's output layer promises "a real-time dashboard for monitoring
//! and performance evaluation" (§3.1) and an event-level dataset at every
//! timestep (§4.3.2). This crate supplies the missing *explanatory* window
//! into a run: a structured trace of what the simulated grid did (job
//! lifecycle spans, fault replay actions, checkpoint writes and restores,
//! transfer starts and finishes, broker decisions) and a profile of where
//! the simulator itself spent wall-clock.
//!
//! ## The determinism contract
//!
//! Trace records carry **simulated time and stable sequence numbers only —
//! never wall-clock, pointers, or iteration order of unordered containers**.
//! Two runs of the same scenario therefore produce byte-identical trace
//! files, and enabling tracing must leave the simulation's
//! `deterministic_json` byte-identical to a run with tracing off: sinks
//! observe the simulation, they never perturb it. The profiler is the one
//! component that measures wall-clock; its output is kept out of `results.json`
//! and written to a separate `profile.json` only when profiling was
//! explicitly requested, so determinism gates that diff whole output
//! directories never see it.
//!
//! ## Cost when disabled
//!
//! Every emission site is guarded by [`trace::Tracer::wants`] — a mask test
//! on an `Option` that is `None` when tracing is off — and every profiling
//! region by [`profile::Profiler::start`] returning `None` when disabled.
//! Neither path allocates or formats anything unless the corresponding
//! feature was switched on, keeping the fluid and event-loop hot paths at
//! their benchmarked speeds (see `BENCH_fluid.json` / `BENCH_faults.json`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod profile;
pub mod trace;

pub use profile::{ProfileReport, Profiler, Subsystem, ALL_SUBSYSTEMS};
pub use trace::{
    parse_filter, validate_chrome, validate_jsonl, ChromeSink, JsonlSink, MemorySink, SpanPhase,
    TraceCategory, TraceRecord, TraceSink, Tracer, ALL_CATEGORIES, MASK_ALL,
};
