//! Self-profiling: wall-clock accounting per simulator subsystem.
//!
//! The profiler is the one observability component allowed to look at
//! wall-clock, so its output must never reach `results.json` or any file a
//! determinism gate diffs — the CLI writes it to a separate `profile.json`
//! only when `--profile` was passed. The report JSON follows the repo's
//! BENCH perf-trajectory protocol (`bench`/`harness`/`scenario`/`results`),
//! so profile snapshots can be compared across PRs the same way
//! `BENCH_fluid.json` entries are.
//!
//! When disabled, [`Profiler::start`] returns `None` without reading the
//! clock and [`Profiler::stop`] is a `None` test — no allocation, no
//! syscalls — so instrumented hot paths keep their benchmarked speeds.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The instrumented subsystems.
///
/// `EventLoop` wraps the whole engine run, so the other buckets nest inside
/// it: their sum is the instrumented share of the loop, not additional time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// One whole `Engine::run` (outermost bucket; the others nest inside).
    EventLoop,
    /// Fluid-model work: share recomputation, activity admission, rescheduling.
    Fluid,
    /// Fault replay: applying one fault event to the grid.
    FaultReplay,
    /// Checkpoint segmentation: write, restore and invalidation bookkeeping.
    Checkpoint,
    /// Scenario-engine response-cache lookups (hash + probe).
    CacheLookup,
    /// Re-replication repair: deficit bookkeeping, transfer planning and
    /// completion/cancellation handling.
    Repair,
}

/// Every subsystem, in report order.
pub const ALL_SUBSYSTEMS: [Subsystem; 6] = [
    Subsystem::EventLoop,
    Subsystem::Fluid,
    Subsystem::FaultReplay,
    Subsystem::Checkpoint,
    Subsystem::CacheLookup,
    Subsystem::Repair,
];

impl Subsystem {
    /// Stable snake_case label (the `case` field of the report).
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::EventLoop => "event_loop",
            Subsystem::Fluid => "fluid",
            Subsystem::FaultReplay => "fault_replay",
            Subsystem::Checkpoint => "checkpoint",
            Subsystem::CacheLookup => "cache_lookup",
            Subsystem::Repair => "repair",
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    nanos: u64,
    count: u64,
}

/// Accumulates wall-clock per subsystem. Cheap to construct; near-free when
/// disabled.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    buckets: [Bucket; ALL_SUBSYSTEMS.len()],
    counters: Vec<(String, u64)>,
}

impl Profiler {
    /// Creates a profiler; `enabled = false` yields the zero-cost stub.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            ..Profiler::default()
        }
    }

    /// Whether timing is being collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a timing region: reads the clock only when enabled. Pass the
    /// result to [`Profiler::stop`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a timing region opened by [`Profiler::start`], attributing the
    /// elapsed wall-clock to `sub`.
    #[inline]
    pub fn stop(&mut self, sub: Subsystem, started: Option<Instant>) {
        if let Some(t0) = started {
            let bucket = &mut self.buckets[sub as usize];
            bucket.nanos += t0.elapsed().as_nanos() as u64;
            bucket.count += 1;
        }
    }

    /// Records a named occurrence count alongside the timing buckets (e.g.
    /// fluid fast/slow solve counters sampled at the end of a run). Counts
    /// accumulate across calls with the same name.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        if let Some(entry) = self.counters.iter_mut().find(|(n, _)| n == name) {
            entry.1 += value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Merges another profiler's buckets and counters into this one (used by
    /// the scenario engine to aggregate per-run profiles).
    pub fn absorb(&mut self, other: &Profiler) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            mine.nanos += theirs.nanos;
            mine.count += theirs.count;
        }
        for (name, value) in &other.counters {
            self.add_counter(name, *value);
        }
    }

    /// Builds the report. `scenario` describes what was run (policy, job
    /// count, flags) in the same spirit as the BENCH files' scenario line.
    pub fn report(&self, scenario: &str) -> ProfileReport {
        ProfileReport {
            bench: "self-profile".to_string(),
            harness: "cgsim-obs Profiler; wall-clock per subsystem, buckets nest inside event_loop"
                .to_string(),
            scenario: scenario.to_string(),
            results: ALL_SUBSYSTEMS
                .iter()
                .map(|&sub| {
                    let bucket = self.buckets[sub as usize];
                    SubsystemReport {
                        case: sub.label().to_string(),
                        wall_s: bucket.nanos as f64 / 1e9,
                        count: bucket.count,
                    }
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(name, value)| CounterReport {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
        }
    }
}

/// One timing bucket of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemReport {
    /// Subsystem label (BENCH-protocol `case`).
    pub case: String,
    /// Total wall-clock attributed to the subsystem, seconds.
    pub wall_s: f64,
    /// Number of timed regions.
    pub count: u64,
}

/// One named counter of the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterReport {
    /// Counter name (e.g. `fluid_fast_solves`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// The machine-readable profile, shaped after the BENCH perf-trajectory
/// protocol so snapshots can be diffed across PRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Always `"self-profile"`.
    pub bench: String,
    /// How the numbers were produced.
    pub harness: String,
    /// What was run.
    pub scenario: String,
    /// Per-subsystem timing buckets.
    pub results: Vec<SubsystemReport>,
    /// Named occurrence counters.
    #[serde(default)]
    pub counters: Vec<CounterReport>,
}

impl ProfileReport {
    /// Renders the human-readable summary table printed by `--profile`.
    pub fn summary_table(&self) -> String {
        let mut out =
            String::from("profile (wall-clock per subsystem; buckets nest inside event_loop)\n");
        out.push_str(&format!(
            "  {:<14} {:>12} {:>10}\n",
            "subsystem", "wall_s", "count"
        ));
        for row in &self.results {
            out.push_str(&format!(
                "  {:<14} {:>12.6} {:>10}\n",
                row.case, row.wall_s, row.count
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for counter in &self.counters {
                out.push_str(&format!("    {:<24} {}\n", counter.name, counter.value));
            }
        }
        out
    }

    /// Renders the `profile.json` payload (pretty JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_reads_no_clock_and_reports_zeros() {
        let mut p = Profiler::new(false);
        assert!(!p.enabled());
        let t = p.start();
        assert!(t.is_none());
        p.stop(Subsystem::Fluid, t);
        p.add_counter("x", 5);
        let report = p.report("test");
        assert!(report
            .results
            .iter()
            .all(|r| r.wall_s == 0.0 && r.count == 0));
        assert!(report.counters.is_empty());
    }

    #[test]
    fn enabled_profiler_accumulates() {
        let mut p = Profiler::new(true);
        for _ in 0..3 {
            let t = p.start();
            assert!(t.is_some());
            p.stop(Subsystem::EventLoop, t);
        }
        p.add_counter("fluid_fast_solves", 7);
        p.add_counter("fluid_fast_solves", 3);
        let report = p.report("demo");
        let loop_row = &report.results[Subsystem::EventLoop as usize];
        assert_eq!(loop_row.case, "event_loop");
        assert_eq!(loop_row.count, 3);
        assert_eq!(report.counters.len(), 1);
        assert_eq!(report.counters[0].value, 10);
    }

    #[test]
    fn absorb_merges_buckets_and_counters() {
        let mut a = Profiler::new(true);
        let t = a.start();
        a.stop(Subsystem::CacheLookup, t);
        a.add_counter("runs", 1);
        let mut b = Profiler::new(true);
        let t = b.start();
        b.stop(Subsystem::CacheLookup, t);
        b.add_counter("runs", 2);
        a.absorb(&b);
        let report = a.report("merged");
        assert_eq!(report.results[Subsystem::CacheLookup as usize].count, 2);
        assert_eq!(report.counters[0].value, 3);
    }

    #[test]
    fn report_round_trips_and_renders() {
        let mut p = Profiler::new(true);
        let t = p.start();
        p.stop(Subsystem::Checkpoint, t);
        p.add_counter("events", 42);
        let report = p.report("sites=6 jobs=500 seed=7");
        let json = report.to_json();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.bench, "self-profile");
        let table = report.summary_table();
        assert!(table.contains("checkpoint"));
        assert!(table.contains("events"));
    }
}
