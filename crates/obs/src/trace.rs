//! The deterministic structured trace: record schema, category filtering,
//! and pluggable sinks (JSONL and Chrome `trace_event` JSON).
//!
//! A trace is a flat sequence of [`TraceRecord`]s. Every record carries the
//! *simulated* time of the thing it describes and a sequence number assigned
//! in emission order — both are pure functions of the scenario, so a trace
//! file is byte-identical across repeated runs of the same scenario (this is
//! asserted by the end-to-end tests and the CI trace gate).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

/// What part of the simulated grid a record describes.
///
/// Categories are also the unit of filtering: the tracer holds a bitmask and
/// emission sites test it before building a record, so filtered-out (and
/// fully disabled) categories cost one branch and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// Job lifecycle spans: input staging, execution segments, output.
    Job,
    /// Fault replay actions: outages, node losses, link degradations, kills.
    Fault,
    /// Checkpoint writes, restores, and invalidations.
    Ckpt,
    /// Fluid-model activity: transfer admissions and completions.
    Fluid,
    /// Allocation-policy decisions at the main server.
    Broker,
    /// Re-replication repair activity: deficit detection, repair transfers,
    /// retries, and abandonments.
    Repair,
}

/// Every category, in bit order.
pub const ALL_CATEGORIES: [TraceCategory; 6] = [
    TraceCategory::Job,
    TraceCategory::Fault,
    TraceCategory::Ckpt,
    TraceCategory::Fluid,
    TraceCategory::Broker,
    TraceCategory::Repair,
];

/// Bitmask enabling every category.
pub const MASK_ALL: u32 = (1 << ALL_CATEGORIES.len()) - 1;

impl TraceCategory {
    /// The category's bit in a filter mask.
    #[inline]
    pub fn bit(self) -> u32 {
        1 << self as u32
    }

    /// The category's stable lowercase label (the `cat` field of the JSONL
    /// schema and the `cat` of Chrome trace events).
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::Job => "job",
            TraceCategory::Fault => "fault",
            TraceCategory::Ckpt => "ckpt",
            TraceCategory::Fluid => "fluid",
            TraceCategory::Broker => "broker",
            TraceCategory::Repair => "repair",
        }
    }

    /// Parses a label produced by [`TraceCategory::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        ALL_CATEGORIES.into_iter().find(|c| c.label() == label)
    }
}

impl Serialize for TraceCategory {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for TraceCategory {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => TraceCategory::from_label(s)
                .ok_or_else(|| serde::Error::custom(format!("unknown trace category `{s}`"))),
            other => Err(serde::Error::custom(format!(
                "expected trace category string, got {other}"
            ))),
        }
    }
}

/// Parses a `--trace-filter` list (`"job,fault,ckpt"`, or `"all"`) into a
/// category bitmask.
pub fn parse_filter(spec: &str) -> Result<u32, String> {
    let spec = spec.trim();
    if spec.is_empty() || spec == "all" {
        return Ok(MASK_ALL);
    }
    let mut mask = 0;
    for part in spec.split(',') {
        let part = part.trim();
        match TraceCategory::from_label(part) {
            Some(cat) => mask |= cat.bit(),
            None => {
                return Err(format!(
                    "unknown trace category `{part}` (expected one of job, fault, ckpt, fluid, broker, repair, all)"
                ))
            }
        }
    }
    Ok(mask)
}

/// Whether a record opens a span, closes one, or marks a point in time.
///
/// The labels mirror the Chrome `trace_event` phase letters so the two
/// formats describe the same structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instantaneous event (`"i"`).
    Instant,
}

impl SpanPhase {
    /// The Chrome `ph` letter.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
        }
    }

    /// Parses a label produced by [`SpanPhase::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "B" => Some(SpanPhase::Begin),
            "E" => Some(SpanPhase::End),
            "i" => Some(SpanPhase::Instant),
            _ => None,
        }
    }
}

impl Serialize for SpanPhase {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for SpanPhase {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::String(s) => SpanPhase::from_label(s)
                .ok_or_else(|| serde::Error::custom(format!("unknown span phase `{s}`"))),
            other => Err(serde::Error::custom(format!(
                "expected span phase string, got {other}"
            ))),
        }
    }
}

/// One line of the JSONL trace schema.
///
/// Field order is the serialization order. `seq` is assigned in emission
/// order by the tracer; `time_s` is simulated seconds. Neither depends on
/// wall-clock, so records are byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonically increasing sequence number (stable id).
    pub seq: u64,
    /// Simulated time of the event, seconds.
    pub time_s: f64,
    /// Category (also the filter unit).
    pub cat: TraceCategory,
    /// Span begin / span end / instant.
    pub ph: SpanPhase,
    /// What happened, e.g. `"execute"`, `"fault.outage"`, `"ckpt.write"`.
    pub kind: String,
    /// Job the record concerns, if any.
    pub job: Option<u64>,
    /// Site the record concerns, if any.
    pub site: Option<String>,
    /// Free-form detail (bytes staged, chosen policy target, …).
    pub info: Option<String>,
}

impl TraceRecord {
    /// Checks the schema invariants a well-formed record must satisfy.
    pub fn validate(&self) -> Result<(), String> {
        if !self.time_s.is_finite() || self.time_s < 0.0 {
            return Err(format!(
                "record {}: time_s must be finite and non-negative, got {}",
                self.seq, self.time_s
            ));
        }
        if self.kind.is_empty() {
            return Err(format!("record {}: empty kind", self.seq));
        }
        Ok(())
    }
}

/// Where trace records go.
///
/// Sinks are fed records in sequence order and flushed once at the end of
/// the run. A sink must not reorder or drop records: byte-identity of the
/// output across runs is part of the contract.
pub trait TraceSink {
    /// Accepts the next record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes and finalizes the output. Returns the first I/O error
    /// encountered at any point, so a full disk is reported rather than
    /// silently producing a truncated trace.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that keeps records in memory (tests, and the serve path which
/// renders the trace into the response).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The records received so far.
    pub records: Vec<TraceRecord>,
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(rec.clone());
    }
}

/// Renders records as JSON Lines: one [`TraceRecord`] object per line.
pub struct JsonlSink<W: Write> {
    out: W,
    err: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates a JSONL sink writing to a new file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Creates a JSONL sink over an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink { out, err: None }
    }

    /// Flushes and returns the underlying writer (surfacing deferred errors).
    pub fn into_inner(mut self) -> io::Result<W> {
        self.finish()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.err.is_some() {
            return;
        }
        let line = serde_json::to_string(rec).expect("trace record serializes");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.err = Some(e);
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Renders records in the Chrome `trace_event` JSON format, loadable in
/// Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
///
/// Mapping: `ts` is simulated time in microseconds, `pid` is always 1,
/// `tid` is the job id + 1 (so each job is its own track, with `B`/`E`
/// spans nesting per job) or 0 for grid-level events, and `args` carries
/// the site and detail strings.
pub struct ChromeSink<W: Write> {
    out: W,
    err: Option<io::Error>,
    any: bool,
}

impl ChromeSink<BufWriter<File>> {
    /// Creates a Chrome-format sink writing to a new file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(ChromeSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> ChromeSink<W> {
    /// Creates a Chrome-format sink over an arbitrary writer.
    pub fn new(out: W) -> Self {
        ChromeSink {
            out,
            err: None,
            any: false,
        }
    }

    /// Converts one record into a `trace_event` object.
    fn event_value(rec: &TraceRecord) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("name".to_string(), serde::Value::String(rec.kind.clone()));
        map.insert(
            "cat".to_string(),
            serde::Value::String(rec.cat.label().to_string()),
        );
        map.insert(
            "ph".to_string(),
            serde::Value::String(rec.ph.label().to_string()),
        );
        // Microseconds of simulated time; purely a function of the scenario.
        map.insert("ts".to_string(), (rec.time_s * 1e6).serialize_value());
        map.insert("pid".to_string(), 1u64.serialize_value());
        let tid = rec.job.map(|j| j + 1).unwrap_or(0);
        map.insert("tid".to_string(), tid.serialize_value());
        if rec.ph == SpanPhase::Instant {
            map.insert("s".to_string(), serde::Value::String("t".to_string()));
        }
        let mut args = serde::Map::new();
        args.insert("seq".to_string(), rec.seq.serialize_value());
        if let Some(site) = &rec.site {
            args.insert("site".to_string(), serde::Value::String(site.clone()));
        }
        if let Some(info) = &rec.info {
            args.insert("info".to_string(), serde::Value::String(info.clone()));
        }
        map.insert("args".to_string(), serde::Value::Object(args));
        serde::Value::Object(map)
    }
}

impl<W: Write> TraceSink for ChromeSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.err.is_some() {
            return;
        }
        let result = if self.any {
            self.out.write_all(b",\n")
        } else {
            self.out.write_all(b"{\"traceEvents\":[\n")
        };
        self.any = true;
        let event = serde::format_compact(&Self::event_value(rec));
        if let Err(e) = result.and_then(|()| self.out.write_all(event.as_bytes())) {
            self.err = Some(e);
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        if self.any {
            self.out.write_all(b"\n]}\n")?;
        } else {
            self.out.write_all(b"{\"traceEvents\":[]}\n")?;
        }
        self.out.flush()
    }
}

/// The tracer the simulation core holds: a category mask, a sequence
/// counter, and the sink.
///
/// The core stores it as `Option<Tracer>` so the fully-off path is a single
/// `None` test; with tracing on but a category filtered out,
/// [`Tracer::wants`] rejects before any record is built.
pub struct Tracer {
    mask: u32,
    seq: u64,
    sink: Box<dyn TraceSink>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("mask", &self.mask)
            .field("seq", &self.seq)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Creates a tracer emitting categories in `mask` to `sink`.
    pub fn new(sink: Box<dyn TraceSink>, mask: u32) -> Self {
        Tracer { mask, seq: 0, sink }
    }

    /// Whether records of `cat` would be emitted. Emission sites that need
    /// to build strings should test this first.
    #[inline]
    pub fn wants(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Emits a record (no-op if `cat` is filtered out). `info` is taken as
    /// an owned `String` — build it behind a [`Tracer::wants`] test.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &mut self,
        time_s: f64,
        cat: TraceCategory,
        ph: SpanPhase,
        kind: &str,
        job: Option<u64>,
        site: Option<&str>,
        info: Option<String>,
    ) {
        if !self.wants(cat) {
            return;
        }
        let rec = TraceRecord {
            seq: self.seq,
            time_s,
            cat,
            ph,
            kind: kind.to_string(),
            job,
            site: site.map(str::to_string),
            info,
        };
        self.seq += 1;
        self.sink.record(&rec);
    }

    /// Number of records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Finalizes the sink, surfacing any deferred I/O error.
    pub fn finish(&mut self) -> io::Result<()> {
        self.sink.finish()
    }
}

/// Validates a JSONL trace: every line must parse as a [`TraceRecord`]
/// satisfying the schema invariants, with strictly increasing `seq`.
/// Returns the number of records.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_seq: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        rec.validate()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(prev) = last_seq {
            if rec.seq <= prev {
                return Err(format!(
                    "line {}: seq {} not increasing (previous {})",
                    lineno + 1,
                    rec.seq,
                    prev
                ));
            }
        }
        last_seq = Some(rec.seq);
        count += 1;
    }
    Ok(count)
}

/// Validates a Chrome-format trace: the file must be a JSON object whose
/// `traceEvents` array contains well-formed `trace_event` objects (string
/// `name`/`cat`/`ph`, numeric `ts`/`pid`/`tid`). Returns the event count.
pub fn validate_chrome(text: &str) -> Result<usize, String> {
    let value: serde::Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    let events = value
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .ok_or_else(|| "expected top-level object with a traceEvents array".to_string())?;
    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}]: not an object"))?;
        for key in ["name", "cat", "ph"] {
            if !matches!(obj.get(key), Some(serde::Value::String(_))) {
                return Err(format!("traceEvents[{i}]: missing string field `{key}`"));
            }
        }
        for key in ["ts", "pid", "tid"] {
            if obj.get(key).and_then(|v| v.as_number()).is_none() {
                return Err(format!("traceEvents[{i}]: missing numeric field `{key}`"));
            }
        }
        let ph = obj.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if SpanPhase::from_label(ph).is_none() {
            return Err(format!("traceEvents[{i}]: unknown ph `{ph}`"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            time_s: 12.5,
            cat: TraceCategory::Job,
            ph: SpanPhase::Begin,
            kind: "execute".into(),
            job: Some(41),
            site: Some("CERN".into()),
            info: None,
        }
    }

    #[test]
    fn filter_parsing() {
        assert_eq!(parse_filter("all").unwrap(), MASK_ALL);
        assert_eq!(parse_filter("").unwrap(), MASK_ALL);
        assert_eq!(
            parse_filter("job,fault").unwrap(),
            TraceCategory::Job.bit() | TraceCategory::Fault.bit()
        );
        assert_eq!(
            parse_filter(" ckpt , fluid ,broker").unwrap(),
            TraceCategory::Ckpt.bit() | TraceCategory::Fluid.bit() | TraceCategory::Broker.bit()
        );
        assert!(parse_filter("job,nope").is_err());
    }

    #[test]
    fn category_labels_round_trip() {
        for cat in ALL_CATEGORIES {
            assert_eq!(TraceCategory::from_label(cat.label()), Some(cat));
        }
        assert_eq!(TraceCategory::from_label("x"), None);
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let rec = record(3);
        let line = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn tracer_respects_mask_and_assigns_seq() {
        let mut tracer = Tracer::new(Box::new(MemorySink::default()), TraceCategory::Job.bit());
        assert!(tracer.wants(TraceCategory::Job));
        assert!(!tracer.wants(TraceCategory::Fluid));
        tracer.emit(
            1.0,
            TraceCategory::Job,
            SpanPhase::Begin,
            "execute",
            Some(1),
            None,
            None,
        );
        tracer.emit(
            2.0,
            TraceCategory::Fluid,
            SpanPhase::Instant,
            "transfer",
            None,
            None,
            None,
        );
        tracer.emit(
            3.0,
            TraceCategory::Job,
            SpanPhase::End,
            "execute",
            Some(1),
            None,
            None,
        );
        assert_eq!(tracer.emitted(), 2);
    }

    #[test]
    fn jsonl_sink_and_validator_agree() {
        let mut sink = JsonlSink::new(Vec::new());
        for seq in 0..4 {
            sink.record(&record(seq));
        }
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert_eq!(validate_jsonl(&text).unwrap(), 4);
    }

    #[test]
    fn jsonl_validator_rejects_bad_input() {
        assert!(validate_jsonl("not json\n").is_err());
        // Non-increasing seq.
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&record(1));
        sink.record(&record(1));
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert!(validate_jsonl(&text).unwrap_err().contains("seq"));
        // Negative time.
        let mut bad = record(0);
        bad.time_s = -1.0;
        assert!(bad.validate().is_err());
        let mut empty = record(0);
        empty.kind.clear();
        assert!(empty.validate().is_err());
    }

    #[test]
    fn chrome_sink_produces_wellformed_trace_events() {
        let mut sink = ChromeSink::new(Vec::new());
        let mut begin = record(0);
        begin.info = Some("bytes=100".into());
        sink.record(&begin);
        let mut end = record(1);
        end.ph = SpanPhase::End;
        sink.record(&end);
        let mut instant = record(2);
        instant.ph = SpanPhase::Instant;
        instant.cat = TraceCategory::Fault;
        instant.job = None;
        sink.record(&instant);
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert_eq!(validate_chrome(&text).unwrap(), 3);
        // tid 0 for grid-level, job+1 otherwise; ts in microseconds.
        assert!(text.contains("\"tid\":42"));
        assert!(text.contains("\"tid\":0"));
        assert!(text.contains("\"ts\":12500000.0"));
        assert!(text.contains("\"s\":\"t\""));
    }

    #[test]
    fn empty_chrome_trace_is_valid() {
        let mut sink = ChromeSink::new(Vec::new());
        sink.finish().unwrap();
        let text = String::from_utf8(sink.out).unwrap();
        assert_eq!(validate_chrome(&text).unwrap(), 0);
    }

    #[test]
    fn chrome_validator_rejects_malformed_events() {
        assert!(validate_chrome("[]").is_err());
        assert!(validate_chrome("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        assert!(validate_chrome(
            "{\"traceEvents\":[{\"name\":\"x\",\"cat\":\"job\",\"ph\":\"Q\",\"ts\":1,\"pid\":1,\"tid\":1}]}"
        )
        .is_err());
    }
}
