//! Property-based tests for the JSONL trace record schema.

use cgsim_obs::{
    validate_jsonl, JsonlSink, SpanPhase, TraceCategory, TraceRecord, TraceSink, ALL_CATEGORIES,
};
use proptest::prelude::*;

const KINDS: [&str; 6] = [
    "execute",
    "input",
    "output",
    "ckpt.write",
    "fault.outage",
    "broker.dispatch",
];

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (
        any::<u32>(),
        0.0f64..1e9,
        0usize..ALL_CATEGORIES.len(),
        0usize..3,
        0usize..KINDS.len(),
        (any::<bool>(), any::<u64>()),
        (any::<bool>(), 0usize..5),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |(seq, time_s, cat, ph, kind, (has_job, job), (has_site, site), (has_info, info))| {
                TraceRecord {
                    seq: seq as u64,
                    time_s,
                    cat: ALL_CATEGORIES[cat],
                    ph: [SpanPhase::Begin, SpanPhase::End, SpanPhase::Instant][ph],
                    kind: KINDS[kind].to_string(),
                    job: has_job.then_some(job),
                    site: has_site.then(|| format!("SITE-{site}")),
                    info: has_info.then(|| format!("bytes={info}")),
                }
            },
        )
}

proptest! {
    /// Any well-formed record survives a JSONL round-trip unchanged.
    #[test]
    fn jsonl_record_round_trips(rec in arb_record()) {
        let line = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(&back, &rec);
        prop_assert!(back.validate().is_ok());
    }

    /// A JSONL file written by the sink validates, with the record count
    /// preserved, for arbitrary record sequences (seq re-assigned in order
    /// as the tracer would).
    #[test]
    fn jsonl_files_validate(recs in prop::collection::vec(arb_record(), 0..40)) {
        let mut sink = JsonlSink::new(Vec::new());
        let n = recs.len();
        for (i, mut rec) in recs.into_iter().enumerate() {
            rec.seq = i as u64;
            sink.record(&rec);
        }
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        prop_assert_eq!(validate_jsonl(&text).unwrap(), n);
    }

    /// Category labels round-trip through the filter parser.
    #[test]
    fn filter_round_trips(mask in 1u32..(1 << ALL_CATEGORIES.len())) {
        let spec: Vec<&str> = ALL_CATEGORIES
            .iter()
            .filter(|c| mask & c.bit() != 0)
            .map(|c| c.label())
            .collect();
        let parsed = cgsim_obs::parse_filter(&spec.join(",")).unwrap();
        prop_assert_eq!(parsed, mask);
        for cat in ALL_CATEGORIES {
            prop_assert_eq!(TraceCategory::from_label(cat.label()), Some(cat));
        }
    }
}
