//! # cgsim-baseline — a coarse-grained GridSim/CloudSim-style baseline
//!
//! The paper motivates CGSim by the fidelity gap of early grid simulators:
//! "frameworks such as GridSim and CloudSim provided accessible environments
//! for modeling grid and cloud systems but often relied on coarse-grained
//! models that limited their accuracy, particularly for data-intensive
//! workloads" (§2). To make that comparison concrete, this crate implements
//! exactly such a coarse-grained simulator:
//!
//! * no network model at all — input staging is free,
//! * no discrete-event engine — jobs are processed in submission order
//!   against a per-core availability calendar,
//! * walltime is the contention-free `work / (cores × nominal speed)`.
//!
//! It is very fast and — as the `baseline_comparison` benchmark shows — it
//! systematically mispredicts queue times and data-heavy walltimes compared
//! with the fluid-model core, which is the fidelity ablation the paper's
//! related-work argument rests on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;

use cgsim_platform::PlatformSpec;
use cgsim_workload::{ideal_walltime, JobKind, Trace};
use serde::{Deserialize, Serialize};

/// Outcome of one job in the coarse-grained model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// Job id.
    pub job_id: u64,
    /// Job class.
    pub kind: JobKind,
    /// Site the job was placed at.
    pub site: String,
    /// Submission time (s).
    pub submit_time: f64,
    /// Execution start time (s).
    pub start_time: f64,
    /// Completion time (s).
    pub end_time: f64,
    /// Predicted walltime (s).
    pub walltime: f64,
    /// Predicted queue time (s).
    pub queue_time: f64,
    /// Ground-truth walltime from the trace, if present.
    pub hist_walltime: Option<f64>,
}

/// Results of a baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineResults {
    /// Per-job outcomes.
    pub outcomes: Vec<BaselineOutcome>,
    /// Virtual makespan (s).
    pub makespan_s: f64,
    /// Wall-clock runtime of the baseline simulation (s).
    pub wall_clock_s: f64,
}

impl BaselineResults {
    /// Mean relative walltime error against the trace ground truth.
    pub fn relative_walltime_error(&self) -> f64 {
        let (sim, truth): (Vec<f64>, Vec<f64>) = self
            .outcomes
            .iter()
            .filter_map(|o| o.hist_walltime.map(|t| (o.walltime, t)))
            .unzip();
        cgsim_des::stats::relative_mae(&sim, &truth)
    }
}

/// The coarse-grained simulator.
#[derive(Debug, Clone, Default)]
pub struct BaselineSimulator;

impl BaselineSimulator {
    /// Creates the simulator.
    pub fn new() -> Self {
        Self
    }

    /// Runs the coarse-grained model: jobs are assigned to their historical
    /// site (falling back to the largest site), and each site is a calendar
    /// of per-core availability times.
    pub fn run(&self, platform: &PlatformSpec, trace: &Trace) -> BaselineResults {
        let started = std::time::Instant::now();

        // Per-site nominal speed and per-core availability calendar.
        let mut site_speed: HashMap<&str, f64> = HashMap::new();
        let mut site_cores: HashMap<&str, Vec<f64>> = HashMap::new();
        let mut largest_site = "";
        let mut largest_cores = 0u64;
        for site in &platform.sites {
            site_speed.insert(site.name.as_str(), site.hosts[0].speed_per_core);
            site_cores.insert(
                site.name.as_str(),
                vec![0.0; site.total_cores().min(100_000) as usize],
            );
            if site.total_cores() > largest_cores {
                largest_cores = site.total_cores();
                largest_site = site.name.as_str();
            }
        }

        let mut outcomes = Vec::with_capacity(trace.jobs.len());
        let mut makespan: f64 = 0.0;
        for job in &trace.jobs {
            let site = if site_speed.contains_key(job.hist_site.as_str()) {
                job.hist_site.as_str()
            } else {
                largest_site
            };
            let speed = site_speed[site];
            let walltime = ideal_walltime(job.work_hs23, job.cores, speed);
            let calendar = site_cores.get_mut(site).expect("site exists");
            // Find the `cores` earliest-available cores; the job starts when
            // the last of them frees up (or at its submission time).
            let cores = (job.cores as usize).min(calendar.len()).max(1);
            let mut indices: Vec<usize> = (0..calendar.len()).collect();
            indices.sort_by(|&a, &b| calendar[a].partial_cmp(&calendar[b]).expect("finite"));
            let chosen = &indices[..cores];
            let ready = chosen.iter().map(|&i| calendar[i]).fold(0.0f64, f64::max);
            let start = ready.max(job.submit_time);
            let end = start + walltime;
            for &i in chosen {
                calendar[i] = end;
            }
            makespan = makespan.max(end);
            outcomes.push(BaselineOutcome {
                job_id: job.id.0,
                kind: job.kind,
                site: site.to_string(),
                submit_time: job.submit_time,
                start_time: start,
                end_time: end,
                walltime,
                queue_time: start - job.submit_time,
                hist_walltime: job.hist_walltime,
            });
        }

        BaselineResults {
            outcomes,
            makespan_s: makespan,
            wall_clock_s: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn run(jobs: usize, seed: u64) -> (BaselineResults, Trace) {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
        (BaselineSimulator::new().run(&platform, &trace), trace)
    }

    #[test]
    fn every_job_gets_an_outcome() {
        let (results, trace) = run(300, 3);
        assert_eq!(results.outcomes.len(), trace.len());
        for o in &results.outcomes {
            assert!(o.end_time >= o.start_time);
            assert!(o.start_time >= o.submit_time);
            assert!(o.walltime > 0.0);
            assert!(o.queue_time >= 0.0);
        }
        assert!(results.makespan_s > 0.0);
    }

    #[test]
    fn is_deterministic() {
        let (a, _) = run(100, 9);
        let (b, _) = run(100, 9);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn jobs_follow_historical_sites() {
        let (results, trace) = run(100, 5);
        for (o, j) in results.outcomes.iter().zip(&trace.jobs) {
            assert_eq!(o.site, j.hist_site);
        }
    }

    #[test]
    fn walltime_error_is_nonzero_against_ground_truth() {
        // The baseline ignores the hidden true speeds, so its error against
        // the ground truth must be substantial (this is the fidelity gap).
        let (results, _) = run(400, 7);
        let err = results.relative_walltime_error();
        assert!(err > 0.05, "baseline error unexpectedly small: {err}");
    }

    #[test]
    fn contention_delays_jobs_on_small_sites() {
        let mut platform = example_platform();
        // Shrink every site drastically so queueing must happen.
        for site in &mut platform.sites {
            site.hosts[0].cores = 4;
        }
        let mut cfg = TraceConfig::with_jobs(200, 11);
        cfg.submission_window_s = 0.0;
        let trace = TraceGenerator::new(cfg).generate(&platform);
        let results = BaselineSimulator::new().run(&platform, &trace);
        let queued = results
            .outcomes
            .iter()
            .filter(|o| o.queue_time > 0.0)
            .count();
        assert!(queued > 50, "expected queueing, got {queued}");
    }
}
