//! End-to-end battery for checkpoint/restart under fault injection:
//!
//! * a checkpointed run recomputes strictly less work (and takes no longer)
//!   than a scratch-rerun run under the same fault schedule,
//! * a checkpoint destroyed by a disk fault falls back to an older surviving
//!   checkpoint at another node, and to a scratch rerun when nothing
//!   survives,
//! * a zero-checkpoint configuration is byte-identical to the default one,
//! * a faulted + checkpointed double-run is bit-identical,
//! * an in-flight staging transfer whose *source site* dies mid-flight is
//!   re-planned from the surviving replicas while its job lives on
//!   elsewhere (the data-loss audit regression).

use cgsim_core::{
    CheckpointConfig, CheckpointTarget, ExecutionConfig, Simulation, SimulationResults,
};
use cgsim_faults::{parse_fault_spec, FaultAction, FaultEvent, FaultPlan, FaultTopology};
use cgsim_platform::spec::MAIN_SERVER;
use cgsim_platform::{LinkSpec, NodeId, PlatformSpec, SiteId, SiteSpec, Tier};
use cgsim_workload::{JobKind, JobRecord, Trace};

fn two_site_platform() -> PlatformSpec {
    PlatformSpec::new("checkpointed")
        .with_site(SiteSpec::uniform("Big", Tier::Tier1, 2_000, 10.0))
        .with_site(SiteSpec::uniform("Small", Tier::Tier2, 400, 10.0))
        .with_link(LinkSpec::new("Big", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Small", MAIN_SERVER, 100.0, 10.0))
}

/// `count` identical single-core jobs at t = 0, `work_s` seconds of work on
/// a 10-speed core, tiny input, no output stage-out.
fn flat_trace(count: usize, work_s: f64) -> Trace {
    let jobs = (0..count)
        .map(|i| {
            let mut record = JobRecord::new(i as u64, JobKind::SingleCore, 1, work_s * 10.0);
            record.input_bytes = 1_000_000;
            record.output_bytes = 0;
            record
        })
        .collect();
    Trace {
        jobs,
        ..Trace::default()
    }
}

fn run(plan: Option<FaultPlan>, exec: ExecutionConfig, trace: Trace) -> SimulationResults {
    let mut builder = Simulation::builder()
        .platform_spec(&two_site_platform())
        .unwrap()
        .trace(trace)
        .policy_name("least-loaded")
        .execution(exec);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder.run().unwrap()
}

/// Small, cheap checkpoints so write overhead stays negligible next to the
/// recomputation they save.
fn cheap_checkpoints(interval_s: f64, target: CheckpointTarget) -> CheckpointConfig {
    CheckpointConfig {
        interval_s,
        base_bytes: 100_000_000,
        bytes_per_core: 0,
        target,
        ..CheckpointConfig::default()
    }
}

fn one_outage(start: f64, duration: f64) -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent {
                time_s: start,
                action: FaultAction::SiteDown { site: 0 },
            },
            FaultEvent {
                time_s: start + duration,
                action: FaultAction::SiteUp { site: 0 },
            },
        ],
    }
}

#[test]
fn checkpointed_run_recomputes_less_work_than_scratch() {
    // 60 one-hour jobs, all at Big; Big dies at t = 2700 (75 % through) for
    // 10 minutes. Scratch reruns pay the full 45 min per job again; with
    // 10-minute checkpoints to the main server at most ~10 min per job is
    // recomputed.
    let trace = flat_trace(60, 3_600.0);
    let plan = one_outage(2_700.0, 600.0);

    let scratch = run(
        Some(plan.clone()),
        ExecutionConfig::default(),
        trace.clone(),
    );
    let exec = ExecutionConfig {
        checkpoint: cheap_checkpoints(600.0, CheckpointTarget::MainServer),
        ..ExecutionConfig::default()
    };
    let checkpointed = run(Some(plan), exec, trace);

    // Both runs saw the same schedule and completed the workload.
    for r in [&scratch, &checkpointed] {
        assert_eq!(r.grid_counters.site_outages, 1);
        assert_eq!(r.grid_counters.job_interruptions, 60);
        assert_eq!(r.metrics.finished_jobs, 60);
        assert_eq!(r.metrics.failed_jobs, 0);
    }

    // The scratch run discarded ~45 min x 60 jobs of completed work; the
    // checkpointed run recomputes strictly less and finishes no later.
    assert_eq!(scratch.grid_counters.checkpoints_written, 0);
    assert!(checkpointed.grid_counters.checkpoints_written >= 60 * 4);
    assert_eq!(checkpointed.grid_counters.checkpoint_restores, 60);
    assert!(checkpointed.grid_counters.work_saved_s > 0.0);
    assert!(
        checkpointed.grid_counters.work_lost_s < scratch.grid_counters.work_lost_s,
        "checkpointed lost {} s vs scratch {} s",
        checkpointed.grid_counters.work_lost_s,
        scratch.grid_counters.work_lost_s
    );
    assert!(
        checkpointed.makespan_s <= scratch.makespan_s,
        "checkpointed makespan {} vs scratch {}",
        checkpointed.makespan_s,
        scratch.makespan_s
    );
    // The scratch run threw away ~2700 s per job (minus pre-kill staging);
    // sanity-check the magnitude so the counter means what it claims.
    assert!(scratch.grid_counters.work_lost_s > 60.0 * 2_000.0);
    assert!(checkpointed.grid_counters.work_lost_s < 60.0 * 1_000.0);
}

#[test]
fn disk_fault_falls_back_to_older_checkpoint_then_scratch() {
    // One 2 h job at Big with site-local checkpoints every 10 min.
    //
    //  t=1500  node loss kills the job at Big; its Big checkpoint (t=1200,
    //          frac 1/6) survives on disk, so the resume at Small re-stages
    //          it over the WAN            -> restore #1 (remote, from Big)
    //  t=4000  disk loss at Small destroys the newer Small checkpoints;
    //          the older Big checkpoint survives
    //  t=4200  targeted kill; recovery falls back to the *older* Big
    //          checkpoint                 -> restore #2 (remote, from Big)
    let trace = flat_trace(1, 7_200.0);
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                time_s: 1_500.0,
                action: FaultAction::NodeLoss {
                    site: 0,
                    fraction: 1.0,
                },
            },
            FaultEvent {
                time_s: 4_000.0,
                action: FaultAction::DiskLoss { site: 1 },
            },
            FaultEvent {
                time_s: 4_200.0,
                action: FaultAction::KillJob { job: 0 },
            },
        ],
    };
    let exec = ExecutionConfig {
        checkpoint: cheap_checkpoints(600.0, CheckpointTarget::SiteStorage),
        ..ExecutionConfig::default()
    };
    let results = run(Some(plan), exec, trace);

    let g = &results.grid_counters;
    assert_eq!(g.disk_losses, 1);
    assert_eq!(g.job_interruptions, 2);
    assert_eq!(g.checkpoint_restores, 2, "both kills restored remotely");
    assert!(
        g.checkpoints_lost >= 1,
        "the Small checkpoint was destroyed"
    );
    assert_eq!(results.metrics.finished_jobs, 1);
    assert_eq!(results.metrics.failed_jobs, 0);
    // Both restores resumed from the same t=1200 Big checkpoint (frac 1/6 of
    // a 7200 s job): ~1200 s saved each.
    assert!(
        (g.work_saved_s - 2_400.0).abs() < 300.0,
        "work saved: {} s",
        g.work_saved_s
    );
    // The job was pushed to Small after Big's node loss.
    let outcome = &results.outcomes[0];
    assert_eq!(outcome.site, "Small");
    // Restores re-staged checkpoint bytes on top of the (re-staged) input.
    assert!(outcome.staged_bytes >= 2 * 100_000_000);
}

#[test]
fn scratch_rerun_when_no_checkpoint_survives() {
    // Same shape, but the kill lands while the job is still at Big and a
    // site outage (rather than node loss) destroys Big's storage: nothing
    // survives, so recovery is a scratch rerun with zero restores.
    let trace = flat_trace(1, 7_200.0);
    let plan = one_outage(1_500.0, 600.0);
    let exec = ExecutionConfig {
        checkpoint: cheap_checkpoints(600.0, CheckpointTarget::SiteStorage),
        ..ExecutionConfig::default()
    };
    let results = run(Some(plan), exec, trace);
    let g = &results.grid_counters;
    assert_eq!(g.job_interruptions, 1);
    assert_eq!(
        g.checkpoint_restores, 0,
        "site-local checkpoints died with Big"
    );
    assert!(g.checkpoints_lost >= 1);
    assert_eq!(results.metrics.finished_jobs, 1);
    // Everything computed before the outage was discarded.
    assert!(g.work_lost_s > 1_000.0);
}

#[test]
fn zero_checkpoint_config_is_byte_identical_to_default() {
    // interval 0 disables the subsystem completely: a config carrying wild
    // size/target settings (but interval 0) must reproduce the default
    // config's faulted run byte for byte.
    let config = parse_fault_spec(
        "outage:site=all,mttf=30m,mttr=10m;degrade:link=all,factor=0.25,mttf=1h,mttr=10m;kill:rate=6",
    )
    .unwrap();
    let topology = FaultTopology {
        sites: 2,
        links: vec![2, 3],
        jobs: 150,
    };
    let plan = FaultPlan::generate(&config, &topology, 7);

    let weird = ExecutionConfig {
        checkpoint: CheckpointConfig {
            interval_s: 0.0,
            base_bytes: u64::MAX / 4,
            bytes_per_core: 123_456_789,
            target: CheckpointTarget::MainServer,
            ..CheckpointConfig::default()
        },
        ..ExecutionConfig::default()
    };
    let a = run(
        Some(plan.clone()),
        ExecutionConfig::default(),
        flat_trace(150, 5_000.0),
    );
    let b = run(Some(plan), weird, flat_trace(150, 5_000.0));
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.engine_events, b.engine_events);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.site, y.site);
        assert_eq!(x.final_state, y.final_state);
        assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
        assert_eq!(x.end_time.to_bits(), y.end_time.to_bits());
    }
    // The schedule actually produced churn, so the equality is meaningful.
    assert!(a.grid_counters.job_interruptions > 0);
    assert_eq!(a.grid_counters.checkpoints_written, 0);
}

#[test]
fn checkpointed_faulted_double_run_is_bit_identical() {
    let config = parse_fault_spec(
        "outage:site=all,mttf=40m,mttr=10m;diskloss:site=all,mttf=20m;kill:rate=4",
    )
    .unwrap();
    let topology = FaultTopology {
        sites: 2,
        links: vec![2, 3],
        jobs: 150,
    };
    let make = || {
        let plan = FaultPlan::generate(&config, &topology, 7);
        let exec = ExecutionConfig {
            checkpoint: cheap_checkpoints(900.0, CheckpointTarget::MainServer),
            ..ExecutionConfig::default()
        };
        run(Some(plan), exec, flat_trace(150, 5_000.0))
    };
    let a = make();
    let b = make();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.engine_events, b.engine_events);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.site, y.site);
        assert_eq!(x.final_state, y.final_state);
        assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
        assert_eq!(x.staged_bytes, y.staged_bytes);
    }
    // The checkpoint machinery was genuinely exercised.
    assert!(a.grid_counters.checkpoints_written > 0);
    assert!(a.grid_counters.checkpoint_restores > 0);
    assert!(a.grid_counters.disk_losses > 0);
}

#[test]
fn data_loss_replay_counters_are_pinned() {
    // Regression pin for the indexed data-loss replay: the per-node
    // transfer-peer / checkpoint-holder indexes replaced the O(jobs) scans in
    // `repair_transfers_touching` and `invalidate_checkpoints_at`, and this
    // scenario — site-local checkpoints under outages, disk losses and kills,
    // so both walks fire repeatedly — must reproduce the integer counters the
    // scan implementation produced, exactly. (Debug builds additionally
    // cross-check index-vs-scan agreement on every data-loss event via
    // debug_asserts in the replay itself.)
    let config = parse_fault_spec(
        "outage:site=all,mttf=40m,mttr=10m;diskloss:site=all,mttf=20m;kill:rate=4",
    )
    .unwrap();
    let topology = FaultTopology {
        sites: 2,
        links: vec![2, 3],
        jobs: 150,
    };
    let plan = FaultPlan::generate(&config, &topology, 11);
    let exec = ExecutionConfig {
        checkpoint: cheap_checkpoints(900.0, CheckpointTarget::SiteStorage),
        ..ExecutionConfig::default()
    };
    let results = run(Some(plan), exec, flat_trace(150, 5_000.0));

    let g = &results.grid_counters;
    let staged_total: u64 = results.outcomes.iter().map(|o| o.staged_bytes).sum();
    let pinned = (
        results.metrics.finished_jobs,
        results.metrics.failed_jobs,
        g.site_outages,
        g.disk_losses,
        g.job_interruptions,
        g.checkpoints_written,
        g.checkpoint_restores,
        g.checkpoints_lost,
        results.engine_events,
        staged_total,
    );
    assert_eq!(
        pinned,
        (142, 8, 3, 19, 317, 895, 7, 599, 1255, 1_154_000_000),
        "data-loss replay counters drifted from the scan implementation"
    );
}

/// Pins job 0 to Big and job 1 to Small regardless of load.
struct PinByJobId;
impl cgsim_policies::AllocationPolicy for PinByJobId {
    fn name(&self) -> &str {
        "pin-by-job-id"
    }
    fn assign_job(&mut self, job: &JobRecord, _view: &cgsim_policies::GridView) -> Option<SiteId> {
        Some(SiteId::new((job.id.0 % 2) as usize))
    }
}

/// Prefers the replica at Big (site 0) when one exists there.
struct PreferBigReplica;
impl cgsim_policies::DataMovementPolicy for PreferBigReplica {
    fn name(&self) -> &str {
        "prefer-big-replica"
    }
    fn select_source(
        &mut self,
        _job: &JobRecord,
        _destination: SiteId,
        candidates: &[NodeId],
    ) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .find(|&n| n == NodeId::Site(SiteId::new(0)))
    }
}

#[test]
fn staging_transfer_from_dying_site_is_replanned_while_job_survives() {
    // Regression for the data-loss audit: job 1 stages its input *from a
    // replica at Big* while running at Small. Big dies mid-transfer; job 1
    // holds no cores at Big, so the old code path never cancelled the
    // transfer and it kept streaming bytes out of a dead site. The fix
    // re-plans the transfer from the surviving replicas (the main server).
    //
    //  t=0    job 0 runs at Big, stages 20 GB from the main server and
    //         caches the task dataset at Big (it finishes in seconds),
    //  t=100  job 1 starts at Small; the data policy sources the staging
    //         transfer from Big's replica (~2 s at full WAN speed),
    //  t=101  Big goes down mid-transfer.
    let mut trace = flat_trace(2, 10.0);
    for job in &mut trace.jobs {
        job.input_bytes = 20_000_000_000;
    }
    trace.jobs[1].submit_time = 100.0;
    let plan = one_outage(101.0, 3_600.0);

    let results = Simulation::builder()
        .platform_spec(&two_site_platform())
        .unwrap()
        .trace(trace)
        .policy(Box::new(PinByJobId))
        .data_policy(Box::new(PreferBigReplica))
        .execution(ExecutionConfig::default())
        .fault_plan(plan)
        .run()
        .unwrap();

    assert_eq!(results.grid_counters.site_outages, 1);
    // Job 1 was never killed: its cores were at Small the whole time.
    assert_eq!(results.grid_counters.job_interruptions, 0);
    assert_eq!(results.metrics.finished_jobs, 2);
    let job1 = results.outcomes.iter().find(|o| o.id.0 == 1).unwrap();
    assert_eq!(job1.site, "Small");
    // The aborted Big transfer was re-planned and re-transferred in full
    // from the main server: 2 x 20 GB staged in total.
    assert_eq!(job1.staged_bytes, 40_000_000_000);
    assert_eq!(job1.final_state, cgsim_workload::JobState::Finished);
}
