//! End-to-end tests of the fault-injection subsystem, covering the
//! acceptance criteria of the deterministic fault-injection PR:
//!
//! * a zero-fault plan is bit-identical to no plan at all,
//! * the same seed + fault spec run twice is bit-identical,
//! * a site outage mid-run kills and successfully resubmits the affected
//!   jobs, with the interruption/retry counters matching the injected
//!   schedule.

use cgsim_core::{ComputeMode, ExecutionConfig, Simulation, SimulationResults};
use cgsim_faults::{
    parse_fault_spec, FaultAction, FaultEvent, FaultPlan, FaultPlanConfig, FaultTopology,
    MaintenanceSpec,
};
use cgsim_platform::spec::MAIN_SERVER;
use cgsim_platform::{LinkSpec, PlatformSpec, SiteSpec, Tier};
use cgsim_workload::{JobKind, JobRecord, Trace};

/// A two-site platform where "Big" dominates: every load-aware policy sends
/// work there first, which makes outage tests predictable.
fn two_site_platform() -> PlatformSpec {
    PlatformSpec::new("faulty")
        .with_site(SiteSpec::uniform("Big", Tier::Tier1, 2_000, 10.0))
        .with_site(SiteSpec::uniform("Small", Tier::Tier2, 400, 10.0))
        .with_link(LinkSpec::new("Big", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Small", MAIN_SERVER, 100.0, 10.0))
}

/// `count` identical single-core jobs submitted at t = 0, each roughly
/// `work_s` seconds of work on a 10-speed core, with a tiny input so staging
/// finishes quickly.
fn flat_trace(count: usize, work_s: f64) -> Trace {
    let jobs = (0..count)
        .map(|i| {
            let mut record = JobRecord::new(i as u64, JobKind::SingleCore, 1, work_s * 10.0);
            record.input_bytes = 1_000_000;
            record.output_bytes = 0;
            record
        })
        .collect();
    Trace {
        jobs,
        ..Trace::default()
    }
}

fn run(plan: Option<FaultPlan>, exec: ExecutionConfig, trace: Trace) -> SimulationResults {
    let mut builder = Simulation::builder()
        .platform_spec(&two_site_platform())
        .unwrap()
        .trace(trace)
        .policy_name("least-loaded")
        .execution(exec);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder.run().unwrap()
}

/// A single maintenance outage of `Big` (site 0) at `start` for `duration`.
fn one_outage(start: f64, duration: f64) -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent {
                time_s: start,
                action: FaultAction::SiteDown { site: 0 },
            },
            FaultEvent {
                time_s: start + duration,
                action: FaultAction::SiteUp { site: 0 },
            },
        ],
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_to_no_plan() {
    let trace = flat_trace(120, 2_000.0);
    let a = run(None, ExecutionConfig::default(), trace.clone());
    let b = run(Some(FaultPlan::empty()), ExecutionConfig::default(), trace);
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.engine_events, b.engine_events);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.site, y.site);
        assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
        assert_eq!(x.end_time.to_bits(), y.end_time.to_bits());
    }
}

#[test]
fn same_seed_and_spec_twice_is_bit_identical() {
    let config = parse_fault_spec(
        "outage:site=all,mttf=30m,mttr=10m;degrade:link=all,factor=0.25,mttf=1h,mttr=10m;kill:rate=6",
    )
    .unwrap();
    let topology = FaultTopology {
        sites: 2,
        links: vec![2, 3], // the two WAN links (after the two LAN links)
        jobs: 200,
    };
    let make = || {
        let plan = FaultPlan::generate(&config, &topology, 7);
        run(
            Some(plan),
            ExecutionConfig::default(),
            flat_trace(200, 5_000.0),
        )
    };
    let a = make();
    let b = make();
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.engine_events, b.engine_events);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.site, y.site);
        assert_eq!(x.final_state, y.final_state);
        assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
    }
    // The churn actually did something, so the equality above is meaningful.
    assert!(a.grid_counters.site_outages > 0);
    assert!(a.grid_counters.job_interruptions > 0);
}

#[test]
fn site_outage_kills_and_resubmits_affected_jobs() {
    // 60 one-hour jobs: Big swallows everything at t=0 (2000 cores), then
    // goes down at t=600 for half an hour. Every in-flight job there must be
    // killed and resubmitted; with a generous retry budget they all finish.
    let trace = flat_trace(60, 3_600.0);
    let exec = ExecutionConfig {
        fault_max_retries: 3,
        ..ExecutionConfig::default()
    };
    let results = run(Some(one_outage(600.0, 1_800.0)), exec, trace);

    // Counters match the injected schedule: exactly one outage, and every
    // job was in flight at Big when it died.
    assert_eq!(results.grid_counters.site_outages, 1);
    assert_eq!(results.grid_counters.job_interruptions, 60);
    assert_eq!(results.grid_counters.fault_retries, 60);
    assert_eq!(results.grid_counters.node_losses, 0);
    assert_eq!(results.grid_counters.link_degradations, 0);

    // All jobs were successfully resubmitted and finished.
    assert_eq!(results.metrics.total_jobs, 60);
    assert_eq!(results.metrics.failed_jobs, 0);
    assert_eq!(results.metrics.finished_jobs, 60);

    // The per-site panels surface the interruptions at Big.
    let big = &results.site_panels[0];
    assert_eq!(big.site, "Big");
    assert_eq!(big.interrupted_jobs, 60);
    assert!(big.up, "the outage ended before the run did");

    // Interrupted jobs rerun somewhere: either back at Big after recovery or
    // at Small while Big was down — and their reruns end after the outage.
    for o in &results.outcomes {
        assert!(o.end_time > 600.0);
    }
}

#[test]
fn exhausted_fault_retries_fail_the_job() {
    // Zero fault retries: the outage's victims fail immediately.
    let trace = flat_trace(40, 3_600.0);
    let exec = ExecutionConfig {
        fault_max_retries: 0,
        ..ExecutionConfig::default()
    };
    let results = run(Some(one_outage(600.0, 600.0)), exec, trace);
    assert_eq!(results.grid_counters.job_interruptions, 40);
    assert_eq!(results.grid_counters.fault_retries, 0);
    assert_eq!(results.metrics.failed_jobs, 40);
    assert!(results
        .outcomes
        .iter()
        .all(|o| o.final_state == cgsim_workload::JobState::Failed));
}

#[test]
fn outage_during_time_shared_execution_interrupts_fluid_jobs() {
    // Time-shared execution spreads the whole site capacity over the 30
    // jobs, so they finish fast — the outage must land inside the first
    // minute to catch them in flight.
    let trace = flat_trace(30, 3_600.0);
    let exec = ExecutionConfig {
        compute_mode: ComputeMode::TimeShared,
        fault_max_retries: 3,
        ..ExecutionConfig::default()
    };
    let results = run(Some(one_outage(10.0, 120.0)), exec, trace);
    assert_eq!(results.grid_counters.site_outages, 1);
    assert!(results.grid_counters.job_interruptions >= 30);
    assert_eq!(results.metrics.failed_jobs, 0);
    assert_eq!(results.metrics.finished_jobs, 30);
}

#[test]
fn link_degradation_slows_staging_but_loses_nothing() {
    // Heavy inputs so staging dominates; degrade the WAN to 5 % for most of
    // the run and compare against the fault-free makespan.
    let mut trace = flat_trace(40, 600.0);
    for job in &mut trace.jobs {
        job.input_bytes = 20_000_000_000; // 20 GB over a 100 Gbit/s link
    }
    let clean = run(None, ExecutionConfig::default(), trace.clone());
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                time_s: 1.0,
                action: FaultAction::LinkDegrade {
                    link: 2, // Big's WAN uplink (links 0/1 are the LANs)
                    factor: 0.05,
                },
            },
            FaultEvent {
                time_s: 50_000.0,
                action: FaultAction::LinkRestore { link: 2 },
            },
        ],
    };
    let degraded = run(Some(plan), ExecutionConfig::default(), trace);
    assert_eq!(degraded.grid_counters.link_degradations, 1);
    assert_eq!(degraded.metrics.failed_jobs, 0);
    assert_eq!(degraded.metrics.finished_jobs, 40);
    assert!(
        degraded.makespan_s > clean.makespan_s * 1.5,
        "degraded {} vs clean {}",
        degraded.makespan_s,
        clean.makespan_s
    );
}

#[test]
fn targeted_job_kill_interrupts_exactly_one_job() {
    let trace = flat_trace(20, 3_600.0);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            time_s: 900.0,
            action: FaultAction::KillJob { job: 3 },
        }],
    };
    let exec = ExecutionConfig {
        fault_max_retries: 2,
        ..ExecutionConfig::default()
    };
    let results = run(Some(plan), exec, trace);
    assert_eq!(results.grid_counters.job_interruptions, 1);
    assert_eq!(results.grid_counters.fault_retries, 1);
    assert_eq!(results.metrics.failed_jobs, 0);
    // The killed job reruns from scratch, so it finishes last (all jobs have
    // identical work and started together).
    let victim = results.outcomes.iter().find(|o| o.id.0 == 3).unwrap();
    let max_end = results
        .outcomes
        .iter()
        .map(|o| o.end_time)
        .fold(0.0f64, f64::max);
    assert_eq!(victim.end_time, max_end);
}

#[test]
fn node_loss_reclaims_cores_and_restore_returns_them() {
    // 2000 cores at Big, 2500 single-core jobs of 1h each: Big runs 2000
    // immediately. Losing 50% of Big's cores mid-run must kill ~1000 jobs.
    let trace = flat_trace(2_100, 3_600.0);
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                time_s: 600.0,
                action: FaultAction::NodeLoss {
                    site: 0,
                    fraction: 0.5,
                },
            },
            FaultEvent {
                time_s: 7_200.0,
                action: FaultAction::NodeRestore { site: 0 },
            },
        ],
    };
    let exec = ExecutionConfig {
        fault_max_retries: 3,
        ..ExecutionConfig::default()
    };
    let results = run(Some(plan), exec, trace);
    assert_eq!(results.grid_counters.node_losses, 1);
    // Big had essentially no free cores at t=600 (least-loaded keeps both
    // sites saturated), so most of the 1000 lost cores are reclaimed by
    // killing running jobs.
    assert!(
        results.grid_counters.job_interruptions >= 800,
        "interruptions: {}",
        results.grid_counters.job_interruptions
    );
    assert_eq!(results.metrics.failed_jobs, 0);
    assert_eq!(results.metrics.finished_jobs, 2_100);
}

#[test]
fn fault_chain_stops_with_the_workload() {
    // A plan stretching far past the workload: the run must end when the
    // last job does, not when the plan does.
    let trace = flat_trace(10, 600.0);
    let config = FaultPlanConfig {
        horizon_s: 1_000_000.0,
        maintenance: vec![MaintenanceSpec {
            site: 1,
            start_s: 900_000.0,
            duration_s: 1_000.0,
            period_s: None,
        }],
        ..FaultPlanConfig::default()
    };
    let plan = FaultPlan::generate(
        &config,
        &FaultTopology {
            sites: 2,
            links: vec![2, 3],
            jobs: 10,
        },
        1,
    );
    assert!(!plan.is_empty());
    let results = run(Some(plan), ExecutionConfig::default(), trace);
    assert!(
        results.makespan_s < 100_000.0,
        "makespan inflated by the fault plan: {}",
        results.makespan_s
    );
    assert_eq!(results.grid_counters.site_outages, 0);
}
