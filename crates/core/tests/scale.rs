//! Scale-path end-to-end tests: streaming ingestion at 100k jobs under
//! churn, with checkpoints and bounded monitoring — the configuration the
//! `scale_smoke` CI gate and the `BENCH_scale.json` campaign rows run in.
//!
//! The contract under test:
//!
//! * a streamed 100k-job faulted + checkpointed run is **double-run
//!   byte-identical** (same stream → same `deterministic_json`),
//! * streaming ingestion processes every job (the outcome count matches the
//!   stream length even with kills and outages in play),
//! * bounded monitoring (`max_events` ring + windowed aggregator) keeps the
//!   retained event set capped while the run completes normally.

use cgsim_core::{CheckpointConfig, CheckpointTarget, ExecutionConfig, Simulation};
use cgsim_faults::{parse_fault_spec, FaultPlan, FaultTopology};
use cgsim_monitor::MonitoringConfig;
use cgsim_platform::presets::wlcg_platform;
use cgsim_platform::{Platform, PlatformSpec};
use cgsim_workload::{TraceConfig, TraceGenerator};

const SITES: usize = 6;
const JOBS: usize = 100_000;

/// The site-churn plan the fault bench uses, scaled to the job count.
fn churn_plan(spec: &PlatformSpec, jobs: usize) -> FaultPlan {
    let config = parse_fault_spec(
        "outage:site=all,mttf=2h,mttr=20m;degrade:link=all,factor=0.3,mttf=4h,mttr=30m;kill:rate=2",
    )
    .expect("spec parses");
    let platform = Platform::build(spec).expect("platform builds");
    FaultPlan::generate(&config, &FaultTopology::for_platform(&platform, jobs), 7)
}

/// Checkpoints on, monitoring bounded: the knobs every scale campaign must
/// enable (documented in the README's "Scale campaigns" section).
fn scale_exec() -> ExecutionConfig {
    ExecutionConfig {
        checkpoint: CheckpointConfig {
            interval_s: 1_200.0,
            base_bytes: 1_000_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::MainServer,
            overlap: true,
            delta_bytes_per_s: 10_000_000,
        },
        monitoring: MonitoringConfig {
            enabled: true,
            sample_stride: 100,
            max_events: 10_000,
            window_s: 3_600.0,
            max_windows: 512,
        },
        ..ExecutionConfig::default()
    }
}

fn run_streamed() -> cgsim_core::SimulationResults {
    let spec = wlcg_platform(SITES, 42);
    let generator = TraceGenerator::new(TraceConfig::with_jobs(JOBS, 42));
    Simulation::builder()
        .platform_spec(&spec)
        .expect("platform builds")
        .trace_stream(generator.stream(&spec))
        .policy_name("least-loaded")
        .execution(scale_exec())
        .fault_plan(churn_plan(&spec, JOBS))
        .run()
        .expect("simulation runs")
}

#[test]
fn streamed_faulted_checkpointed_run_is_double_run_identical() {
    let first = run_streamed();
    let second = run_streamed();
    assert_eq!(
        first.deterministic_json(),
        second.deterministic_json(),
        "streamed 100k-job faulted run must be byte-identical across runs"
    );

    // The same run also carries the accounting and bounded-monitoring
    // checks (a third 100k run would only re-prove determinism).
    assert_eq!(
        first.outcomes.len(),
        JOBS,
        "every streamed job must reach a terminal outcome"
    );
    // The event ring drains lazily at twice its cap, so the retained tail
    // is bounded by 2·max_events — never by the job count.
    assert!(
        first.events.len() <= 2 * 10_000,
        "monitoring ring exceeded its cap: {} events",
        first.events.len()
    );
    assert!(
        !first.windows.is_empty(),
        "windowed metrics must be on in the scale configuration"
    );
    assert!(first.makespan_s > 0.0);
}
