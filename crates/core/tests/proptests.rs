//! Property-based tests of whole-simulation invariants.
//!
//! Case counts are kept small because each case runs a full (small)
//! simulation, but the configurations are drawn randomly: job mixes, site
//! counts, policies, failure rates and compute modes.

use cgsim_core::{
    CheckpointConfig, CheckpointTarget, ComputeMode, ExecutionConfig, RepairConfig, Simulation,
};
use cgsim_faults::{parse_fault_spec, FaultPlan, FaultTopology};
use cgsim_platform::presets::wlcg_platform;
use cgsim_workload::{JobState, TraceConfig, TraceGenerator};
use proptest::prelude::*;

fn policies() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "least-loaded",
        "round-robin",
        "random",
        "fastest-available",
        "data-aware",
        "historical-panda",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every simulated job terminates, resources are fully released, and the
    /// per-job timeline is ordered — regardless of policy, failure rate,
    /// compute mode or workload mix.
    #[test]
    fn simulation_invariants_hold(
        jobs in 5usize..60,
        sites in 1usize..8,
        seed in any::<u64>(),
        policy in policies(),
        failure in 0.0f64..0.5,
        retries in 0u32..3,
        multicore in 0.0f64..1.0,
        time_shared in any::<bool>(),
    ) {
        let platform = wlcg_platform(sites, seed ^ 0x1234);
        let mut cfg = TraceConfig::with_jobs(jobs, seed);
        cfg.multicore_fraction = multicore;
        let trace = TraceGenerator::new(cfg).generate(&platform);

        let mut execution = ExecutionConfig::with_policy(policy);
        execution.seed = seed;
        execution.failure_probability = failure;
        execution.max_retries = retries;
        execution.compute_mode = if time_shared {
            ComputeMode::TimeShared
        } else {
            ComputeMode::DedicatedCores
        };

        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name(policy)
            .execution(execution)
            .run()
            .unwrap();

        // Every job reached a terminal state exactly once.
        prop_assert_eq!(results.outcomes.len(), jobs);
        let ids: std::collections::HashSet<_> = results.outcomes.iter().map(|o| o.id).collect();
        prop_assert_eq!(ids.len(), jobs);
        for o in &results.outcomes {
            prop_assert!(o.final_state.is_terminal());
            prop_assert!(o.assign_time >= o.submit_time - 1e-9);
            prop_assert!(o.start_time >= o.assign_time - 1e-9);
            prop_assert!(o.end_time >= o.start_time - 1e-9);
            prop_assert!(o.walltime >= 0.0);
            prop_assert!(o.queue_time >= -1e-9);
            prop_assert!(o.end_time <= results.makespan_s + 1e-6);
        }

        // All cores returned: the final dashboard shows zero busy cores and
        // empty queues.
        for panel in &results.site_panels {
            prop_assert_eq!(panel.busy_cores, 0, "site {} still busy", panel.site.clone());
            prop_assert_eq!(panel.queued_jobs, 0);
            prop_assert_eq!(panel.running_jobs, 0);
        }

        // Metrics agree with outcomes.
        prop_assert_eq!(results.metrics.total_jobs as usize, jobs);
        prop_assert_eq!(
            (results.metrics.finished_jobs + results.metrics.failed_jobs) as usize,
            jobs
        );
        if failure == 0.0 {
            prop_assert_eq!(results.metrics.failed_jobs, 0);
        }

        // Event stream: ids strictly increasing, finished counter never
        // exceeds the assigned counter.
        for pair in results.events.windows(2) {
            prop_assert!(pair[0].event_id < pair[1].event_id);
            prop_assert!(pair[0].time_s <= pair[1].time_s + 1e-9);
        }
        for e in &results.events {
            if e.state == JobState::Finished {
                prop_assert!(e.finished_jobs <= e.assigned_jobs);
            }
        }
    }

    /// Re-running the exact same configuration yields bit-identical walltimes
    /// (full-pipeline determinism).
    #[test]
    fn simulation_is_reproducible(
        jobs in 5usize..40,
        sites in 1usize..5,
        seed in any::<u64>(),
        policy in policies(),
    ) {
        let run = || {
            let platform = wlcg_platform(sites, seed);
            let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
            let mut execution = ExecutionConfig::with_policy(policy);
            execution.seed = seed;
            Simulation::builder()
                .platform_spec(&platform)
                .unwrap()
                .trace(trace)
                .policy_name(policy)
                .execution(execution)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.engine_events, b.engine_events);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(&x.site, &y.site);
            prop_assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
        }
    }
}

/// A randomized self-healing scenario: `sites`-site WLCG platform, generated
/// trace, and a fault plan with disk losses, outages and kills aggressive
/// enough that the repair planner and the checkpoint machinery both fire.
fn self_healing_run(
    jobs: usize,
    sites: usize,
    seed: u64,
    checkpoint: CheckpointConfig,
    repair: RepairConfig,
) -> cgsim_core::SimulationResults {
    let platform = wlcg_platform(sites, seed ^ 0x9e37);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
    let config =
        parse_fault_spec("diskloss:site=all,mttf=25m;outage:site=all,mttf=45m,mttr=8m;kill:rate=2")
            .expect("static spec parses");
    let topology = FaultTopology {
        sites,
        links: Vec::new(),
        jobs,
    };
    let plan = FaultPlan::generate(&config, &topology, seed ^ 0x51ed);
    let execution = ExecutionConfig {
        checkpoint,
        repair,
        seed,
        ..ExecutionConfig::default()
    };
    Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy_name("least-loaded")
        .execution(execution)
        .fault_plan(plan)
        .run()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Repair-planner invariants under random knobs and fault pressure:
    ///
    /// * every admitted repair transfer is retired exactly once — completed
    ///   or cancelled, never leaked (`started == completed + cancelled`),
    /// * per-site completed-repair counts agree with the grid total,
    /// * the workload still drains fully (all jobs terminal, no cores held),
    /// * an identical second run is bit-for-bit identical.
    ///
    /// Debug builds (how tests run) additionally enforce the per-event
    /// invariants inside the planner itself via `debug_assert`s: a repair is
    /// only admitted while the dataset is below target and toward a node
    /// without a replica, a landed replica never overshoots the target, and
    /// the per-node transfer-touch index always matches a full scan after
    /// every data-loss replay.
    #[test]
    fn repair_transfers_are_always_retired_and_runs_are_reproducible(
        jobs in 30usize..80,
        sites in 2usize..6,
        seed in any::<u64>(),
        target in 2u32..4,
        concurrent in 1u32..6,
        backoff in 60.0f64..900.0,
        retries in 0u32..4,
        overlap in any::<bool>(),
        delta in prop::sample::select(vec![0u64, 2_000_000, 40_000_000]),
    ) {
        let checkpoint = CheckpointConfig {
            interval_s: 600.0,
            base_bytes: 50_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::MainServer,
            overlap,
            delta_bytes_per_s: delta,
        };
        let repair = RepairConfig {
            enabled: true,
            target_factor: target,
            max_concurrent: concurrent,
            backoff_s: backoff,
            max_retries: retries,
        };
        let run = || self_healing_run(jobs, sites, seed, checkpoint.clone(), repair.clone());
        let a = run();

        // The workload drained: every job terminal, every core returned.
        prop_assert_eq!(a.outcomes.len(), jobs);
        for o in &a.outcomes {
            prop_assert!(o.final_state.is_terminal());
        }
        for panel in &a.site_panels {
            prop_assert_eq!(panel.busy_cores, 0);
            prop_assert_eq!(panel.queued_jobs, 0);
            prop_assert_eq!(panel.running_jobs, 0);
        }

        // Repair ledger closes: nothing admitted is still unaccounted for.
        let g = &a.grid_counters;
        prop_assert_eq!(
            g.repairs_started,
            g.repairs_completed + g.repairs_cancelled,
            "admitted repairs leaked: started {} completed {} cancelled {}",
            g.repairs_started,
            g.repairs_completed,
            g.repairs_cancelled
        );
        let per_site: u64 = a.site_panels.iter().map(|p| p.repairs).sum();
        prop_assert_eq!(per_site, g.repairs_completed);
        if g.repairs_completed > 0 {
            prop_assert!(g.repair_bytes >= g.repairs_completed);
        }

        // The async-write counters only move when overlap is on.
        if !overlap {
            prop_assert_eq!(g.ckpt_overlapped, 0);
            prop_assert_eq!(g.ckpt_stalls, 0);
        }

        // Bit-for-bit reproducible, repair traffic and all.
        let b = run();
        prop_assert_eq!(a.deterministic_json(), b.deterministic_json());
        prop_assert_eq!(a.engine_events, b.engine_events);
    }

    /// Feature-off ≡ feature-absent, under random *disabled* knob settings:
    /// a run whose repair config carries arbitrary target/concurrency/backoff
    /// values but `enabled = false`, with `overlap = false` and a zero delta
    /// rate, is byte-identical to the same faulted run with plain default
    /// fields — the knobs alone must not perturb a single RNG draw or event.
    #[test]
    fn disabled_self_healing_knobs_are_byte_identical_to_defaults(
        jobs in 30usize..70,
        sites in 2usize..5,
        seed in any::<u64>(),
        target in 1u32..9,
        concurrent in 1u32..17,
        backoff in 0.0f64..10_000.0,
        retries in 0u32..50,
    ) {
        let checkpoint = CheckpointConfig {
            interval_s: 600.0,
            base_bytes: 50_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::SiteStorage,
            ..CheckpointConfig::default()
        };
        let knobs = RepairConfig {
            enabled: false,
            target_factor: target,
            max_concurrent: concurrent,
            backoff_s: backoff,
            max_retries: retries,
        };
        let a = self_healing_run(jobs, sites, seed, checkpoint.clone(), knobs);
        let b = self_healing_run(jobs, sites, seed, checkpoint, RepairConfig::default());
        prop_assert_eq!(a.deterministic_json(), b.deterministic_json());
        prop_assert_eq!(a.engine_events, b.engine_events);
        prop_assert_eq!(a.grid_counters.repairs_started, 0);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(&x.site, &y.site);
            prop_assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
            prop_assert_eq!(x.staged_bytes, y.staged_bytes);
        }
    }
}
