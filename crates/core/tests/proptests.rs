//! Property-based tests of whole-simulation invariants.
//!
//! Case counts are kept small because each case runs a full (small)
//! simulation, but the configurations are drawn randomly: job mixes, site
//! counts, policies, failure rates and compute modes.

use cgsim_core::{ComputeMode, ExecutionConfig, Simulation};
use cgsim_platform::presets::wlcg_platform;
use cgsim_workload::{JobState, TraceConfig, TraceGenerator};
use proptest::prelude::*;

fn policies() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "least-loaded",
        "round-robin",
        "random",
        "fastest-available",
        "data-aware",
        "historical-panda",
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every simulated job terminates, resources are fully released, and the
    /// per-job timeline is ordered — regardless of policy, failure rate,
    /// compute mode or workload mix.
    #[test]
    fn simulation_invariants_hold(
        jobs in 5usize..60,
        sites in 1usize..8,
        seed in any::<u64>(),
        policy in policies(),
        failure in 0.0f64..0.5,
        retries in 0u32..3,
        multicore in 0.0f64..1.0,
        time_shared in any::<bool>(),
    ) {
        let platform = wlcg_platform(sites, seed ^ 0x1234);
        let mut cfg = TraceConfig::with_jobs(jobs, seed);
        cfg.multicore_fraction = multicore;
        let trace = TraceGenerator::new(cfg).generate(&platform);

        let mut execution = ExecutionConfig::with_policy(policy);
        execution.seed = seed;
        execution.failure_probability = failure;
        execution.max_retries = retries;
        execution.compute_mode = if time_shared {
            ComputeMode::TimeShared
        } else {
            ComputeMode::DedicatedCores
        };

        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name(policy)
            .execution(execution)
            .run()
            .unwrap();

        // Every job reached a terminal state exactly once.
        prop_assert_eq!(results.outcomes.len(), jobs);
        let ids: std::collections::HashSet<_> = results.outcomes.iter().map(|o| o.id).collect();
        prop_assert_eq!(ids.len(), jobs);
        for o in &results.outcomes {
            prop_assert!(o.final_state.is_terminal());
            prop_assert!(o.assign_time >= o.submit_time - 1e-9);
            prop_assert!(o.start_time >= o.assign_time - 1e-9);
            prop_assert!(o.end_time >= o.start_time - 1e-9);
            prop_assert!(o.walltime >= 0.0);
            prop_assert!(o.queue_time >= -1e-9);
            prop_assert!(o.end_time <= results.makespan_s + 1e-6);
        }

        // All cores returned: the final dashboard shows zero busy cores and
        // empty queues.
        for panel in &results.site_panels {
            prop_assert_eq!(panel.busy_cores, 0, "site {} still busy", panel.site.clone());
            prop_assert_eq!(panel.queued_jobs, 0);
            prop_assert_eq!(panel.running_jobs, 0);
        }

        // Metrics agree with outcomes.
        prop_assert_eq!(results.metrics.total_jobs as usize, jobs);
        prop_assert_eq!(
            (results.metrics.finished_jobs + results.metrics.failed_jobs) as usize,
            jobs
        );
        if failure == 0.0 {
            prop_assert_eq!(results.metrics.failed_jobs, 0);
        }

        // Event stream: ids strictly increasing, finished counter never
        // exceeds the assigned counter.
        for pair in results.events.windows(2) {
            prop_assert!(pair[0].event_id < pair[1].event_id);
            prop_assert!(pair[0].time_s <= pair[1].time_s + 1e-9);
        }
        for e in &results.events {
            if e.state == JobState::Finished {
                prop_assert!(e.finished_jobs <= e.assigned_jobs);
            }
        }
    }

    /// Re-running the exact same configuration yields bit-identical walltimes
    /// (full-pipeline determinism).
    #[test]
    fn simulation_is_reproducible(
        jobs in 5usize..40,
        sites in 1usize..5,
        seed in any::<u64>(),
        policy in policies(),
    ) {
        let run = || {
            let platform = wlcg_platform(sites, seed);
            let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
            let mut execution = ExecutionConfig::with_policy(policy);
            execution.seed = seed;
            Simulation::builder()
                .platform_spec(&platform)
                .unwrap()
                .trace(trace)
                .policy_name(policy)
                .execution(execution)
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.engine_events, b.engine_events);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(&x.site, &y.site);
            prop_assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
        }
    }
}
