//! End-to-end battery for the observability layer (`cgsim-obs`):
//!
//! * tracing and profiling ON leave `deterministic_json` byte-identical to
//!   both OFF (sinks observe, they never perturb),
//! * two traced runs of the same faulted + checkpointed scenario produce
//!   byte-identical record streams, with strictly increasing sequence
//!   numbers and balanced begin/end span edges per (job, kind),
//! * the category filter drops exactly the unselected categories,
//! * the JSONL and Chrome sinks write files that validate against their
//!   schemas and are byte-identical across runs,
//! * `--profile` material (wall-clock) never reaches the deterministic
//!   results.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cgsim_core::{
    CheckpointConfig, CheckpointTarget, ExecutionConfig, Simulation, SimulationResults,
};
use cgsim_faults::{FaultAction, FaultEvent, FaultPlan};
use cgsim_obs::{
    parse_filter, validate_chrome, validate_jsonl, ChromeSink, JsonlSink, SpanPhase, TraceCategory,
    TraceRecord, TraceSink, MASK_ALL,
};
use cgsim_platform::spec::MAIN_SERVER;
use cgsim_platform::{LinkSpec, PlatformSpec, SiteSpec, Tier};
use cgsim_workload::{JobKind, JobRecord, Trace};

fn two_site_platform() -> PlatformSpec {
    PlatformSpec::new("observed")
        .with_site(SiteSpec::uniform("Big", Tier::Tier1, 2_000, 10.0))
        .with_site(SiteSpec::uniform("Small", Tier::Tier2, 400, 10.0))
        .with_link(LinkSpec::new("Big", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Small", MAIN_SERVER, 100.0, 10.0))
}

fn flat_trace(count: usize, work_s: f64) -> Trace {
    let jobs = (0..count)
        .map(|i| {
            let mut record = JobRecord::new(i as u64, JobKind::SingleCore, 1, work_s * 10.0);
            record.input_bytes = 1_000_000;
            record.output_bytes = 500_000;
            record
        })
        .collect();
    Trace {
        jobs,
        ..Trace::default()
    }
}

/// An outage killing mid-flight work, plus recovery — exercises interrupt,
/// checkpoint loss and restore paths.
fn outage_plan() -> FaultPlan {
    FaultPlan {
        events: vec![
            FaultEvent {
                time_s: 1_500.0,
                action: FaultAction::SiteDown { site: 0 },
            },
            FaultEvent {
                time_s: 2_500.0,
                action: FaultAction::SiteUp { site: 0 },
            },
        ],
    }
}

fn checkpointed_exec() -> ExecutionConfig {
    ExecutionConfig {
        checkpoint: CheckpointConfig {
            interval_s: 400.0,
            base_bytes: 100_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::SiteStorage,
            ..CheckpointConfig::default()
        },
        ..ExecutionConfig::default()
    }
}

/// A sink recording into shared storage, so the records survive the run
/// consuming the boxed sink.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<TraceRecord>>>);

impl SharedSink {
    fn records(&self) -> Vec<TraceRecord> {
        self.0.lock().unwrap().clone()
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.0.lock().unwrap().push(rec.clone());
    }
}

/// Runs the reference faulted + checkpointed scenario with the given
/// observability options.
fn run(sink: Option<(Box<dyn TraceSink>, u32)>, profile: bool) -> SimulationResults {
    let mut builder = Simulation::builder()
        .platform_spec(&two_site_platform())
        .unwrap()
        .trace(flat_trace(60, 2_500.0))
        .policy_name("least-loaded")
        .execution(checkpointed_exec())
        .fault_plan(outage_plan())
        .profile(profile);
    if let Some((sink, mask)) = sink {
        builder = builder.trace_sink(sink, mask);
    }
    builder.run().unwrap()
}

#[test]
fn tracing_and_profiling_leave_deterministic_results_byte_identical() {
    let plain = run(None, false);
    let sink = SharedSink::default();
    let observed = run(Some((Box::new(sink.clone()), MASK_ALL)), true);

    assert_eq!(
        plain.deterministic_json(),
        observed.deterministic_json(),
        "a traced + profiled run must not perturb the simulation"
    );
    assert!(!sink.records().is_empty(), "the scenario produces a trace");

    // Profile material exists when asked for, and only then — and no
    // wall-clock number ever reaches the deterministic subset.
    assert!(plain.profile.is_none());
    let profile = observed.profile.expect("profiling was requested");
    let event_loop = &profile.results[0];
    assert_eq!(event_loop.case, "event_loop");
    assert_eq!(event_loop.count, 1, "one engine run, one event-loop region");
    assert!(event_loop.wall_s > 0.0);
    assert!(profile
        .counters
        .iter()
        .any(|c| c.name == "engine_events" && c.value > 0));
    assert!(!plain.deterministic_json().contains("wall_clock"));
}

#[test]
fn trace_streams_are_byte_identical_across_runs_and_spans_balance() {
    let first = SharedSink::default();
    run(Some((Box::new(first.clone()), MASK_ALL)), false);
    let second = SharedSink::default();
    run(Some((Box::new(second.clone()), MASK_ALL)), false);

    let records = first.records();
    assert!(!records.is_empty());
    assert_eq!(records, second.records(), "trace replay must be exact");

    // Sequence numbers are strictly increasing and sim-time never runs
    // backwards (records carry no wall-clock at all).
    for pair in records.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
        assert!(pair[0].time_s <= pair[1].time_s);
    }

    // Every span that begins ends exactly once, per (job, kind) — faults
    // close interrupted spans with an explanatory `info` instead of leaking
    // them.
    let mut open: HashMap<(Option<u64>, &str), i64> = HashMap::new();
    for rec in &records {
        let key = (rec.job, rec.kind.as_str());
        match rec.ph {
            SpanPhase::Begin => *open.entry(key).or_insert(0) += 1,
            SpanPhase::End => {
                let depth = open.entry(key).or_insert(0);
                assert!(*depth > 0, "end without begin: {rec:?}");
                *depth -= 1;
            }
            SpanPhase::Instant => {}
        }
    }
    assert!(
        open.values().all(|&depth| depth == 0),
        "unbalanced spans: {open:?}"
    );

    // The faulted + checkpointed scenario touches every category.
    for cat in [
        TraceCategory::Job,
        TraceCategory::Fault,
        TraceCategory::Ckpt,
        TraceCategory::Fluid,
        TraceCategory::Broker,
    ] {
        assert!(
            records.iter().any(|r| r.cat == cat),
            "no {cat:?} records in the reference scenario"
        );
    }
    assert!(records
        .iter()
        .any(|r| r.ph == SpanPhase::End && r.info.as_deref() == Some("interrupted")));
}

#[test]
fn category_filter_drops_unselected_categories() {
    let sink = SharedSink::default();
    let mask = parse_filter("fault,ckpt").unwrap();
    run(Some((Box::new(sink.clone()), mask)), false);
    let records = sink.records();
    assert!(!records.is_empty());
    assert!(records
        .iter()
        .all(|r| matches!(r.cat, TraceCategory::Fault | TraceCategory::Ckpt)));
}

#[test]
fn jsonl_and_chrome_files_validate_and_replay_byte_identically() {
    let dir = std::env::temp_dir().join("cgsim-trace-obs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let render = |tag: &str| {
        let jsonl = dir.join(format!("trace-{tag}.jsonl"));
        let chrome = dir.join(format!("trace-{tag}.json"));
        run(
            Some((Box::new(JsonlSink::create(&jsonl).unwrap()), MASK_ALL)),
            false,
        );
        run(
            Some((Box::new(ChromeSink::create(&chrome).unwrap()), MASK_ALL)),
            false,
        );
        (
            std::fs::read_to_string(&jsonl).unwrap(),
            std::fs::read_to_string(&chrome).unwrap(),
        )
    };
    let (jsonl_a, chrome_a) = render("a");
    let (jsonl_b, chrome_b) = render("b");
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace files must replay exactly");
    assert_eq!(chrome_a, chrome_b, "Chrome trace files must replay exactly");

    let lines = validate_jsonl(&jsonl_a).expect("schema-valid JSONL");
    assert!(lines > 0);
    let events = validate_chrome(&chrome_a).expect("well-formed Chrome trace");
    assert_eq!(lines, events, "both sinks observed the same emissions");
    std::fs::remove_dir_all(&dir).ok();
}
