//! End-to-end battery for the self-healing data layer:
//!
//! * a disk loss that evicts cached task inputs triggers re-replication, the
//!   repair ledger closes, and disabling repair keeps every counter at zero,
//! * asynchronous checkpoint writes overlap execution and finish the job
//!   sooner than synchronous writes of the same size,
//! * a write slower than the checkpoint interval stalls the job at the next
//!   segment boundary (bounded dirty state, never unbounded overlap),
//! * a kill landing mid-async-write restores from the newest *durable*
//!   checkpoint only — the in-flight snapshot is discarded,
//! * incremental shipping (`delta_bytes_per_s`) moves far fewer bytes for
//!   the same durable artifacts,
//! * disabled repair knobs + sync checkpointing are byte-identical to a run
//!   with the features absent.

use cgsim_core::{
    CheckpointConfig, CheckpointTarget, ExecutionConfig, RepairConfig, Simulation,
    SimulationResults,
};
use cgsim_faults::{parse_fault_spec, FaultAction, FaultEvent, FaultPlan, FaultTopology};
use cgsim_platform::spec::MAIN_SERVER;
use cgsim_platform::{LinkSpec, PlatformSpec, SiteSpec, Tier};
use cgsim_workload::{JobKind, JobRecord, TaskId, Trace};

/// Two sites on 100 Gbit/s WAN links (12.5 GB/s): checkpoint write times are
/// `bytes / 12.5e9` seconds, which the tests below size deliberately.
fn two_site_platform() -> PlatformSpec {
    PlatformSpec::new("self-healing")
        .with_site(SiteSpec::uniform("Big", Tier::Tier1, 2_000, 10.0))
        .with_site(SiteSpec::uniform("Small", Tier::Tier2, 400, 10.0))
        .with_link(LinkSpec::new("Big", MAIN_SERVER, 100.0, 10.0))
        .with_link(LinkSpec::new("Small", MAIN_SERVER, 100.0, 10.0))
}

/// `count` single-core jobs of `work_s` seconds (on a 10-speed core), each
/// in its *own task* so each stages — and caches — a distinct dataset.
fn per_task_trace(count: usize, work_s: f64, input_bytes: u64) -> Trace {
    let jobs = (0..count)
        .map(|i| {
            let mut record = JobRecord::new(i as u64, JobKind::SingleCore, 1, work_s * 10.0);
            record.task_id = TaskId(i as u64);
            record.input_bytes = input_bytes;
            record.output_bytes = 0;
            record
        })
        .collect();
    Trace {
        jobs,
        ..Trace::default()
    }
}

fn run(plan: Option<FaultPlan>, exec: ExecutionConfig, trace: Trace) -> SimulationResults {
    let mut builder = Simulation::builder()
        .platform_spec(&two_site_platform())
        .unwrap()
        .trace(trace)
        .policy_name("least-loaded")
        .execution(exec);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder.run().unwrap()
}

fn async_checkpoints(base_bytes: u64, delta_bytes_per_s: u64, overlap: bool) -> CheckpointConfig {
    CheckpointConfig {
        interval_s: 600.0,
        base_bytes,
        bytes_per_core: 0,
        target: CheckpointTarget::MainServer,
        overlap,
        delta_bytes_per_s,
    }
}

#[test]
fn disk_loss_triggers_re_replication_and_the_ledger_closes() {
    // 8 two-hour jobs, one dataset each (2 GB), cached at their execution
    // site. The disk loss at Big (t = 3000) evicts the cached replicas of
    // every dataset staged there while jobs keep running for hours — plenty
    // of time for the planner to re-establish the replication target of 2.
    let trace = per_task_trace(8, 7_200.0, 2_000_000_000);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            time_s: 3_000.0,
            action: FaultAction::DiskLoss { site: 0 },
        }],
    };
    let exec = ExecutionConfig {
        repair: RepairConfig {
            enabled: true,
            max_concurrent: 2,
            ..RepairConfig::default()
        },
        ..ExecutionConfig::default()
    };
    let repaired = run(Some(plan.clone()), exec, trace.clone());

    let g = &repaired.grid_counters;
    assert_eq!(g.disk_losses, 1);
    assert!(
        g.repairs_started >= 1,
        "disk loss left no deficit to repair"
    );
    assert!(g.repairs_completed >= 1);
    assert_eq!(
        g.repairs_started,
        g.repairs_completed + g.repairs_cancelled,
        "admitted repairs leaked"
    );
    // Each repaired dataset is 2 GB, streamed in full.
    assert_eq!(g.repair_bytes, g.repairs_completed * 2_000_000_000);
    assert_eq!(g.repairs_abandoned, 0, "endpoints never died mid-repair");
    // The per-site dashboard column agrees with the grid total.
    let per_site: u64 = repaired.site_panels.iter().map(|p| p.repairs).sum();
    assert_eq!(per_site, g.repairs_completed);
    assert_eq!(repaired.metrics.finished_jobs, 8);

    // Feature off: the identical schedule runs with every counter flat.
    let off = run(Some(plan), ExecutionConfig::default(), trace);
    assert_eq!(off.grid_counters.repairs_started, 0);
    assert_eq!(off.grid_counters.repair_bytes, 0);
    assert_eq!(off.metrics.finished_jobs, 8);
}

#[test]
fn async_writes_overlap_execution_and_finish_sooner_than_sync() {
    // One 2 h job writing 1.25 TB checkpoints (100 s on the WAN) every
    // 600 s. Synchronous mode stalls ~100 s at each of the 11 boundaries;
    // asynchronous mode hides the writes behind the next segment entirely.
    let trace = per_task_trace(1, 7_200.0, 1_000_000);
    let sync = run(
        None,
        ExecutionConfig {
            checkpoint: async_checkpoints(1_250_000_000_000, 0, false),
            ..ExecutionConfig::default()
        },
        trace.clone(),
    );
    let overlapped = run(
        None,
        ExecutionConfig {
            checkpoint: async_checkpoints(1_250_000_000_000, 0, true),
            ..ExecutionConfig::default()
        },
        trace,
    );

    assert_eq!(sync.grid_counters.ckpt_overlapped, 0);
    assert_eq!(sync.grid_counters.ckpt_stalls, 0);
    assert!(overlapped.grid_counters.ckpt_overlapped >= 10);
    assert_eq!(
        overlapped.grid_counters.ckpt_stalls, 0,
        "100 s writes fit comfortably inside 600 s segments"
    );
    // Both produced a full stack of durable checkpoints.
    assert!(sync.grid_counters.checkpoints_written >= 10);
    assert!(overlapped.grid_counters.checkpoints_written >= 10);
    // The sync run paid ~11 x 100 s of write stalls; the async run hid them.
    assert!(
        overlapped.makespan_s + 500.0 < sync.makespan_s,
        "async {} s vs sync {} s",
        overlapped.makespan_s,
        sync.makespan_s
    );
}

#[test]
fn write_slower_than_the_interval_stalls_at_the_next_boundary() {
    // 15 TB checkpoints take 1200 s on the WAN — twice the 600 s interval —
    // so every boundary after the first finds the previous write in flight
    // and stalls until it drains (bounded dirty state, not a pile-up).
    let trace = per_task_trace(1, 7_200.0, 1_000_000);
    let results = run(
        None,
        ExecutionConfig {
            checkpoint: async_checkpoints(15_000_000_000_000, 0, true),
            ..ExecutionConfig::default()
        },
        trace,
    );
    let g = &results.grid_counters;
    assert!(g.ckpt_stalls >= 3, "stalls: {}", g.ckpt_stalls);
    assert!(g.checkpoints_written >= 3);
    assert_eq!(results.metrics.finished_jobs, 1);
}

#[test]
fn kill_during_async_write_restores_newest_durable_only() {
    // 3.75 TB checkpoints take 300 s. Timeline of the 2 h job (7200 s of
    // work, segments of 600 s):
    //
    //  t=600    segment 1 done; async write of the frac-1/12 snapshot starts
    //  t=900    that write drains -> durable checkpoint at frac 1/12
    //  t=1200   segment 2 done; async write of the frac-2/12 snapshot starts
    //  t=1300   the job is killed: the in-flight frac-2/12 write is torn
    //           down, nothing of it is durable
    //
    // Recovery must resume from the frac-1/12 durable checkpoint — saving
    // ~600 s of recompute, not ~1200 s.
    let trace = per_task_trace(1, 7_200.0, 1_000_000);
    let plan = FaultPlan {
        events: vec![FaultEvent {
            time_s: 1_300.0,
            action: FaultAction::KillJob { job: 0 },
        }],
    };
    let results = run(
        Some(plan),
        ExecutionConfig {
            checkpoint: async_checkpoints(3_750_000_000_000, 0, true),
            ..ExecutionConfig::default()
        },
        trace,
    );
    let g = &results.grid_counters;
    assert_eq!(g.job_interruptions, 1);
    assert_eq!(g.checkpoint_restores, 1);
    assert!(
        (g.work_saved_s - 600.0).abs() < 30.0,
        "restored from frac 1/12 (~600 s saved), got {} s — the in-flight \
         snapshot must not have become durable",
        g.work_saved_s
    );
    assert_eq!(results.metrics.finished_jobs, 1);
}

#[test]
fn incremental_shipping_moves_fewer_bytes_for_the_same_checkpoints() {
    // Full images: 11 writes x 1.25 TB = ~13.75 TB on the wire. Incremental
    // (125 MB/s of new state, 600 s segments): one 1.25 TB base image, then
    // 75 GB deltas — an order of magnitude less traffic, same durable stack.
    let trace = per_task_trace(1, 7_200.0, 1_000_000);
    let full = run(
        None,
        ExecutionConfig {
            checkpoint: async_checkpoints(1_250_000_000_000, 0, false),
            ..ExecutionConfig::default()
        },
        trace.clone(),
    );
    let delta = run(
        None,
        ExecutionConfig {
            checkpoint: async_checkpoints(1_250_000_000_000, 125_000_000, false),
            ..ExecutionConfig::default()
        },
        trace,
    );
    assert_eq!(
        full.grid_counters.checkpoints_written,
        delta.grid_counters.checkpoints_written
    );
    assert!(full.grid_counters.ckpt_bytes_shipped > 13_000_000_000_000);
    assert!(
        delta.grid_counters.ckpt_bytes_shipped < full.grid_counters.ckpt_bytes_shipped / 3,
        "delta shipping moved {} bytes vs {} full",
        delta.grid_counters.ckpt_bytes_shipped,
        full.grid_counters.ckpt_bytes_shipped
    );
    // Shorter write stalls -> the incremental run finishes no later.
    assert!(delta.makespan_s <= full.makespan_s);
}

#[test]
fn disabled_features_are_byte_identical_to_absent_features() {
    // A faulted, checkpointed scenario run (a) with default config and (b)
    // with wild-but-disabled self-healing knobs: repair disabled (its
    // target/concurrency/backoff values must not perturb one RNG draw),
    // synchronous writes, zero delta rate. Byte-identical output required.
    let config = parse_fault_spec(
        "outage:site=all,mttf=40m,mttr=10m;diskloss:site=all,mttf=20m;kill:rate=4",
    )
    .unwrap();
    let topology = FaultTopology {
        sites: 2,
        links: vec![2, 3],
        jobs: 100,
    };
    let plan = FaultPlan::generate(&config, &topology, 7);
    let checkpoint = CheckpointConfig {
        interval_s: 900.0,
        base_bytes: 100_000_000,
        bytes_per_core: 0,
        target: CheckpointTarget::MainServer,
        ..CheckpointConfig::default()
    };
    let plain = ExecutionConfig {
        checkpoint: checkpoint.clone(),
        ..ExecutionConfig::default()
    };
    let knobs = ExecutionConfig {
        checkpoint: CheckpointConfig {
            overlap: false,
            delta_bytes_per_s: 0,
            ..checkpoint
        },
        repair: RepairConfig {
            enabled: false,
            target_factor: 7,
            max_concurrent: 13,
            backoff_s: 1.5,
            max_retries: 99,
        },
        ..ExecutionConfig::default()
    };
    let trace = || per_task_trace(100, 5_000.0, 1_000_000);
    let a = run(Some(plan.clone()), plain, trace());
    let b = run(Some(plan), knobs, trace());
    assert_eq!(a.deterministic_json(), b.deterministic_json());
    assert_eq!(a.engine_events, b.engine_events);
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.site, y.site);
        assert_eq!(x.final_state, y.final_state);
        assert_eq!(x.walltime.to_bits(), y.walltime.to_bits());
        assert_eq!(x.staged_bytes, y.staged_bytes);
    }
    // The schedule genuinely exercised the fault + checkpoint machinery.
    assert!(a.grid_counters.job_interruptions > 0);
    assert!(a.grid_counters.checkpoints_written > 0);
    assert_eq!(b.grid_counters.repairs_started, 0);
}
