//! Parameter sweeps: run many independent simulations, optionally in parallel.
//!
//! Every experiment in the paper's evaluation is a sweep — job counts for
//! Fig. 4(a), site counts for Fig. 4(b), candidate speed multipliers during
//! calibration. This module packages the bookkeeping (and the thread fan-out)
//! behind one call so benches, examples and the CLI do not re-implement it.
//! Each sweep point is an independent simulation with its own platform,
//! trace and execution configuration; results come back in the order the
//! points were supplied regardless of which thread ran them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cgsim_platform::PlatformSpec;
use cgsim_policies::PolicyRegistry;
use cgsim_workload::Trace;

use crate::config::ExecutionConfig;
use crate::results::SimulationResults;
use crate::simulation::{Simulation, SimulationError};

/// One independent simulation in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label identifying the point (e.g. `"jobs=2000"` or `"sites=10"`).
    pub label: String,
    /// Platform to simulate.
    pub platform: PlatformSpec,
    /// Workload trace.
    pub trace: Trace,
    /// Execution configuration (its `allocation_policy` selects the policy).
    pub execution: ExecutionConfig,
}

impl SweepPoint {
    /// Creates a sweep point.
    pub fn new(
        label: impl Into<String>,
        platform: PlatformSpec,
        trace: Trace,
        execution: ExecutionConfig,
    ) -> Self {
        SweepPoint {
            label: label.into(),
            platform,
            trace,
            execution,
        }
    }
}

/// The result of one sweep point.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The point's label.
    pub label: String,
    /// The simulation results.
    pub results: SimulationResults,
}

/// Runs every sweep point and returns the outcomes in input order.
///
/// With `parallel = true` the points are distributed over
/// `available_parallelism` worker threads (each simulation is still strictly
/// sequential and deterministic, so the outcomes are identical to a serial
/// run — only wall-clock time changes).
pub fn run_sweep(
    points: Vec<SweepPoint>,
    parallel: bool,
    registry: &PolicyRegistry,
) -> Result<Vec<SweepOutcome>, SimulationError> {
    let run_one = |point: SweepPoint| -> Result<SweepOutcome, SimulationError> {
        let policy = registry
            .create(&point.execution.allocation_policy, point.execution.seed)
            .ok_or_else(|| {
                SimulationError::UnknownPolicy(point.execution.allocation_policy.clone())
            })?;
        let results = Simulation::builder()
            .platform_spec(&point.platform)?
            .trace(point.trace)
            .policy(policy)
            .execution(point.execution)
            .run()?;
        Ok(SweepOutcome {
            label: point.label,
            results,
        })
    };

    if !parallel || points.len() <= 1 {
        return points.into_iter().map(run_one).collect();
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(points.len());

    // Self-scheduling fan-out: workers pull the next unclaimed point off a
    // shared atomic counter. Contiguous chunking would hand every large point
    // of a monotone job-scaling sweep to the same worker (the last chunk),
    // serialising most of the work; with self-scheduling a worker that drew a
    // cheap point simply comes back for another, so the load balances itself
    // whatever the point-size distribution. Results land in their input slot,
    // so outcome order is identical to the serial run.
    let slots: Vec<Mutex<Option<SweepPoint>>> =
        points.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<Result<SweepOutcome, SimulationError>>>> =
        (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let point = slots[i]
                    .lock()
                    .expect("sweep point mutex poisoned")
                    .take()
                    .expect("each sweep point is claimed exactly once");
                let outcome = run_one(point);
                *results[i].lock().expect("sweep result mutex poisoned") = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep result mutex poisoned")
                .expect("every sweep point produced a result")
        })
        .collect()
}

/// Summary row of a sweep outcome (used by the scalability benches and the
/// CLI `sweep` command).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRow {
    /// Point label.
    pub label: String,
    /// Number of jobs simulated.
    pub jobs: u64,
    /// Virtual makespan (seconds).
    pub makespan_s: f64,
    /// Engine events processed.
    pub engine_events: u64,
    /// Simulator wall-clock time (seconds).
    pub wall_clock_s: f64,
    /// Mean queue time (seconds).
    pub mean_queue_time_s: f64,
    /// Failure rate.
    pub failure_rate: f64,
}

impl SweepRow {
    /// Builds the summary row of one outcome.
    pub fn from_outcome(outcome: &SweepOutcome) -> Self {
        let m = &outcome.results.metrics;
        SweepRow {
            label: outcome.label.clone(),
            jobs: m.total_jobs,
            makespan_s: m.makespan_s,
            engine_events: outcome.results.engine_events,
            wall_clock_s: outcome.results.wall_clock_s,
            mean_queue_time_s: m.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0),
            failure_rate: m.failure_rate,
        }
    }

    /// CSV header matching [`SweepRow::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "label,jobs,makespan_s,engine_events,wall_clock_s,mean_queue_time_s,failure_rate";

    /// One CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{},{:.4},{:.3},{:.4}",
            self.label,
            self.jobs,
            self.makespan_s,
            self.engine_events,
            self.wall_clock_s,
            self.mean_queue_time_s,
            self.failure_rate
        )
    }
}

/// Renders sweep outcomes as a CSV table.
pub fn sweep_csv(outcomes: &[SweepOutcome]) -> String {
    let mut out = String::from(SweepRow::CSV_HEADER);
    out.push('\n');
    for o in outcomes {
        out.push_str(&SweepRow::from_outcome(o).to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::{example_platform, wlcg_platform};
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                let platform = if i % 2 == 0 {
                    example_platform()
                } else {
                    wlcg_platform(6, i as u64)
                };
                let trace = TraceGenerator::new(TraceConfig::with_jobs(60 + 10 * i, i as u64))
                    .generate(&platform);
                SweepPoint::new(
                    format!("point-{i}"),
                    platform,
                    trace,
                    ExecutionConfig::default(),
                )
            })
            .collect()
    }

    /// Sweep points whose sizes are heavily skewed: many tiny points followed
    /// by a few large ones (the shape of a monotone job-scaling sweep, where
    /// contiguous chunking used to pile all the expensive points onto the
    /// last worker).
    fn skewed_points() -> Vec<SweepPoint> {
        (0..9)
            .map(|i| {
                let platform = example_platform();
                let jobs = if i >= 7 { 400 } else { 20 };
                let trace =
                    TraceGenerator::new(TraceConfig::with_jobs(jobs, i as u64)).generate(&platform);
                SweepPoint::new(
                    format!("skewed-{i}"),
                    platform,
                    trace,
                    ExecutionConfig::default(),
                )
            })
            .collect()
    }

    fn assert_sweeps_agree(serial: &[SweepOutcome], parallel: &[SweepOutcome]) {
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.results.metrics.total_jobs, b.results.metrics.total_jobs);
            assert!((a.results.makespan_s - b.results.makespan_s).abs() < 1e-9);
            assert_eq!(a.results.engine_events, b.results.engine_events);
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_exactly() {
        let registry = PolicyRegistry::with_builtins();
        let serial = run_sweep(points(5), false, &registry).unwrap();
        let parallel = run_sweep(points(5), true, &registry).unwrap();
        assert_eq!(serial.len(), 5);
        assert_sweeps_agree(&serial, &parallel);
    }

    #[test]
    fn skewed_point_sizes_agree_between_serial_and_parallel() {
        let registry = PolicyRegistry::with_builtins();
        let serial = run_sweep(skewed_points(), false, &registry).unwrap();
        let parallel = run_sweep(skewed_points(), true, &registry).unwrap();
        assert_sweeps_agree(&serial, &parallel);
        for (i, o) in parallel.iter().enumerate() {
            assert_eq!(o.label, format!("skewed-{i}"), "input order preserved");
        }
    }

    #[test]
    fn outcomes_keep_input_order() {
        let registry = PolicyRegistry::with_builtins();
        let outcomes = run_sweep(points(4), true, &registry).unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.label, format!("point-{i}"));
        }
        let csv = sweep_csv(&outcomes);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("label,jobs"));
        assert!(csv.contains("point-3"));
    }

    #[test]
    fn unknown_policy_fails_the_sweep() {
        let registry = PolicyRegistry::with_builtins();
        let mut pts = points(1);
        pts[0].execution.allocation_policy = "does-not-exist".into();
        let err = run_sweep(pts, false, &registry).unwrap_err();
        assert!(matches!(err, SimulationError::UnknownPolicy(_)));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let registry = PolicyRegistry::with_builtins();
        assert!(run_sweep(Vec::new(), true, &registry).unwrap().is_empty());
    }
}
