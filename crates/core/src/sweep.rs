//! Parameter sweeps: run many independent simulations, optionally in parallel.
//!
//! Every experiment in the paper's evaluation is a sweep — job counts for
//! Fig. 4(a), site counts for Fig. 4(b), candidate speed multipliers during
//! calibration. This module packages the bookkeeping (and the thread fan-out)
//! behind one call so benches, examples and the CLI do not re-implement it.
//!
//! Sweeps are scenario batches: each point references its platform and trace
//! through `Arc` (a 100-point sweep of one topology holds *one* copy of the
//! platform and trace, not 100) and runs through a [`ScenarioEngine`], which
//! distributes the points over its self-scheduling worker pool and memoises
//! responses — repeated points cost one simulation. Results come back in the
//! order the points were supplied regardless of which thread ran them.

use std::sync::Arc;

use cgsim_platform::PlatformSpec;
use cgsim_policies::PolicyRegistry;
use cgsim_workload::Trace;

use crate::config::ExecutionConfig;
use crate::results::SimulationResults;
use crate::scenario::{ScenarioBase, ScenarioEngine, ScenarioSpec};
use crate::simulation::SimulationError;

/// One independent simulation in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label identifying the point (e.g. `"jobs=2000"` or `"sites=10"`).
    pub label: String,
    /// Platform to simulate (shared — pass `Arc` clones when many points use
    /// one topology).
    pub platform: Arc<PlatformSpec>,
    /// Workload trace (shared likewise).
    pub trace: Arc<Trace>,
    /// Execution configuration (its `allocation_policy` selects the policy).
    pub execution: ExecutionConfig,
}

impl SweepPoint {
    /// Creates a sweep point. Owned values and `Arc`s are both accepted;
    /// sharing `Arc`s across points is what keeps sweep fan-out cheap.
    pub fn new(
        label: impl Into<String>,
        platform: impl Into<Arc<PlatformSpec>>,
        trace: impl Into<Arc<Trace>>,
        execution: ExecutionConfig,
    ) -> Self {
        SweepPoint {
            label: label.into(),
            platform: platform.into(),
            trace: trace.into(),
            execution,
        }
    }
}

/// The result of one sweep point.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The point's label.
    pub label: String,
    /// The simulation results (shared with the engine's response cache).
    pub results: Arc<SimulationResults>,
}

/// Runs every sweep point and returns the outcomes in input order.
///
/// With `parallel = true` the points are distributed over
/// `available_parallelism` worker threads (each simulation is still strictly
/// sequential and deterministic, so the outcomes are identical to a serial
/// run — only wall-clock time changes). This is a convenience wrapper that
/// builds a throwaway [`ScenarioEngine`] around `registry`; callers that
/// evaluate repeatedly should hold their own engine and use [`run_sweep_on`]
/// to share its response cache across sweeps.
pub fn run_sweep(
    points: Vec<SweepPoint>,
    parallel: bool,
    registry: &PolicyRegistry,
) -> Result<Vec<SweepOutcome>, SimulationError> {
    let engine = ScenarioEngine::with_registry(registry.clone()).parallel(parallel);
    run_sweep_on(&engine, points)
}

/// Runs a sweep over an existing [`ScenarioEngine`] (shared cache, shared
/// registry, the engine's parallelism setting).
pub fn run_sweep_on(
    engine: &ScenarioEngine,
    points: Vec<SweepPoint>,
) -> Result<Vec<SweepOutcome>, SimulationError> {
    // Memoise the ScenarioBase per distinct (platform, trace) Arc pair so a
    // single-topology sweep content-hashes the platform and trace once, not
    // once per point.
    let mut bases: Vec<Arc<ScenarioBase>> = Vec::new();
    let mut labels = Vec::with_capacity(points.len());
    let mut specs = Vec::with_capacity(points.len());
    for point in points {
        let base = bases
            .iter()
            .find(|b| {
                Arc::ptr_eq(b.platform(), &point.platform) && Arc::ptr_eq(b.trace(), &point.trace)
            })
            .cloned()
            .unwrap_or_else(|| {
                let base = ScenarioBase::shared(point.platform.clone(), point.trace.clone());
                bases.push(base.clone());
                base
            });
        labels.push(point.label);
        specs.push(ScenarioSpec::new(base, point.execution));
    }

    engine
        .evaluate_batch(&specs)
        .into_iter()
        .zip(labels)
        .map(|(outcome, label)| {
            outcome.map(|o| SweepOutcome {
                label,
                results: o.results,
            })
        })
        .collect()
}

/// Summary row of a sweep outcome (used by the scalability benches and the
/// CLI `sweep` command).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRow {
    /// Point label.
    pub label: String,
    /// Number of jobs simulated.
    pub jobs: u64,
    /// Virtual makespan (seconds).
    pub makespan_s: f64,
    /// Engine events processed.
    pub engine_events: u64,
    /// Simulator wall-clock time (seconds).
    pub wall_clock_s: f64,
    /// Mean queue time (seconds).
    pub mean_queue_time_s: f64,
    /// Failure rate.
    pub failure_rate: f64,
}

impl SweepRow {
    /// Builds the summary row of one outcome.
    pub fn from_outcome(outcome: &SweepOutcome) -> Self {
        let m = &outcome.results.metrics;
        SweepRow {
            label: outcome.label.clone(),
            jobs: m.total_jobs,
            makespan_s: m.makespan_s,
            engine_events: outcome.results.engine_events,
            wall_clock_s: outcome.results.wall_clock_s,
            mean_queue_time_s: m.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0),
            failure_rate: m.failure_rate,
        }
    }

    /// CSV header matching [`SweepRow::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "label,jobs,makespan_s,engine_events,wall_clock_s,mean_queue_time_s,failure_rate";

    /// One CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{},{:.4},{:.3},{:.4}",
            self.label,
            self.jobs,
            self.makespan_s,
            self.engine_events,
            self.wall_clock_s,
            self.mean_queue_time_s,
            self.failure_rate
        )
    }
}

/// Renders sweep outcomes as a CSV table.
pub fn sweep_csv(outcomes: &[SweepOutcome]) -> String {
    let mut out = String::from(SweepRow::CSV_HEADER);
    out.push('\n');
    for o in outcomes {
        out.push_str(&SweepRow::from_outcome(o).to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::{example_platform, wlcg_platform};
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                let platform = if i % 2 == 0 {
                    example_platform()
                } else {
                    wlcg_platform(6, i as u64)
                };
                let trace = TraceGenerator::new(TraceConfig::with_jobs(60 + 10 * i, i as u64))
                    .generate(&platform);
                SweepPoint::new(
                    format!("point-{i}"),
                    platform,
                    trace,
                    ExecutionConfig::default(),
                )
            })
            .collect()
    }

    /// Sweep points whose sizes are heavily skewed: many tiny points followed
    /// by a few large ones (the shape of a monotone job-scaling sweep, where
    /// contiguous chunking used to pile all the expensive points onto the
    /// last worker).
    fn skewed_points() -> Vec<SweepPoint> {
        (0..9)
            .map(|i| {
                let platform = example_platform();
                let jobs = if i >= 7 { 400 } else { 20 };
                let trace =
                    TraceGenerator::new(TraceConfig::with_jobs(jobs, i as u64)).generate(&platform);
                SweepPoint::new(
                    format!("skewed-{i}"),
                    platform,
                    trace,
                    ExecutionConfig::default(),
                )
            })
            .collect()
    }

    fn assert_sweeps_agree(serial: &[SweepOutcome], parallel: &[SweepOutcome]) {
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.results.metrics.total_jobs, b.results.metrics.total_jobs);
            assert!((a.results.makespan_s - b.results.makespan_s).abs() < 1e-9);
            assert_eq!(a.results.engine_events, b.results.engine_events);
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_exactly() {
        let registry = PolicyRegistry::with_builtins();
        let serial = run_sweep(points(5), false, &registry).unwrap();
        let parallel = run_sweep(points(5), true, &registry).unwrap();
        assert_eq!(serial.len(), 5);
        assert_sweeps_agree(&serial, &parallel);
    }

    #[test]
    fn skewed_point_sizes_agree_between_serial_and_parallel() {
        let registry = PolicyRegistry::with_builtins();
        let serial = run_sweep(skewed_points(), false, &registry).unwrap();
        let parallel = run_sweep(skewed_points(), true, &registry).unwrap();
        assert_sweeps_agree(&serial, &parallel);
        for (i, o) in parallel.iter().enumerate() {
            assert_eq!(o.label, format!("skewed-{i}"), "input order preserved");
        }
    }

    #[test]
    fn outcomes_keep_input_order() {
        let registry = PolicyRegistry::with_builtins();
        let outcomes = run_sweep(points(4), true, &registry).unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.label, format!("point-{i}"));
        }
        let csv = sweep_csv(&outcomes);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("label,jobs"));
        assert!(csv.contains("point-3"));
    }

    #[test]
    fn unknown_policy_fails_the_sweep() {
        let registry = PolicyRegistry::with_builtins();
        let mut pts = points(1);
        pts[0].execution.allocation_policy = "does-not-exist".into();
        let err = run_sweep(pts, false, &registry).unwrap_err();
        assert!(matches!(err, SimulationError::UnknownPolicy(_)));
    }

    /// Satellite: with `Arc`-shared base state, a 100-point single-topology
    /// sweep holds one copy of the platform and trace — `Arc::strong_count`
    /// proves there are no hidden deep clones on the worker path.
    #[test]
    fn arc_shared_points_do_not_deep_clone_base_state() {
        let registry = PolicyRegistry::with_builtins();
        let platform = Arc::new(example_platform());
        let trace =
            Arc::new(TraceGenerator::new(TraceConfig::with_jobs(40, 9)).generate(&platform));
        let points: Vec<SweepPoint> = (0..100)
            .map(|i| {
                let execution = ExecutionConfig {
                    seed: i as u64 + 1,
                    ..ExecutionConfig::default()
                };
                SweepPoint::new(
                    format!("shared-{i}"),
                    platform.clone(),
                    trace.clone(),
                    execution,
                )
            })
            .collect();
        // 100 points reference the single shared allocation.
        assert_eq!(Arc::strong_count(&platform), 101);
        assert_eq!(Arc::strong_count(&trace), 101);
        let outcomes = run_sweep(points, true, &registry).unwrap();
        assert_eq!(outcomes.len(), 100);
        // The worker path only ever held `Arc` clones: with the sweep (and
        // its throwaway engine) gone, the originals are sole owners again.
        assert_eq!(Arc::strong_count(&platform), 1);
        assert_eq!(Arc::strong_count(&trace), 1);
    }

    #[test]
    fn repeated_points_share_one_simulation_run() {
        let engine = ScenarioEngine::with_registry(PolicyRegistry::with_builtins());
        let platform = Arc::new(example_platform());
        let trace =
            Arc::new(TraceGenerator::new(TraceConfig::with_jobs(30, 4)).generate(&platform));
        let point = |label: &str| {
            SweepPoint::new(
                label,
                platform.clone(),
                trace.clone(),
                ExecutionConfig::default(),
            )
        };
        let outcomes = run_sweep_on(&engine, vec![point("a"), point("b"), point("c")]).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(engine.simulations_run(), 1, "identical points dedupe");
        assert_eq!(
            outcomes[0].results.makespan_s,
            outcomes[2].results.makespan_s
        );
        // A later sweep over the same engine is answered from cache.
        let again = run_sweep_on(&engine, vec![point("again")]).unwrap();
        assert_eq!(engine.simulations_run(), 1);
        assert_eq!(again[0].results.makespan_s, outcomes[0].results.makespan_s);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let registry = PolicyRegistry::with_builtins();
        assert!(run_sweep(Vec::new(), true, &registry).unwrap().is_empty());
    }
}
