//! Parameter sweeps: run many independent simulations, optionally in parallel.
//!
//! Every experiment in the paper's evaluation is a sweep — job counts for
//! Fig. 4(a), site counts for Fig. 4(b), candidate speed multipliers during
//! calibration. This module packages the bookkeeping (and the thread fan-out)
//! behind one call so benches, examples and the CLI do not re-implement it.
//! Each sweep point is an independent simulation with its own platform,
//! trace and execution configuration; results come back in the order the
//! points were supplied regardless of which thread ran them.

use cgsim_platform::PlatformSpec;
use cgsim_policies::PolicyRegistry;
use cgsim_workload::Trace;

use crate::config::ExecutionConfig;
use crate::results::SimulationResults;
use crate::simulation::{Simulation, SimulationError};

/// One independent simulation in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label identifying the point (e.g. `"jobs=2000"` or `"sites=10"`).
    pub label: String,
    /// Platform to simulate.
    pub platform: PlatformSpec,
    /// Workload trace.
    pub trace: Trace,
    /// Execution configuration (its `allocation_policy` selects the policy).
    pub execution: ExecutionConfig,
}

impl SweepPoint {
    /// Creates a sweep point.
    pub fn new(
        label: impl Into<String>,
        platform: PlatformSpec,
        trace: Trace,
        execution: ExecutionConfig,
    ) -> Self {
        SweepPoint {
            label: label.into(),
            platform,
            trace,
            execution,
        }
    }
}

/// The result of one sweep point.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The point's label.
    pub label: String,
    /// The simulation results.
    pub results: SimulationResults,
}

/// Runs every sweep point and returns the outcomes in input order.
///
/// With `parallel = true` the points are distributed over
/// `available_parallelism` worker threads (each simulation is still strictly
/// sequential and deterministic, so the outcomes are identical to a serial
/// run — only wall-clock time changes).
pub fn run_sweep(
    points: Vec<SweepPoint>,
    parallel: bool,
    registry: &PolicyRegistry,
) -> Result<Vec<SweepOutcome>, SimulationError> {
    let run_one = |point: SweepPoint| -> Result<SweepOutcome, SimulationError> {
        let policy = registry
            .create(&point.execution.allocation_policy, point.execution.seed)
            .ok_or_else(|| {
                SimulationError::UnknownPolicy(point.execution.allocation_policy.clone())
            })?;
        let results = Simulation::builder()
            .platform_spec(&point.platform)?
            .trace(point.trace)
            .policy(policy)
            .execution(point.execution)
            .run()?;
        Ok(SweepOutcome {
            label: point.label,
            results,
        })
    };

    if !parallel || points.len() <= 1 {
        return points.into_iter().map(run_one).collect();
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(points.len());
    let chunk = points.len().div_ceil(threads);
    let indexed: Vec<(usize, SweepPoint)> = points.into_iter().enumerate().collect();
    let mut outcomes: Vec<Option<Result<SweepOutcome, SimulationError>>> = Vec::new();
    outcomes.resize_with(indexed.len(), || None);

    let chunks: Vec<Vec<(usize, SweepPoint)>> = indexed.chunks(chunk).map(|c| c.to_vec()).collect();
    let collected: Vec<Vec<(usize, Result<SweepOutcome, SimulationError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk_points| {
                    scope.spawn(|| {
                        chunk_points
                            .into_iter()
                            .map(|(i, p)| (i, run_one(p)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });

    for chunk_results in collected {
        for (i, result) in chunk_results {
            outcomes[i] = Some(result);
        }
    }
    outcomes
        .into_iter()
        .map(|o| o.expect("every sweep point produced a result"))
        .collect()
}

/// Summary row of a sweep outcome (used by the scalability benches and the
/// CLI `sweep` command).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRow {
    /// Point label.
    pub label: String,
    /// Number of jobs simulated.
    pub jobs: u64,
    /// Virtual makespan (seconds).
    pub makespan_s: f64,
    /// Engine events processed.
    pub engine_events: u64,
    /// Simulator wall-clock time (seconds).
    pub wall_clock_s: f64,
    /// Mean queue time (seconds).
    pub mean_queue_time_s: f64,
    /// Failure rate.
    pub failure_rate: f64,
}

impl SweepRow {
    /// Builds the summary row of one outcome.
    pub fn from_outcome(outcome: &SweepOutcome) -> Self {
        let m = &outcome.results.metrics;
        SweepRow {
            label: outcome.label.clone(),
            jobs: m.total_jobs,
            makespan_s: m.makespan_s,
            engine_events: outcome.results.engine_events,
            wall_clock_s: outcome.results.wall_clock_s,
            mean_queue_time_s: m.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0),
            failure_rate: m.failure_rate,
        }
    }

    /// CSV header matching [`SweepRow::to_csv_row`].
    pub const CSV_HEADER: &'static str =
        "label,jobs,makespan_s,engine_events,wall_clock_s,mean_queue_time_s,failure_rate";

    /// One CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{},{:.4},{:.3},{:.4}",
            self.label,
            self.jobs,
            self.makespan_s,
            self.engine_events,
            self.wall_clock_s,
            self.mean_queue_time_s,
            self.failure_rate
        )
    }
}

/// Renders sweep outcomes as a CSV table.
pub fn sweep_csv(outcomes: &[SweepOutcome]) -> String {
    let mut out = String::from(SweepRow::CSV_HEADER);
    out.push('\n');
    for o in outcomes {
        out.push_str(&SweepRow::from_outcome(o).to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::{example_platform, wlcg_platform};
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                let platform = if i % 2 == 0 {
                    example_platform()
                } else {
                    wlcg_platform(6, i as u64)
                };
                let trace = TraceGenerator::new(TraceConfig::with_jobs(60 + 10 * i, i as u64))
                    .generate(&platform);
                SweepPoint::new(
                    format!("point-{i}"),
                    platform,
                    trace,
                    ExecutionConfig::default(),
                )
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_exactly() {
        let registry = PolicyRegistry::with_builtins();
        let serial = run_sweep(points(5), false, &registry).unwrap();
        let parallel = run_sweep(points(5), true, &registry).unwrap();
        assert_eq!(serial.len(), 5);
        assert_eq!(parallel.len(), 5);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.results.metrics.total_jobs, b.results.metrics.total_jobs);
            assert!((a.results.makespan_s - b.results.makespan_s).abs() < 1e-9);
            assert_eq!(a.results.engine_events, b.results.engine_events);
        }
    }

    #[test]
    fn outcomes_keep_input_order() {
        let registry = PolicyRegistry::with_builtins();
        let outcomes = run_sweep(points(4), true, &registry).unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.label, format!("point-{i}"));
        }
        let csv = sweep_csv(&outcomes);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("label,jobs"));
        assert!(csv.contains("point-3"));
    }

    #[test]
    fn unknown_policy_fails_the_sweep() {
        let registry = PolicyRegistry::with_builtins();
        let mut pts = points(1);
        pts[0].execution.allocation_policy = "does-not-exist".into();
        let err = run_sweep(pts, false, &registry).unwrap_err();
        assert!(matches!(err, SimulationError::UnknownPolicy(_)));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let registry = PolicyRegistry::with_builtins();
        assert!(run_sweep(Vec::new(), true, &registry).unwrap().is_empty());
    }
}
