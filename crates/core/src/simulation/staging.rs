//! Staging-plan execution against the fluid network model and the replica
//! catalog: input stage-in, output stage-out, and the fluid bookkeeping
//! shared by both (and by time-shared execution in `job_runtime`).

use cgsim_data::transfer::plan_staging;
use cgsim_data::DatasetId;
use cgsim_des::fluid::ResourceId;
use cgsim_des::{Context, SimTime};
use cgsim_obs::{SpanPhase, Subsystem, TraceCategory};
use cgsim_platform::{NodeId, SiteId};
use cgsim_workload::JobState;

use super::events::GridEvent;
use super::job_runtime::Phase;
use super::GridModel;

impl GridModel {
    /// The (memoised) input dataset of a job's task.
    pub(super) fn task_dataset(&mut self, idx: usize) -> DatasetId {
        let record = &self.jobs[idx].record;
        let task = record.task_id.0;
        let files = record.input_files;
        let bytes = record.input_bytes;
        if let Some(&ds) = self.task_datasets.get(&task) {
            return ds;
        }
        let ds = self.catalog.register(
            &format!("task-{task}-input"),
            files,
            bytes,
            NodeId::MainServer,
        );
        self.task_datasets.insert(task, ds);
        // Task inputs are the re-replication planner's repairable set
        // (checkpoint datasets have their own lifecycle and stay out of it).
        if self.repair.enabled {
            self.repair.mark_repairable(ds);
        }
        ds
    }

    /// Advances the fluid model to `now` and returns the (job, phase) pairs
    /// whose activity completed, in the fluid model's deterministic
    /// (slot-ordered) completion order. The `ActivityId` buffer is reused
    /// across calls, so the common no-completion sync allocates nothing.
    pub(super) fn advance_fluid(&mut self, now: SimTime) -> Vec<(usize, Phase)> {
        let timer = self.profiler.start();
        let dt = now.saturating_sub(self.last_fluid_sync);
        self.last_fluid_sync = now;
        let mut finished = std::mem::take(&mut self.fluid_done_scratch);
        self.fluid.advance_into(dt, &mut finished);
        let completed = finished
            .iter()
            .filter_map(|&aid| self.activity_map.remove(aid))
            .collect();
        finished.clear();
        self.fluid_done_scratch = finished;
        self.profiler.stop(Subsystem::Fluid, timer);
        completed
    }

    /// (Re)schedules the next fluid completion event.
    pub(super) fn reschedule_fluid(&mut self, ctx: &mut Context<'_, GridEvent>) {
        let timer = self.profiler.start();
        if let Some(key) = self.fluid_event.take() {
            ctx.cancel(key);
        }
        if let Some(dt) = self.fluid.time_to_next_completion() {
            self.fluid_event = Some(ctx.schedule_in(dt, GridEvent::FluidAdvance));
        }
        self.profiler.stop(Subsystem::Fluid, timer);
    }

    /// Starts one fluid activity for a job phase: syncs the model to `now`,
    /// admits the activity, records the (job, phase) bookkeeping, then routes
    /// any completions the sync surfaced and re-arms the completion event.
    /// This is the single admission path shared by input staging, output
    /// stage-out and time-shared execution.
    pub(super) fn start_fluid_activity(
        &mut self,
        idx: usize,
        phase: Phase,
        amount: f64,
        resources: &[ResourceId],
        weight: f64,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let completed = self.advance_fluid(ctx.now());
        let activity = self.fluid.add_weighted_activity(amount, resources, weight);
        self.activity_map.insert(activity, (idx, phase));
        self.jobs[idx].activity = Some(activity);
        self.index_transfer(idx, phase);
        self.trace_phase(ctx.now().as_secs(), idx, phase, SpanPhase::Begin, None);
        self.handle_completed_activities(completed, ctx);
        self.reschedule_fluid(ctx);
    }

    /// Starts a network transfer phase over the route `from -> to`, reusing
    /// the model-owned route buffer (no per-transfer allocation). Shared by
    /// input staging, output stage-out, checkpoint writes and restores.
    pub(super) fn start_transfer(
        &mut self,
        idx: usize,
        phase: Phase,
        bytes: u64,
        from: NodeId,
        to: NodeId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Fluid) {
                t.emit(
                    ctx.now().as_secs(),
                    TraceCategory::Fluid,
                    SpanPhase::Instant,
                    "fluid.transfer",
                    Some(self.jobs[idx].record.id.0),
                    None,
                    Some(format!("{from}->{to} bytes={bytes}")),
                );
            }
        }
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        route.extend(
            self.platform
                .route(from, to)
                .links
                .iter()
                .map(|l| self.link_resources[l.index()]),
        );
        self.start_fluid_activity(idx, phase, bytes as f64, &route, 1.0, ctx);
        self.route_scratch = route;
    }

    /// Begins input staging for a job whose cores were just allocated. Stamps
    /// the attempt's start time, then plans the transfer.
    pub(super) fn start_staging(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        self.jobs[idx].start_time = ctx.now().as_secs();
        self.stage_input(idx, site, ctx);
    }

    /// Plans and starts (or skips) the input transfer for a job already
    /// mid-attempt. Fault repair re-enters here — *not* through
    /// [`GridModel::start_staging`] — so a transfer re-planned after its
    /// source died does not overwrite the attempt's start time and corrupt
    /// the queue-time/walltime metrics.
    pub(super) fn stage_input(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let now = ctx.now();
        let dataset = self.task_dataset(idx);
        let destination = NodeId::Site(site);

        // Cache lookup counts as a hit even when the catalog also knows about
        // the replica, keeping cache statistics meaningful.
        let cache_hit = self.caches[site.index()].lookup(dataset);
        if cache_hit || self.catalog.has_replica(dataset, destination) {
            self.begin_execution(idx, site, ctx);
            return;
        }

        // The data-movement policy may override the replica source; otherwise
        // the configured source-selection strategy plans the transfer.
        let candidates: Vec<NodeId> = self.catalog.replicas(dataset).collect();
        let source = match self
            .data_policy
            .select_source(&self.jobs[idx].record, site, &candidates)
        {
            Some(chosen) if chosen == destination => {
                self.begin_execution(idx, site, ctx);
                return;
            }
            Some(chosen) => chosen,
            None => {
                let plan = plan_staging(
                    &[dataset],
                    destination,
                    &self.catalog,
                    &self.platform,
                    self.execution.source_selection,
                );
                if plan.is_local() {
                    self.begin_execution(idx, site, ctx);
                    return;
                }
                plan.transfers[0].from
            }
        };

        self.jobs[idx].state = JobState::Staging;
        self.record(now, idx, JobState::Staging);
        let bytes = self.jobs[idx].record.input_bytes;
        self.jobs[idx].staged_bytes += bytes;
        // Remember the far end of the transfer: if the source site dies
        // mid-flight while this job survives elsewhere, fault injection
        // cancels the transfer and re-plans from the surviving replicas.
        self.jobs[idx].transfer_peer = Some(source);
        // Latency is added as a constant amount of "extra bytes" at the
        // bottleneck rate; for WAN transfers of GB-scale inputs it is
        // negligible, which matches the fluid approximation of SimGrid.
        self.start_transfer(idx, Phase::Input, bytes, source, destination, ctx);
    }

    /// Ships a finished job's output back to the main server over the fluid
    /// model; completion finalizes the job.
    pub(super) fn start_output_transfer(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let bytes = self.jobs[idx].record.output_bytes;
        self.start_transfer(
            idx,
            Phase::Output,
            bytes,
            NodeId::Site(site),
            NodeId::MainServer,
            ctx,
        );
    }
}
