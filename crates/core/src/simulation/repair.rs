//! Fault-aware re-replication: the background repair planner.
//!
//! After a site outage or disk loss evicts replicas, affected task-input
//! datasets fall below the configured replication target
//! ([`RepairConfig::target_factor`](crate::config::RepairConfig)). The
//! planner detects those deficits at eviction time (the catalog reports the
//! affected datasets — no scans) and re-establishes replicas as *real* fluid
//! transfers from a surviving replica to a site that lacks one, contending
//! with staging and checkpoint traffic on the same links.
//!
//! Repair traffic is bounded (`max_concurrent` in-flight transfers; a FIFO
//! deficit queue buffers the rest) and deterministic: source and destination
//! are drawn from an RNG stream seeded independently of the simulation's
//! main stream (`seed ^ REPAIR_SEED_SALT`), so enabling repair never
//! perturbs job-level randomness, and a disabled planner draws nothing at
//! all — `repair.enabled = false` stays byte-identical to a build without
//! the feature.
//!
//! When a repair cannot proceed (its source dies mid-transfer, or no
//! eligible source/destination exists), the attempt fails and is retried
//! with exponential backoff (`backoff_s × 2^(attempts−1)`), up to
//! `max_retries` attempts, after which the dataset is *abandoned* — graceful
//! degradation rather than a retry livelock. Replication never overshoots
//! the target: a repair is only planned while the dataset is below target,
//! and the landed replica is dropped if other machinery (site caching)
//! already closed the deficit mid-flight.
//!
//! In-flight repairs live in the shared fluid bookkeeping under *sentinel*
//! activity ids `jobs.len() + slot`, so the per-node `transfer_touch` index
//! and the data-loss audit of the faults module cover them exactly like job
//! transfers.

use std::collections::VecDeque;

use cgsim_data::DatasetId;
use cgsim_des::fluid::ActivityId;
use cgsim_des::rng::Rng;
use cgsim_des::{Context, EventKey, SimTime};
use cgsim_obs::{SpanPhase, Subsystem, TraceCategory};
use cgsim_platform::{NodeId, SiteId};

use super::events::GridEvent;
use super::job_runtime::Phase;
use super::GridModel;
use crate::config::RepairConfig;

/// Salt XORed into the execution seed for the repair planner's independent
/// RNG stream (so the main stream is untouched whether or not repair runs).
const REPAIR_SEED_SALT: u64 = 0x7265_7061_6972_3031; // "repair01"

/// One in-flight repair transfer (a slot of the bounded active slab).
#[derive(Debug, Clone)]
pub(super) struct RepairTransfer {
    /// Dataset being re-replicated.
    pub(super) dataset: DatasetId,
    /// Surviving replica the bytes stream from.
    pub(super) source: NodeId,
    /// Site receiving the new replica.
    pub(super) dest: SiteId,
    /// The fluid activity carrying the bytes.
    pub(super) activity: ActivityId,
    /// Nodes this transfer is registered under in `transfer_touch`
    /// (source and destination), recorded at admission.
    pub(super) touches: [Option<NodeId>; 2],
    /// Dataset size in bytes.
    pub(super) bytes: u64,
}

/// The repair planner's state, owned by the grid model.
#[derive(Debug)]
pub(super) struct RepairState {
    /// Whether the planner runs at all. When false, nothing below is ever
    /// touched (no allocation, no RNG draws, no events).
    pub(super) enabled: bool,
    target_factor: usize,
    max_concurrent: usize,
    backoff_s: f64,
    max_retries: u32,
    /// Independent RNG stream for source/destination selection.
    rng: Rng,
    /// Per-dataset: eligible for repair (task inputs; checkpoint datasets
    /// have their own lifecycle and are never re-replicated). Grown lazily
    /// to the catalog's size.
    repairable: Vec<bool>,
    /// Per-dataset: currently in the deficit queue.
    queued: Vec<bool>,
    /// Per-dataset: consecutive failed attempts (reset on success).
    attempts: Vec<u32>,
    /// Per-dataset: retry budget exhausted; never repaired again.
    abandoned: Vec<bool>,
    /// Per-dataset: pending `RepairRetry` event, cancelled at shutdown.
    retry_keys: Vec<Option<EventKey>>,
    /// FIFO deficit queue (dataset indices).
    queue: VecDeque<usize>,
    /// Bounded slab of in-flight transfers; sentinel activity-map ids are
    /// `jobs.len() + slot`.
    pub(super) active: Vec<Option<RepairTransfer>>,
    active_count: usize,
    /// In-flight repairs *into* each site (the `active_repairs` signal of
    /// the policy grid view).
    pub(super) site_active: Vec<u64>,
    /// Re-entrancy guard: `pump` can reach itself through fluid-completion
    /// routing; the outer loop picks up anything an inner call would have.
    pumping: bool,
}

impl RepairState {
    /// Builds planner state from the config (`sites` sizes the per-site
    /// active counts; they exist — zeroed — even when disabled so the grid
    /// view can read them unconditionally).
    pub(super) fn new(config: &RepairConfig, seed: u64, sites: usize) -> Self {
        let max_concurrent = (config.max_concurrent as usize).max(1);
        RepairState {
            enabled: config.enabled,
            target_factor: (config.target_factor as usize).max(1),
            max_concurrent,
            backoff_s: config.backoff_s.max(0.0),
            max_retries: config.max_retries,
            rng: Rng::new(seed ^ REPAIR_SEED_SALT),
            repairable: Vec::new(),
            queued: Vec::new(),
            attempts: Vec::new(),
            abandoned: Vec::new(),
            retry_keys: Vec::new(),
            queue: VecDeque::new(),
            active: vec![None; if config.enabled { max_concurrent } else { 0 }],
            active_count: 0,
            site_active: vec![0; sites],
            pumping: false,
        }
    }

    /// Grows the per-dataset vectors to cover dataset `index`.
    fn ensure(&mut self, index: usize) {
        if index >= self.repairable.len() {
            let len = index + 1;
            self.repairable.resize(len, false);
            self.queued.resize(len, false);
            self.attempts.resize(len, 0);
            self.abandoned.resize(len, false);
            self.retry_keys.resize_with(len, || None);
        }
    }

    /// Marks a dataset as eligible for re-replication (task inputs only).
    pub(super) fn mark_repairable(&mut self, dataset: DatasetId) {
        let index = dataset.index();
        self.ensure(index);
        self.repairable[index] = true;
    }
}

impl GridModel {
    /// Number of replicas the planner aims to keep per repairable dataset.
    fn repair_target(&self) -> usize {
        self.repair.target_factor
    }

    /// Feeds the datasets a data-loss event just evicted into the deficit
    /// queue (the caller pumps once its own cancellation pass is done).
    pub(super) fn note_repair_deficits(&mut self, affected: Vec<DatasetId>) {
        let target = self.repair_target();
        for dataset in affected {
            let index = dataset.index();
            self.repair.ensure(index);
            if !self.repair.repairable[index] || self.repair.abandoned[index] {
                continue;
            }
            if self.catalog.replicas_of(dataset) >= target {
                continue;
            }
            self.enqueue_repair(index);
        }
    }

    /// Appends dataset `index` to the deficit queue (idempotent).
    fn enqueue_repair(&mut self, index: usize) {
        if !self.repair.queued[index] {
            self.repair.queued[index] = true;
            self.repair.queue.push_back(index);
        }
    }

    /// Emits a repair-category trace instant.
    fn trace_repair(&mut self, time_s: f64, kind: &str, info: Option<String>) {
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Repair) {
                t.emit(
                    time_s,
                    TraceCategory::Repair,
                    SpanPhase::Instant,
                    kind,
                    None,
                    None,
                    info,
                );
            }
        }
    }

    /// Drains the deficit queue into free transfer slots: plans a source and
    /// destination per dataset, admits the fluid transfer, or registers a
    /// failed attempt (backoff/abandon) when no eligible endpoints exist.
    pub(super) fn pump_repairs(&mut self, ctx: &mut Context<'_, GridEvent>) {
        if !self.repair.enabled || self.repair.pumping || self.completed_jobs >= self.jobs.len() {
            return;
        }
        let timer = self.profiler.start();
        self.repair.pumping = true;
        while self.repair.active_count < self.repair.max_concurrent {
            let Some(index) = self.repair.queue.pop_front() else {
                break;
            };
            self.repair.queued[index] = false;
            if self.repair.abandoned[index] {
                continue;
            }
            let dataset = DatasetId::new(index);
            if self.catalog.replicas_of(dataset) >= self.repair_target() {
                // Deficit closed by other means while queued.
                self.repair.attempts[index] = 0;
                continue;
            }
            if self
                .repair
                .active
                .iter()
                .flatten()
                .any(|t| t.dataset == dataset)
            {
                // One repair per dataset at a time; completion re-enqueues
                // if the target still is not met.
                continue;
            }
            match self.plan_repair(dataset) {
                Some((source, dest)) => self.admit_repair(dataset, source, dest, ctx),
                None => self.register_failed_repair(index, "no eligible endpoints", ctx),
            }
        }
        self.repair.pumping = false;
        self.profiler.stop(Subsystem::Repair, timer);
    }

    /// Picks a (source, destination) pair for re-replicating `dataset`:
    /// source among surviving replicas at up nodes, destination among up
    /// sites not yet holding one — both drawn from the planner's seeded RNG
    /// over deterministically ordered candidate lists.
    fn plan_repair(&mut self, dataset: DatasetId) -> Option<(NodeId, SiteId)> {
        // `replicas` iterates a BTreeSet: deterministic candidate order.
        let sources: Vec<NodeId> = self
            .catalog
            .replicas(dataset)
            .filter(|node| match node {
                NodeId::MainServer => true,
                NodeId::Site(site) => self.availability.site_up(*site),
            })
            .collect();
        if sources.is_empty() {
            return None;
        }
        let dests: Vec<SiteId> = self
            .platform
            .sites()
            .iter()
            .map(|s| s.id)
            .filter(|&site| {
                self.availability.site_up(site)
                    && !self.catalog.has_replica(dataset, NodeId::Site(site))
            })
            .collect();
        if dests.is_empty() {
            return None;
        }
        let source = sources[self.repair.rng.index(sources.len())];
        let dest = dests[self.repair.rng.index(dests.len())];
        Some((source, dest))
    }

    /// Admits a repair transfer into a free slot: a weight-1 fluid activity
    /// over the `source -> dest` route, registered in the activity map under
    /// the sentinel id `jobs.len() + slot` and in the per-node
    /// transfer-touch index under both endpoints.
    fn admit_repair(
        &mut self,
        dataset: DatasetId,
        source: NodeId,
        dest: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let slot = self
            .repair
            .active
            .iter()
            .position(|t| t.is_none())
            .expect("pump only admits below max_concurrent");
        let bytes = self.catalog.dataset(dataset).bytes.max(1);
        let dest_node = NodeId::Site(dest);
        debug_assert!(
            self.catalog.replicas_of(dataset) < self.repair_target(),
            "repair admitted for a dataset already at its replication target"
        );
        debug_assert!(
            !self.catalog.has_replica(dataset, dest_node),
            "repair admitted toward a node that already holds a replica"
        );
        let now = ctx.now();
        let completed = self.advance_fluid(now);
        let mut route = std::mem::take(&mut self.route_scratch);
        route.clear();
        route.extend(
            self.platform
                .route(source, dest_node)
                .links
                .iter()
                .map(|l| self.link_resources[l.index()]),
        );
        let activity = self.fluid.add_weighted_activity(bytes as f64, &route, 1.0);
        self.route_scratch = route;
        let sentinel = self.jobs.len() + slot;
        self.activity_map
            .insert(activity, (sentinel, Phase::Repair));
        let touches = if source == dest_node {
            [Some(source), None]
        } else {
            [Some(source), Some(dest_node)]
        };
        for node in touches.into_iter().flatten() {
            let ni = self.node_index(node);
            let list = &mut self.transfer_touch[ni];
            if let Err(pos) = list.binary_search(&sentinel) {
                list.insert(pos, sentinel);
            }
        }
        self.repair.active[slot] = Some(RepairTransfer {
            dataset,
            source,
            dest,
            activity,
            touches,
            bytes,
        });
        self.repair.active_count += 1;
        self.repair.site_active[dest.index()] += 1;
        self.collector.record_repair_started();
        let dataset_name = self.catalog.dataset(dataset).name.clone();
        let dest_name = self.platform.site(dest).name.clone();
        self.trace_repair(
            now.as_secs(),
            "repair.start",
            Some(format!(
                "dataset={dataset_name} {source}->{dest_name} bytes={bytes}"
            )),
        );
        self.handle_completed_activities(completed, ctx);
        self.reschedule_fluid(ctx);
    }

    /// Removes slot `slot`'s transfer from the shared fluid bookkeeping
    /// (touch index; activity map + fluid model unless the activity already
    /// completed) and returns it.
    fn retire_repair_slot(&mut self, slot: usize, still_in_fluid: bool) -> RepairTransfer {
        let transfer = self.repair.active[slot]
            .take()
            .expect("retiring an occupied repair slot");
        self.repair.active_count -= 1;
        self.repair.site_active[transfer.dest.index()] -= 1;
        let sentinel = self.jobs.len() + slot;
        for node in transfer.touches.into_iter().flatten() {
            let ni = self.node_index(node);
            if let Ok(pos) = self.transfer_touch[ni].binary_search(&sentinel) {
                self.transfer_touch[ni].remove(pos);
            }
        }
        if still_in_fluid {
            self.fluid.remove_activity(transfer.activity);
            self.activity_map.remove(transfer.activity);
        }
        transfer
    }

    /// A repair transfer completed: the new replica becomes durable (unless
    /// other machinery already closed the deficit — replication never
    /// overshoots the target), and the planner pumps the queue.
    pub(super) fn finish_repair(&mut self, slot: usize, ctx: &mut Context<'_, GridEvent>) {
        let timer = self.profiler.start();
        let transfer = self.retire_repair_slot(slot, false);
        let index = transfer.dataset.index();
        let target = self.repair_target();
        let landed = self.catalog.replicas_of(transfer.dataset) < target;
        if landed {
            self.catalog
                .add_replica(transfer.dataset, NodeId::Site(transfer.dest));
        }
        debug_assert!(
            self.catalog.replicas_of(transfer.dataset) <= target,
            "re-replication overshot the replication target"
        );
        self.repair.attempts[index] = 0;
        self.collector
            .record_repair_completed(transfer.dest.index(), transfer.bytes);
        let dataset_name = self.catalog.dataset(transfer.dataset).name.clone();
        let dest_name = self.platform.site(transfer.dest).name.clone();
        self.trace_repair(
            ctx.now().as_secs(),
            "repair.done",
            Some(format!(
                "dataset={dataset_name} {}->{dest_name} bytes={} landed={landed}",
                transfer.source, transfer.bytes
            )),
        );
        if self.catalog.replicas_of(transfer.dataset) < target {
            self.enqueue_repair(index);
        }
        self.profiler.stop(Subsystem::Repair, timer);
        self.pump_repairs(ctx);
    }

    /// Cancels the repair in `slot` because a data-loss event hit one of its
    /// endpoints mid-transfer. Counts as a failed attempt: the dataset goes
    /// into backoff (or is abandoned once the retry budget runs out).
    pub(super) fn cancel_repair_slot(
        &mut self,
        slot: usize,
        node: NodeId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let timer = self.profiler.start();
        let transfer = self.retire_repair_slot(slot, true);
        self.collector.record_repair_cancelled();
        let dataset_name = self.catalog.dataset(transfer.dataset).name.clone();
        self.trace_repair(
            ctx.now().as_secs(),
            "repair.cancel",
            Some(format!("dataset={dataset_name} lost_endpoint={node}")),
        );
        self.profiler.stop(Subsystem::Repair, timer);
        self.register_failed_repair(transfer.dataset.index(), "endpoint lost", ctx);
    }

    /// Books a failed repair attempt for dataset `index`: schedules an
    /// exponential-backoff retry, or abandons the dataset once `max_retries`
    /// attempts have failed.
    fn register_failed_repair(
        &mut self,
        index: usize,
        reason: &str,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        self.repair.attempts[index] += 1;
        let attempts = self.repair.attempts[index];
        let dataset_name = self.catalog.dataset(DatasetId::new(index)).name.clone();
        if attempts > self.repair.max_retries {
            self.repair.abandoned[index] = true;
            self.collector.record_repair_abandoned();
            self.trace_repair(
                ctx.now().as_secs(),
                "repair.abandon",
                Some(format!(
                    "dataset={dataset_name} attempts={attempts} reason={reason}"
                )),
            );
            return;
        }
        let delay = self.repair.backoff_s * f64::from(1u32 << (attempts - 1).min(30));
        let key = ctx.schedule_in(SimTime::from_secs(delay), GridEvent::RepairRetry(index));
        self.repair.retry_keys[index] = Some(key);
        self.trace_repair(
            ctx.now().as_secs(),
            "repair.retry",
            Some(format!(
                "dataset={dataset_name} attempt={attempts} backoff_s={delay} reason={reason}"
            )),
        );
    }

    /// A backoff timer fired: the dataset re-enters the deficit queue if its
    /// deficit still exists.
    pub(super) fn handle_repair_retry(&mut self, index: usize, ctx: &mut Context<'_, GridEvent>) {
        if !self.repair.enabled || index >= self.repair.retry_keys.len() {
            return;
        }
        self.repair.retry_keys[index] = None;
        if self.repair.abandoned[index] {
            return;
        }
        let dataset = DatasetId::new(index);
        if self.catalog.replicas_of(dataset) >= self.repair_target() {
            self.repair.attempts[index] = 0;
            return;
        }
        self.enqueue_repair(index);
        self.pump_repairs(ctx);
    }

    /// The workload completed: stop all repair activity so the planner
    /// cannot keep the engine (and the makespan) alive past the last job —
    /// the exact contract the fault chain already follows. At this point
    /// every job is terminal, so the fluid model holds nothing but repair
    /// transfers; removing them needs no progress crediting.
    pub(super) fn shutdown_repairs(&mut self, ctx: &mut Context<'_, GridEvent>) {
        if !self.repair.enabled {
            return;
        }
        for key in self.repair.retry_keys.iter_mut() {
            if let Some(key) = key.take() {
                ctx.cancel(key);
            }
        }
        while let Some(index) = self.repair.queue.pop_front() {
            self.repair.queued[index] = false;
        }
        let mut cancelled = false;
        for slot in 0..self.repair.active.len() {
            if self.repair.active[slot].is_some() {
                let transfer = self.retire_repair_slot(slot, true);
                self.collector.record_repair_cancelled();
                let dataset_name = self.catalog.dataset(transfer.dataset).name.clone();
                self.trace_repair(
                    ctx.now().as_secs(),
                    "repair.cancel",
                    Some(format!("dataset={dataset_name} reason=workload-complete")),
                );
                cancelled = true;
            }
        }
        if cancelled {
            self.reschedule_fluid(ctx);
        }
    }
}
