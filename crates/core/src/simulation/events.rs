//! The discrete-event alphabet of the grid simulation and its dispatch.

use cgsim_des::{Context, EventHandler};
use cgsim_workload::JobState;

use super::GridModel;

/// Discrete events of the grid simulation.
#[derive(Debug, Clone, PartialEq)]
pub(super) enum GridEvent {
    /// A job (by index into the trace) reaches its submission time.
    Submit(usize),
    /// The fluid network/CPU model predicts its next activity completion.
    FluidAdvance,
    /// A dedicated-core execution segment finishes (job index). Without
    /// checkpointing one segment is the whole execution; with it, segments
    /// alternate with durable checkpoint writes.
    ExecutionDone(usize),
    /// The scheduling/pilot overhead of a picked job elapses (job index); the
    /// job then starts staging its input (queue-time model, §4.2).
    PilotStart(usize),
    /// The next fault of the attached fault plan fires (index into the
    /// plan's event list). Faults are chained — each one schedules its
    /// successor — so an exhausted workload stops fault processing by
    /// cancelling a single pending event.
    Fault(usize),
    /// A repair-backoff timer for a dataset (by index) elapses; the repair
    /// planner re-examines the dataset's replication deficit. Only scheduled
    /// when re-replication is enabled.
    RepairRetry(usize),
}

impl EventHandler<GridEvent> for GridModel {
    fn handle(&mut self, ctx: &mut Context<'_, GridEvent>, event: GridEvent) {
        match event {
            GridEvent::Submit(idx) => {
                let now = ctx.now();
                self.jobs[idx].submit_time = now.as_secs();
                self.record(now, idx, JobState::Pending);
                self.dispatch(idx, ctx);
            }
            GridEvent::FluidAdvance => {
                self.fluid_event = None;
                let now = ctx.now();
                let completed = self.advance_fluid(now);
                self.handle_completed_activities(completed, ctx);
                self.reschedule_fluid(ctx);
            }
            GridEvent::ExecutionDone(idx) => {
                self.jobs[idx].timer = None;
                self.execution_segment_done(idx, ctx);
            }
            GridEvent::PilotStart(idx) => {
                self.jobs[idx].timer = None;
                let site = self.jobs[idx]
                    .site
                    .expect("job waiting for its pilot has a site");
                self.start_staging(idx, site, ctx);
            }
            GridEvent::Fault(index) => {
                self.handle_fault(index, ctx);
            }
            GridEvent::RepairRetry(index) => {
                self.handle_repair_retry(index, ctx);
            }
        }
    }
}
