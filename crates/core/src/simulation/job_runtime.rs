//! The per-job state machine: Input/Execute/Output phases, failure draws and
//! retries.

use cgsim_des::fluid::ActivityId;
use cgsim_des::{Context, EventKey};
use cgsim_obs::{SpanPhase, TraceCategory};
use cgsim_platform::{NodeId, SiteId};
use cgsim_policies::CachePolicy;
use cgsim_workload::{ideal_walltime, JobRecord, JobState};

use super::checkpoint::JobCheckpoint;
use super::events::GridEvent;
use super::GridModel;
use crate::config::ComputeMode;

/// Which phase of a job an in-flight fluid activity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Phase {
    Input,
    Execute,
    Output,
    /// A periodic checkpoint write to durable storage (checkpoint/restart).
    Checkpoint,
    /// Re-staging of checkpoint data to the resume site before execution
    /// continues from it.
    Restore,
    /// An *asynchronous* checkpoint write overlapping the next execution
    /// segment (`checkpoint.overlap = true`). Tracked per job in
    /// `ckpt_activity`, never in the job's main `activity` slot.
    CkptAsync,
    /// A background re-replication transfer owned by the repair planner.
    /// Activity-map entries carry the sentinel id `jobs.len() + slot`, not a
    /// job index — completion routing must branch on this phase before any
    /// per-job state is touched.
    Repair,
}

impl Phase {
    /// Trace category a span covering this phase is filed under.
    pub(super) fn trace_cat(self) -> TraceCategory {
        match self {
            Phase::Input | Phase::Execute | Phase::Output => TraceCategory::Job,
            Phase::Checkpoint | Phase::Restore | Phase::CkptAsync => TraceCategory::Ckpt,
            Phase::Repair => TraceCategory::Repair,
        }
    }

    /// Trace span name of this phase.
    pub(super) fn trace_kind(self) -> &'static str {
        match self {
            Phase::Input => "input",
            Phase::Execute => "execute",
            Phase::Output => "output",
            Phase::Checkpoint => "ckpt.write",
            Phase::Restore => "ckpt.restore",
            Phase::CkptAsync => "ckpt.write.async",
            Phase::Repair => "repair.transfer",
        }
    }
}

/// Mutable per-job simulation state.
#[derive(Debug, Clone)]
pub(super) struct JobRuntime {
    pub(super) record: JobRecord,
    pub(super) state: JobState,
    pub(super) site: Option<SiteId>,
    pub(super) retries: u32,
    /// Resubmissions consumed by fault interruptions (separate budget from
    /// the application-failure `retries`).
    pub(super) fault_retries: u32,
    pub(super) submit_time: f64,
    pub(super) assign_time: f64,
    pub(super) start_time: f64,
    pub(super) end_time: f64,
    pub(super) staged_bytes: u64,
    /// Pending engine timer (pilot start or dedicated-core completion), kept
    /// so fault injection can cancel the in-flight event when it kills the
    /// job.
    pub(super) timer: Option<EventKey>,
    /// In-flight fluid activity (staging, time-shared execution or output
    /// transfer), kept for the same cancellation purpose.
    pub(super) activity: Option<ActivityId>,
    /// True while the job holds reserved cores at its site (from the queue
    /// pop in `try_start_site` until release).
    pub(super) holds_cores: bool,
    /// The *remote* endpoint of the in-flight transfer, if any: the source
    /// of an input-staging or checkpoint-restore transfer, or the target of
    /// a checkpoint write. Fault injection uses it to find transfers whose
    /// far end just died while the job itself survives elsewhere.
    pub(super) transfer_peer: Option<NodeId>,
    /// The nodes the in-flight transfer is registered under in the model's
    /// per-node `transfer_touch` index (remote peer, and destination site
    /// for inbound transfers). Recorded at admission so unindexing removes
    /// exactly what was inserted, regardless of what state the teardown
    /// path has already cleared.
    pub(super) touches: [Option<NodeId>; 2],
    /// Fraction of the job's total work completed in the current attempt
    /// (updated at execution-segment boundaries; seeded from the restored
    /// checkpoint on resume).
    pub(super) frac_done: f64,
    /// Fraction of total work covered by the in-flight execution segment.
    pub(super) seg_fraction: f64,
    /// Virtual time the in-flight execution segment started.
    pub(super) seg_started_s: f64,
    /// Walltime length of the in-flight dedicated-core segment (0 when not
    /// in dedicated execution).
    pub(super) seg_walltime_s: f64,
    /// Fluid amount of the in-flight time-shared segment (0 when not in
    /// time-shared execution).
    pub(super) seg_amount: f64,
    /// Progress fraction carried by the in-flight checkpoint restore.
    pub(super) restore_frac: f64,
    /// Durable checkpoints of this job, at most one per storage node
    /// (newer writes at a node supersede its older checkpoint).
    pub(super) checkpoints: Vec<JobCheckpoint>,
    /// In-flight *asynchronous* checkpoint write, held separately from
    /// `activity` because it overlaps the next execution segment.
    pub(super) ckpt_activity: Option<ActivityId>,
    /// Target node of the in-flight asynchronous write (doubles as its
    /// `transfer_touch` registration record).
    pub(super) ckpt_node: Option<NodeId>,
    /// Progress fraction the in-flight asynchronous write captures — the
    /// `frac_done` snapshot taken when the write started, which becomes the
    /// checkpoint's durable fraction at completion.
    pub(super) ckpt_frac: f64,
    /// True while the job sits at a segment boundary waiting for the
    /// previous asynchronous write to drain (the overlap model's only stall
    /// condition).
    pub(super) ckpt_stalled: bool,
}

impl JobRuntime {
    /// Fresh runtime state for one trace record.
    pub(super) fn new(record: &JobRecord) -> Self {
        Self::from_record(record.clone())
    }

    /// Fresh runtime state taking ownership of the record (the streaming
    /// ingest path: no `Trace` is materialised, so there is nothing to
    /// borrow from and nothing to clone).
    pub(super) fn from_record(record: JobRecord) -> Self {
        JobRuntime {
            submit_time: record.submit_time,
            record,
            state: JobState::Pending,
            site: None,
            retries: 0,
            fault_retries: 0,
            assign_time: 0.0,
            start_time: 0.0,
            end_time: 0.0,
            staged_bytes: 0,
            timer: None,
            activity: None,
            holds_cores: false,
            transfer_peer: None,
            touches: [None; 2],
            frac_done: 0.0,
            seg_fraction: 0.0,
            seg_started_s: 0.0,
            seg_walltime_s: 0.0,
            seg_amount: 0.0,
            restore_frac: 0.0,
            checkpoints: Vec::new(),
            ckpt_activity: None,
            ckpt_node: None,
            ckpt_frac: 0.0,
            ckpt_stalled: false,
        }
    }
}

impl GridModel {
    /// Starts the execution phase (cores already held).
    pub(super) fn begin_execution(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let now = ctx.now();
        self.jobs[idx].state = JobState::Running;
        self.record(now, idx, JobState::Running);

        // Cache / replicate the input at the execution site for later jobs of
        // the same task, subject to the data-movement policy's admission
        // decision.
        if self.execution.cache_datasets
            && self
                .data_policy
                .cache_decision(&self.jobs[idx].record, site)
                == CachePolicy::CacheAtSite
        {
            let dataset = self.task_dataset(idx);
            let bytes = self.catalog.dataset(dataset).bytes;
            self.caches[site.index()].insert(dataset, bytes);
            self.catalog.add_replica(dataset, NodeId::Site(site));
        }

        // Checkpointing splits execution into segments with durable writes
        // between them (and possibly a restore transfer in front). With the
        // policy disabled the original single-shot path below runs unchanged,
        // so zero-checkpoint configurations stay bit-identical to builds
        // without the feature; the extra segment bookkeeping only feeds the
        // work-lost accounting of fault injection.
        if self.execution.checkpoint.enabled() {
            self.begin_restore_or_segment(idx, site, ctx);
            return;
        }
        let work_hs23 = self.jobs[idx].record.work_hs23;
        let cores = self.jobs[idx].record.cores;
        match self.execution.compute_mode {
            ComputeMode::DedicatedCores => {
                let speed = self.platform.effective_speed(site);
                let walltime = ideal_walltime(work_hs23, cores, speed);
                self.jobs[idx].frac_done = 0.0;
                self.jobs[idx].seg_fraction = 1.0;
                self.jobs[idx].seg_started_s = now.as_secs();
                self.jobs[idx].seg_walltime_s = walltime;
                let key = ctx.schedule_in(
                    cgsim_des::SimTime::from_secs(walltime),
                    GridEvent::ExecutionDone(idx),
                );
                self.jobs[idx].timer = Some(key);
                self.trace_phase(now.as_secs(), idx, Phase::Execute, SpanPhase::Begin, None);
            }
            ComputeMode::TimeShared => {
                let resource = self.cpu_resources[site.index()];
                let weight = cores as f64;
                let amount = work_hs23 / cgsim_workload::parallel_efficiency(cores);
                self.jobs[idx].frac_done = 0.0;
                self.jobs[idx].seg_fraction = 1.0;
                self.jobs[idx].seg_started_s = now.as_secs();
                self.jobs[idx].seg_amount = amount;
                self.start_fluid_activity(idx, Phase::Execute, amount, &[resource], weight, ctx);
            }
        }
    }

    /// An execution segment (the whole execution when checkpointing is off)
    /// finished: either the job is done, or it pauses to write a checkpoint
    /// before the next segment.
    pub(super) fn execution_segment_done(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        // Closes the span opened at segment admission — the shared funnel for
        // both compute modes (fluid completion or `ExecutionDone` timer).
        self.trace_phase(
            ctx.now().as_secs(),
            idx,
            Phase::Execute,
            SpanPhase::End,
            None,
        );
        if !self.execution.checkpoint.enabled() {
            // Execution is complete: mark the full fraction done so a kill
            // during the output phase accounts the whole discarded execution
            // in `work_lost_s` (bookkeeping only — no behavioural change).
            self.jobs[idx].frac_done = 1.0;
            self.finish_execution(idx, ctx);
            return;
        }
        let site = self.jobs[idx].site.expect("executing job has a site");
        self.jobs[idx].frac_done =
            (self.jobs[idx].frac_done + self.jobs[idx].seg_fraction).min(1.0);
        self.jobs[idx].seg_fraction = 0.0;
        self.jobs[idx].seg_walltime_s = 0.0;
        self.jobs[idx].seg_amount = 0.0;
        // A pending asynchronous write may complete at exactly this boundary;
        // sync the fluid model so the decision below sees its final state.
        if self.jobs[idx].ckpt_activity.is_some() {
            let completed = self.advance_fluid(ctx.now());
            self.handle_completed_activities(completed, ctx);
        }
        if self.jobs[idx].frac_done >= 1.0 - 1e-9 {
            // The run is complete — an overlapping write of an intermediate
            // state has no further value, so it is dropped rather than
            // allowed to delay the job's output phase.
            if self.jobs[idx].ckpt_activity.is_some() {
                self.cancel_async_write(idx, ctx, "job complete");
                self.reschedule_fluid(ctx);
            }
            self.finish_execution(idx, ctx);
        } else if self.execution.checkpoint.overlap {
            if self.jobs[idx].ckpt_activity.is_some() {
                // The previous write is still draining: the job stalls at
                // the boundary (the overlap model's only stall), and the
                // write completion restarts it.
                self.jobs[idx].ckpt_stalled = true;
                self.collector.record_ckpt_stall();
                self.trace_phase(
                    ctx.now().as_secs(),
                    idx,
                    Phase::CkptAsync,
                    SpanPhase::Instant,
                    Some("ckpt.stall"),
                );
            } else {
                let admitted = self.start_async_checkpoint_write(idx, site, ctx);
                self.start_execution_segment(idx, site, ctx);
                if admitted {
                    self.collector.record_ckpt_overlap();
                }
            }
        } else {
            self.start_checkpoint_write(idx, site, ctx);
        }
    }

    /// Handles the end of the execution phase (failure draw, output
    /// stage-out).
    pub(super) fn finish_execution(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let site = self.jobs[idx].site.expect("running job has a site");
        let failed = self.rng.chance(self.execution.failure_probability);
        if failed {
            // An *application* failure invalidates the job's state: its
            // checkpoints led to the failure, so the rerun starts from
            // scratch (unlike fault interruptions, which restore).
            self.discard_checkpoints(idx);
            if self.jobs[idx].retries < self.execution.max_retries {
                // Release resources and resubmit to the main server.
                self.jobs[idx].retries += 1;
                self.release_cores(idx, site);
                let now = ctx.now();
                self.jobs[idx].site = None;
                self.jobs[idx].state = JobState::Pending;
                self.record(now, idx, JobState::Pending);
                self.dispatch(idx, ctx);
                self.after_release(site, ctx);
                return;
            }
            self.finalize(idx, JobState::Failed, ctx);
            return;
        }
        let record = &self.jobs[idx].record;
        if self.execution.enable_output_transfers && record.output_bytes > 0 {
            self.start_output_transfer(idx, site, ctx);
        } else {
            self.finalize(idx, JobState::Finished, ctx);
        }
    }

    /// Returns a job's cores to its site. Idempotent: a job that does not
    /// currently hold cores (already released, or interrupted before its
    /// queue pop) is a no-op, so the fault-injection paths and the normal
    /// lifecycle cannot double-release.
    pub(super) fn release_cores(&mut self, idx: usize, site: SiteId) {
        if !self.jobs[idx].holds_cores {
            return;
        }
        self.jobs[idx].holds_cores = false;
        let cores = self.jobs[idx].record.cores as u64;
        let state = &mut self.sites[site.index()];
        state.available_cores += cores;
        state.running.retain(|&j| j != idx);
    }

    /// Routes finished fluid activities to the next phase of their job.
    pub(super) fn handle_completed_activities(
        &mut self,
        completed: Vec<(usize, Phase)>,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        for (idx, phase) in completed {
            // Repair transfers carry sentinel ids (`jobs.len() + slot`) and
            // asynchronous checkpoint writes live outside the job's main
            // activity slot — both must route before any `jobs[idx]` access
            // or main-transfer unindexing.
            if phase == Phase::Repair {
                let slot = idx - self.jobs.len();
                self.finish_repair(slot, ctx);
                continue;
            }
            if phase == Phase::CkptAsync {
                self.finish_async_checkpoint_write(idx, ctx);
                continue;
            }
            self.unindex_transfer(idx);
            self.jobs[idx].activity = None;
            // `Execute` spans close in `execution_segment_done` (shared with
            // the dedicated-core timer path); everything else closes here.
            if phase != Phase::Execute {
                self.trace_phase(ctx.now().as_secs(), idx, phase, SpanPhase::End, None);
            }
            match phase {
                Phase::Input => {
                    self.jobs[idx].transfer_peer = None;
                    let site = self.jobs[idx].site.expect("staging job has a site");
                    self.begin_execution(idx, site, ctx);
                }
                Phase::Execute => {
                    self.execution_segment_done(idx, ctx);
                }
                Phase::Output => {
                    self.finalize(idx, JobState::Finished, ctx);
                }
                Phase::Checkpoint => {
                    self.finish_checkpoint_write(idx, ctx);
                }
                Phase::Restore => {
                    self.finish_restore(idx, ctx);
                }
                Phase::CkptAsync | Phase::Repair => {
                    unreachable!("routed before the per-job teardown above")
                }
            }
        }
    }
}
