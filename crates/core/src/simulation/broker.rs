//! The main server's *sender* actor: policy-driven site selection, the
//! pending list, and the per-site FIFO queue with its pilot/queue-time model.

use std::collections::VecDeque;

use cgsim_des::{Context, SimTime};
use cgsim_obs::{SpanPhase, TraceCategory};
use cgsim_platform::{NodeId, SiteId};
use cgsim_policies::{GridView, SiteLoad};
use cgsim_workload::JobState;

use super::events::GridEvent;
use super::GridModel;

/// Mutable per-site simulation state (the receiver actor).
#[derive(Debug, Clone, Default)]
pub(super) struct SiteState {
    pub(super) available_cores: u64,
    pub(super) queue: VecDeque<usize>,
    pub(super) running: Vec<usize>,
}

impl GridModel {
    /// The dynamic grid snapshot handed to the allocation policy for `idx`.
    pub(super) fn grid_view(&mut self, now: SimTime, idx: usize) -> GridView {
        let dataset = self.task_dataset(idx);
        let sites = self
            .platform
            .sites()
            .iter()
            .map(|s| {
                let state = &self.sites[s.id.index()];
                let has_replica = self.catalog.has_replica(dataset, NodeId::Site(s.id))
                    || self.caches[s.id.index()].contains(dataset);
                SiteLoad {
                    site: s.id,
                    available_cores: state.available_cores,
                    queued_jobs: state.queue.len() as u64,
                    running_jobs: state.running.len() as u64,
                    finished_jobs: self.collector.site_counters(s.id.index()).finished,
                    has_input_replica: has_replica,
                    up: self.availability.site_up(s.id),
                    active_repairs: self.repair.site_active[s.id.index()],
                }
            })
            .collect();
        GridView {
            now_s: now.as_secs(),
            sites,
            pending_jobs: self.pending.len() as u64,
        }
    }

    /// Asks the allocation policy for a site; dispatches or parks the job.
    pub(super) fn dispatch(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        let view = self.grid_view(now, idx);
        let decision = self.policy.assign_job(&self.jobs[idx].record, &view);
        match decision {
            Some(site) if site.index() < self.sites.len() && self.availability.site_up(site) => {
                if let Some(t) = self.tracer.as_mut() {
                    t.emit(
                        now.as_secs(),
                        TraceCategory::Broker,
                        SpanPhase::Instant,
                        "broker.dispatch",
                        Some(self.jobs[idx].record.id.0),
                        Some(&self.platform.site(site).name),
                        None,
                    );
                }
                self.jobs[idx].site = Some(site);
                self.jobs[idx].assign_time = now.as_secs();
                self.jobs[idx].state = JobState::Assigned;
                self.record(now, idx, JobState::Assigned);
                self.sites[site.index()].queue.push_back(idx);
                self.try_start_site(site, ctx);
            }
            decision => {
                // An out-of-range site is a policy bug, not congestion: count
                // it in the grid-level monitoring counters (and warn once) so
                // a buggy plugin cannot masquerade as an overloaded grid. A
                // *down* site is legitimate congestion (the policy may not be
                // availability-aware): the job is parked silently and the
                // pending list drains when the site recovers. Either way the
                // job is parked like any undispatchable job.
                if let Some(bad) = decision {
                    if bad.index() >= self.sites.len() {
                        self.collector.record_invalid_decision();
                        if !self.warned_invalid_policy {
                            self.warned_invalid_policy = true;
                            eprintln!(
                                "warning: allocation policy '{}' returned out-of-range {bad} \
                                 (platform has {} sites); parking the job — see the monitor's \
                                 invalid_policy_decisions counter",
                                self.policy.name(),
                                self.sites.len()
                            );
                        }
                    }
                }
                if let Some(t) = self.tracer.as_mut() {
                    if t.wants(TraceCategory::Broker) {
                        t.emit(
                            now.as_secs(),
                            TraceCategory::Broker,
                            SpanPhase::Instant,
                            "broker.park",
                            Some(self.jobs[idx].record.id.0),
                            None,
                            Some("no dispatchable site".to_string()),
                        );
                    }
                }
                self.jobs[idx].site = None;
                self.jobs[idx].state = JobState::Pending;
                self.record(now, idx, JobState::Pending);
                self.pending.push_back(idx);
            }
        }
    }

    /// Re-examines the pending list (called whenever resources free up).
    pub(super) fn drain_pending(&mut self, ctx: &mut Context<'_, GridEvent>) {
        if self.pending.is_empty() {
            return;
        }
        let waiting: Vec<usize> = self.pending.drain(..).collect();
        for idx in waiting {
            self.dispatch(idx, ctx);
        }
    }

    /// Starts queued jobs at `site` while cores are available (FIFO). Each
    /// picked job first pays the site's scheduling/pilot overhead (the
    /// queue-time model of §4.2) with its cores already reserved, then begins
    /// staging its input.
    pub(super) fn try_start_site(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        if !self.availability.site_up(site) {
            return;
        }
        while let Some(&front) = self.sites[site.index()].queue.front() {
            let needed = self.jobs[front].record.cores as u64;
            if self.sites[site.index()].available_cores < needed {
                break;
            }
            self.sites[site.index()].queue.pop_front();
            self.sites[site.index()].available_cores -= needed;
            self.sites[site.index()].running.push(front);
            self.jobs[front].holds_cores = true;

            // Busy fraction over the cores the site *currently* has (total
            // minus partial node losses).
            let total_cores = self
                .platform
                .site(site)
                .total_cores
                .saturating_sub(self.availability.cores_lost(site))
                .max(1);
            let busy_fraction =
                1.0 - self.sites[site.index()].available_cores as f64 / total_cores as f64;
            let delay = self
                .execution
                .queue_model
                .dispatch_delay(self.sites[site.index()].queue.len() as u64, busy_fraction);
            if delay > 0.0 {
                let key = ctx.schedule_in(SimTime::from_secs(delay), GridEvent::PilotStart(front));
                self.jobs[front].timer = Some(key);
            } else {
                self.start_staging(front, site, ctx);
            }
        }
    }

    /// Called after any resource release: start queued work and reconsider
    /// the pending list (paper §3.2).
    pub(super) fn after_release(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        self.try_start_site(site, ctx);
        self.drain_pending(ctx);
    }
}
