//! Fault-plan replay: applying scheduled infrastructure faults to the live
//! simulation state.
//!
//! The plan itself is generated up front by `cgsim-faults`; this module is
//! the runtime half of the subsystem. Every fault event first synchronises
//! the fluid model to the current instant (so work done at the old rates is
//! credited before capacities change), then mutates availability state:
//!
//! * **site outage** — jobs holding cores are killed (their pending engine
//!   timers cancelled, their fluid activities removed), queued jobs are
//!   bounced back to the main server, and every replica staged at the site
//!   is invalidated (cache wiped, catalog evicted),
//! * **partial node loss** — the lost cores are reclaimed from the free
//!   pool, killing the most recently started jobs if the free pool cannot
//!   cover the loss,
//! * **link degradation** — the link's fluid capacity is rescaled, which
//!   re-rates every in-flight transfer through max-min fairness,
//! * **disk loss** — the site's storage media fail without an outage:
//!   staged replicas, cache entries and durable checkpoints held there are
//!   lost while the site keeps computing,
//! * **job kill** — one targeted job is killed if it currently holds cores.
//!
//! Killed jobs consume a fault retry (`ExecutionConfig::fault_max_retries`)
//! and are resubmitted through the allocation policy — which hears about
//! every interruption via `AllocationPolicy::on_job_interrupted`, so
//! policies can blacklist flapping sites — or are finalized as failed when
//! the budget is exhausted. With checkpointing enabled a resubmitted job
//! resumes from its newest surviving checkpoint (see the `checkpoint`
//! module) and the policy additionally hears `on_job_restored` with the
//! site holding that checkpoint.
//!
//! **Data-loss audit.** Killing the jobs *at* a lost site is not enough to
//! quiesce its traffic: a transfer can have its far end at the dead node
//! while its owning job survives elsewhere (input staging from a replica at
//! the dead site, a checkpoint restore reading from it, a checkpoint write
//! targeting it). `repair_transfers_touching` cancels + re-plans such
//! in-flight transfers after every data-loss event from the surviving
//! replicas, instead of letting them keep streaming bytes out of storage
//! that no longer exists.
//!
//! Both data-loss passes are indexed, not scanned: the model maintains a
//! per-node list of jobs whose in-flight transfer touches each node
//! (`transfer_touch`, kept by [`GridModel::index_transfer`] /
//! [`GridModel::unindex_transfer`] at every transfer admission and
//! teardown) and of jobs holding a durable checkpoint at each node
//! (`ckpt_holders`, kept by the checkpoint write/discard paths). A fault at
//! a node therefore costs O(transfers + checkpoints actually touching it),
//! not O(jobs); debug builds cross-check every lookup against the full
//! scan it replaced.

use cgsim_des::{Context, SimTime};
use cgsim_faults::FaultAction;
use cgsim_obs::{SpanPhase, Subsystem, TraceCategory};
use cgsim_platform::{LinkId, NodeId, SiteId};
use cgsim_workload::JobState;

use super::events::GridEvent;
use super::job_runtime::Phase;
use super::GridModel;

impl GridModel {
    /// Applies fault-plan event `index` and chains the next one.
    pub(super) fn handle_fault(&mut self, index: usize, ctx: &mut Context<'_, GridEvent>) {
        let timer = self.profiler.start();
        self.fault_key = None;
        let now = ctx.now();
        // Credit all in-flight fluid work at the pre-fault rates before any
        // capacity or activity-set change.
        let completed = self.advance_fluid(now);
        self.handle_completed_activities(completed, ctx);

        let action = self.fault_plan[index].action;
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Fault) {
                let (kind, info) = match action {
                    FaultAction::SiteDown { site } => ("fault.site_down", format!("site={site}")),
                    FaultAction::SiteUp { site } => ("fault.site_up", format!("site={site}")),
                    FaultAction::NodeLoss { site, fraction } => (
                        "fault.node_loss",
                        format!("site={site} fraction={fraction}"),
                    ),
                    FaultAction::NodeRestore { site } => {
                        ("fault.node_restore", format!("site={site}"))
                    }
                    FaultAction::DiskLoss { site } => ("fault.disk_loss", format!("site={site}")),
                    FaultAction::LinkDegrade { link, factor } => {
                        ("fault.link_degrade", format!("link={link} factor={factor}"))
                    }
                    FaultAction::LinkRestore { link } => {
                        ("fault.link_restore", format!("link={link}"))
                    }
                    FaultAction::KillJob { job } => ("fault.kill_job", format!("job={job}")),
                };
                t.emit(
                    now.as_secs(),
                    TraceCategory::Fault,
                    SpanPhase::Instant,
                    kind,
                    None,
                    None,
                    Some(info),
                );
            }
        }
        match action {
            FaultAction::SiteDown { site } if site < self.sites.len() => {
                let site = SiteId::new(site);
                // Overlapping outage processes nest; only the up -> down
                // transition kills work.
                if self.availability.site_down_begin(site) {
                    self.collector.record_site_outage();
                    self.take_site_down(site, ctx);
                }
            }
            FaultAction::SiteUp { site } if site < self.sites.len() => {
                let site = SiteId::new(site);
                if self.availability.site_down_end(site) {
                    // Back up: reconsider parked work, and give the repair
                    // planner its restored source/destination candidates.
                    self.after_release(site, ctx);
                    self.pump_repairs(ctx);
                }
            }
            FaultAction::NodeLoss { site, fraction } if site < self.sites.len() => {
                self.apply_node_loss(SiteId::new(site), fraction, ctx);
            }
            FaultAction::NodeRestore { site } if site < self.sites.len() => {
                self.apply_node_restore(SiteId::new(site), ctx);
            }
            FaultAction::DiskLoss { site } if site < self.sites.len() => {
                self.apply_disk_loss(SiteId::new(site), ctx);
            }
            FaultAction::LinkDegrade { link, factor } if link < self.link_resources.len() => {
                self.collector.record_link_degradation();
                self.availability
                    .link_degrade_begin(LinkId::new(link), factor);
                self.apply_link_capacity(link);
            }
            FaultAction::LinkRestore { link } if link < self.link_resources.len() => {
                // Overlapping degradations nest: the link only returns to
                // nominal bandwidth when the last one ends.
                self.availability.link_degrade_end(LinkId::new(link));
                self.apply_link_capacity(link);
            }
            // Only jobs currently occupying cores can be killed; anything
            // else (pending, queued, already terminal) is a no-op.
            FaultAction::KillJob { job } if job < self.jobs.len() && self.jobs[job].holds_cores => {
                let site = self.jobs[job].site.expect("job holding cores has a site");
                self.interrupt_job(job, ctx);
                self.after_release(site, ctx);
            }
            // A target outside this scenario's topology (plan generated for a
            // different platform/trace): ignore rather than corrupt state.
            _ => {}
        }

        self.reschedule_fluid(ctx);
        self.schedule_next_fault(index + 1, ctx);
        self.profiler.stop(Subsystem::FaultReplay, timer);
    }

    /// Schedules fault-plan event `index`, unless the plan or the workload
    /// is exhausted.
    pub(super) fn schedule_next_fault(&mut self, index: usize, ctx: &mut Context<'_, GridEvent>) {
        if self.completed_jobs >= self.jobs.len() {
            return;
        }
        if let Some(event) = self.fault_plan.get(index) {
            let key = ctx.schedule_at(SimTime::from_secs(event.time_s), GridEvent::Fault(index));
            self.fault_key = Some(key);
        }
    }

    /// A whole site goes dark: wipe its storage, kill holders, bounce the
    /// queue, and re-plan surviving transfers that were reading from it.
    fn take_site_down(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        let node = NodeId::Site(site);
        // Storage contents die with the site: replicas, cache entries and
        // durable checkpoints held there are gone. This happens *before* the
        // kills so policy hooks never see a doomed checkpoint advertised as
        // a restore source.
        let lost = self.invalidate_checkpoints_at(node);
        if lost > 0 {
            self.collector.record_checkpoints_lost(lost);
            self.trace_ckpt_lost(now.as_secs(), site, lost);
        }
        if self.repair.enabled {
            let affected = self.catalog.evict_node_reporting(node);
            self.note_repair_deficits(affected);
        } else {
            self.catalog.evict_node(node);
        }
        self.caches[site.index()].clear();
        // Queued jobs hold no cores; they go back to the main server without
        // consuming a fault retry.
        let queued: Vec<usize> = self.sites[site.index()].queue.drain(..).collect();
        for idx in queued {
            self.jobs[idx].site = None;
            self.jobs[idx].state = JobState::Pending;
            self.record(now, idx, JobState::Pending);
            self.pending.push_back(idx);
        }
        // Kill every job holding cores (pilot wait, staging, executing,
        // shipping output), in start order — deterministic.
        let victims: Vec<usize> = self.sites[site.index()].running.clone();
        for idx in victims {
            self.interrupt_job(idx, ctx);
        }
        // Transfers whose far end was this site but whose owning job
        // survives elsewhere (staging from a replica here, restoring a
        // checkpoint from here) are cancelled and re-planned.
        self.repair_transfers_touching(node, ctx);
        // Bounced and killed jobs re-enter through the allocation policy,
        // which now sees the site as down.
        self.drain_pending(ctx);
        // With the cancellation pass done, the repair planner fills its free
        // slots from the freshly recorded deficits.
        self.pump_repairs(ctx);
    }

    /// Storage-media loss at a site that stays up: every byte held there —
    /// staged replicas, cache entries, durable checkpoints — is gone, and
    /// in-flight transfers touching the dead storage are re-planned.
    fn apply_disk_loss(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        self.collector.record_disk_loss();
        let node = NodeId::Site(site);
        let lost = self.invalidate_checkpoints_at(node);
        if lost > 0 {
            self.collector.record_checkpoints_lost(lost);
            self.trace_ckpt_lost(ctx.now().as_secs(), site, lost);
        }
        if self.repair.enabled {
            let affected = self.catalog.evict_node_reporting(node);
            self.note_repair_deficits(affected);
        } else {
            self.catalog.evict_node(node);
        }
        self.caches[site.index()].clear();
        self.repair_transfers_touching(node, ctx);
        self.pump_repairs(ctx);
    }

    /// Emits the `ckpt.lost` instant after a data-loss event destroyed
    /// durable checkpoints at `site`.
    fn trace_ckpt_lost(&mut self, time_s: f64, site: SiteId, lost: u64) {
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Ckpt) {
                t.emit(
                    time_s,
                    TraceCategory::Ckpt,
                    SpanPhase::Instant,
                    "ckpt.lost",
                    None,
                    Some(&self.platform.site(site).name),
                    Some(format!("count={lost}")),
                );
            }
        }
    }

    /// Dense index of `node` into the per-node fault-repair indexes
    /// (`transfer_touch`, `ckpt_holders`): sites by id, then the main
    /// server.
    pub(super) fn node_index(&self, node: NodeId) -> usize {
        match node {
            NodeId::Site(site) => site.index(),
            NodeId::MainServer => self.sites.len(),
        }
    }

    /// Registers job `idx`'s freshly admitted activity in the per-node
    /// transfer-touch index: under its remote peer, and — for inbound
    /// transfers (input staging, checkpoint restore), whose partially
    /// written destination bytes a disk loss also voids — under the
    /// destination site. Execution activities and output transfers (which
    /// terminate at the indestructible main server) carry no peer and touch
    /// nothing.
    pub(super) fn index_transfer(&mut self, idx: usize, phase: Phase) {
        let mut touches = [None, None];
        touches[0] = self.jobs[idx].transfer_peer;
        if matches!(phase, Phase::Input | Phase::Restore) {
            let site = self.jobs[idx].site.expect("transferring job has a site");
            let dest = Some(NodeId::Site(site));
            if touches[0] != dest {
                touches[1] = dest;
            }
        }
        self.jobs[idx].touches = touches;
        for node in touches.into_iter().flatten() {
            let ni = self.node_index(node);
            let list = &mut self.transfer_touch[ni];
            if let Err(pos) = list.binary_search(&idx) {
                list.insert(pos, idx);
            }
        }
    }

    /// Removes job `idx` from the transfer-touch index, using the nodes
    /// recorded at admission (so teardown order — peer cleared first or not
    /// — cannot desynchronise the index). No-op for jobs with no indexed
    /// transfer.
    pub(super) fn unindex_transfer(&mut self, idx: usize) {
        let touches = std::mem::take(&mut self.jobs[idx].touches);
        for node in touches.into_iter().flatten() {
            let ni = self.node_index(node);
            if let Ok(pos) = self.transfer_touch[ni].binary_search(&idx) {
                self.transfer_touch[ni].remove(pos);
            }
        }
    }

    /// Debug-only: the transfer-touch index must agree exactly with the
    /// O(jobs) scan it replaced.
    #[cfg(debug_assertions)]
    fn assert_touch_index_matches_scan(&self, node: NodeId) {
        let mut scan: Vec<usize> = (0..self.jobs.len())
            .filter(|&idx| {
                let job = &self.jobs[idx];
                let ckpt_hit = job.ckpt_activity.is_some() && job.ckpt_node == Some(node);
                let main_hit = job.activity.is_some_and(|activity| {
                    let Some(&(_, phase)) = self.activity_map.get(activity) else {
                        return false;
                    };
                    let peer_hit = job.transfer_peer == Some(node);
                    let dest_hit = matches!(phase, Phase::Input | Phase::Restore)
                        && job.site.map(NodeId::Site) == Some(node);
                    peer_hit || dest_hit
                });
                ckpt_hit || main_hit
            })
            .collect();
        // Repair sentinels (`jobs.len() + slot`) sort after every job index,
        // and slot order is ascending — matching the sorted index.
        for (slot, transfer) in self.repair.active.iter().enumerate() {
            if transfer
                .as_ref()
                .is_some_and(|t| t.touches.contains(&Some(node)))
            {
                scan.push(self.jobs.len() + slot);
            }
        }
        debug_assert_eq!(
            self.transfer_touch[self.node_index(node)],
            scan,
            "transfer-touch index diverged from the scan at {node:?}"
        );
    }

    /// Cancels and re-plans every in-flight transfer with an endpoint at
    /// `node`, for jobs that are still alive: input staging re-plans from
    /// the surviving replicas, a checkpoint restore falls back to the next
    /// surviving checkpoint (or a scratch rerun), and a checkpoint write is
    /// dropped (the job keeps computing and checkpoints again after the
    /// next segment). Jobs *at* a dead site are killed separately by
    /// `take_site_down`; this pass is for the survivors — the regression
    /// class where a transfer kept streaming bytes out of storage that no
    /// longer existed. The victims come from the per-node transfer-touch
    /// index — O(transfers touching the node), not O(jobs) — and the
    /// snapshot is sorted ascending, i.e. job-index order, so replay stays
    /// deterministic.
    fn repair_transfers_touching(&mut self, node: NodeId, ctx: &mut Context<'_, GridEvent>) {
        #[cfg(debug_assertions)]
        self.assert_touch_index_matches_scan(node);
        // Snapshot: each repair re-plans its job, which re-indexes it under
        // the new (surviving) endpoints while we iterate.
        let victims = self.transfer_touch[self.node_index(node)].clone();
        for idx in victims {
            // Sentinel ids above the job range belong to the repair
            // planner's re-replication transfers: a lost endpoint cancels
            // the repair (it retries with backoff from surviving replicas).
            // Cancellation only schedules retry timers — no admission
            // happens mid-loop — so the snapshot stays valid.
            if idx >= self.jobs.len() {
                let slot = idx - self.jobs.len();
                let hit = self.repair.active[slot]
                    .as_ref()
                    .map(|t| t.touches.contains(&Some(node)))
                    .unwrap_or(false);
                if hit {
                    self.cancel_repair_slot(slot, node, ctx);
                }
                continue;
            }
            // An asynchronous checkpoint write targeting the dead storage is
            // dropped; a job stalled on it resumes computing (its job-level
            // transfer, if any, is handled below — an async write only ever
            // coexists with an Execute activity, which touches no node).
            if self.jobs[idx].ckpt_activity.is_some() && self.jobs[idx].ckpt_node == Some(node) {
                let was_stalled = self.cancel_async_write(idx, ctx, "data loss");
                if was_stalled {
                    let site = self.jobs[idx].site.expect("stalled job has a site");
                    self.start_execution_segment(idx, site, ctx);
                }
            }
            let Some(activity) = self.jobs[idx].activity else {
                continue;
            };
            let Some(&(_, phase)) = self.activity_map.get(activity) else {
                continue;
            };
            let peer_hit = self.jobs[idx].transfer_peer == Some(node);
            // A disk loss also voids the partially written destination side
            // of inbound transfers at the site (the site itself is still
            // up, so the job lives on and simply restarts the transfer).
            let dest_hit = matches!(phase, Phase::Input | Phase::Restore)
                && self.jobs[idx].site.map(NodeId::Site) == Some(node);
            if !peer_hit && !dest_hit {
                continue;
            }
            // Close the cancelled transfer's span; the re-plan below opens a
            // fresh one through the normal admission funnel.
            self.trace_phase(
                ctx.now().as_secs(),
                idx,
                phase,
                SpanPhase::End,
                Some("repair"),
            );
            self.unindex_transfer(idx);
            self.fluid.remove_activity(activity);
            self.activity_map.remove(activity);
            self.jobs[idx].activity = None;
            self.jobs[idx].transfer_peer = None;
            let site = self.jobs[idx].site.expect("transferring job has a site");
            match phase {
                // `stage_input`, not `start_staging`: the attempt's start
                // time must survive the re-plan.
                Phase::Input => self.stage_input(idx, site, ctx),
                Phase::Restore => {
                    self.jobs[idx].restore_frac = 0.0;
                    self.begin_restore_or_segment(idx, site, ctx);
                }
                Phase::Checkpoint => {
                    let bytes = self
                        .execution
                        .checkpoint
                        .bytes_for(self.jobs[idx].record.cores);
                    self.release_checkpoint_storage(node, bytes);
                    self.start_execution_segment(idx, site, ctx);
                }
                // Execution holds no transfer peer and output transfers
                // terminate at the indestructible main server.
                Phase::Execute | Phase::Output => {}
                // Async writes and repairs are never a job's *main* activity:
                // both were already handled above (ckpt_activity / sentinel
                // index branches) before this match is reached.
                Phase::CkptAsync | Phase::Repair => {
                    unreachable!("not a main-activity phase")
                }
            }
        }
    }

    /// Partial node loss: reclaim `fraction` of the site's cores. Losses
    /// from overlapping processes stack (capped at the site's core count).
    fn apply_node_loss(&mut self, site: SiteId, fraction: f64, ctx: &mut Context<'_, GridEvent>) {
        let total = self.platform.site(site).total_cores;
        let lost = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as u64;
        let lost = lost.min(total.saturating_sub(self.availability.cores_lost(site)));
        self.availability.node_loss_begin(site, lost);
        self.collector.record_node_loss();
        let mut need = lost;
        loop {
            let available = self.sites[site.index()].available_cores;
            let take = need.min(available);
            self.sites[site.index()].available_cores -= take;
            need -= take;
            if need == 0 {
                break;
            }
            // Free cores cannot cover the loss: kill the most recently
            // started job (LIFO — deterministic) and reclaim its cores.
            let Some(&victim) = self.sites[site.index()].running.last() else {
                break;
            };
            self.interrupt_job(victim, ctx);
        }
        self.update_cpu_capacity(site);
        // Capacity bookkeeping is consistent again; let survivors restart.
        self.after_release(site, ctx);
    }

    /// The most recent outstanding node loss at the site ends; its cores
    /// return to the free pool.
    fn apply_node_restore(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        let restored = self.availability.node_loss_end(site);
        self.sites[site.index()].available_cores += restored;
        self.update_cpu_capacity(site);
        self.after_release(site, ctx);
    }

    /// Pushes the current availability-scaled bandwidth of `link` into the
    /// fluid model, re-rating every transfer crossing it.
    fn apply_link_capacity(&mut self, link: usize) {
        let base = self.platform.links()[link].bandwidth_bps.max(1.0);
        let factor = self.availability.link_factor(LinkId::new(link));
        self.fluid
            .set_capacity(self.link_resources[link], base * factor);
    }

    /// Pushes the current availability-scaled compute capacity of `site`
    /// into the fluid model (relevant for time-shared execution).
    fn update_cpu_capacity(&mut self, site: SiteId) {
        let usable = self
            .platform
            .site(site)
            .total_cores
            .saturating_sub(self.availability.cores_lost(site));
        let capacity = (usable as f64 * self.platform.effective_speed(site)).max(1.0);
        self.fluid
            .set_capacity(self.cpu_resources[site.index()], capacity);
    }

    /// Kills one job mid-flight: cancels its pending timer and fluid
    /// activity, releases its cores, accounts the discarded work, notifies
    /// the policy, and either resubmits it (fault-retry budget permitting)
    /// or fails it for good. The resubmitted attempt resumes from the job's
    /// newest surviving checkpoint, if any.
    pub(super) fn interrupt_job(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        let site = self.jobs[idx].site.expect("interrupted job has a site");

        // Progress past the newest durable checkpoint is recomputation the
        // grid will have to pay for again (all of it, without checkpoints).
        let durable_frac = self
            .best_durable_checkpoint(idx)
            .map(|ck| ck.frac)
            .unwrap_or(0.0);
        let progress = self.attempt_progress_fraction(idx, now);
        let lost_frac = (progress - durable_frac).max(0.0);
        if lost_frac > 0.0 {
            let lost_s = lost_frac * self.nominal_walltime_at(idx, site);
            self.collector.record_work_lost(lost_s);
        }

        if let Some(key) = self.jobs[idx].timer.take() {
            ctx.cancel(key);
            // A cancelled `ExecutionDone` timer means a dedicated-core
            // execution span is open; close it. (A pending pilot start has
            // no open span.)
            if self.jobs[idx].state == JobState::Running && self.jobs[idx].seg_walltime_s > 0.0 {
                self.trace_phase(
                    now.as_secs(),
                    idx,
                    Phase::Execute,
                    SpanPhase::End,
                    Some("interrupted"),
                );
            }
        }
        self.unindex_transfer(idx);
        if let Some(activity) = self.jobs[idx].activity.take() {
            let phase = self.activity_map.get(activity).map(|&(_, p)| p);
            if let Some(p) = phase {
                self.trace_phase(now.as_secs(), idx, p, SpanPhase::End, Some("interrupted"));
            }
            self.fluid.remove_activity(activity);
            self.activity_map.remove(activity);
            // An interrupted checkpoint write never became durable: free the
            // bytes it had reserved at the target.
            if phase == Some(Phase::Checkpoint) {
                if let Some(target) = self.jobs[idx].transfer_peer {
                    let bytes = self
                        .execution
                        .checkpoint
                        .bytes_for(self.jobs[idx].record.cores);
                    self.release_checkpoint_storage(target, bytes);
                }
            }
        }
        // An in-flight asynchronous checkpoint write dies with the attempt
        // (never durable); the job is leaving the site, so a stall does not
        // restart a segment here.
        self.cancel_async_write(idx, ctx, "interrupted");
        self.jobs[idx].transfer_peer = None;
        self.jobs[idx].frac_done = 0.0;
        self.jobs[idx].seg_fraction = 0.0;
        self.jobs[idx].seg_walltime_s = 0.0;
        self.jobs[idx].seg_amount = 0.0;
        self.jobs[idx].restore_frac = 0.0;
        self.release_cores(idx, site);
        self.collector.record_interruption(site.index());
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Fault) {
                t.emit(
                    now.as_secs(),
                    TraceCategory::Fault,
                    SpanPhase::Instant,
                    "fault.interrupt",
                    Some(self.jobs[idx].record.id.0),
                    Some(&self.platform.site(site).name),
                    None,
                );
            }
        }

        let view = self.grid_view(now, idx);
        let record = self.jobs[idx].record.clone();
        self.policy.on_job_interrupted(&record, site, &view);

        if self.jobs[idx].fault_retries < self.execution.fault_max_retries {
            self.jobs[idx].fault_retries += 1;
            self.collector.record_fault_retry();
            // The resubmission will resume from a durable checkpoint: tell
            // the policy where it lives so it can steer the job back to the
            // data (`None` = the main server holds it).
            if self.execution.checkpoint.enabled() {
                if let Some(ck) = self.best_durable_checkpoint(idx) {
                    let checkpoint_site = match ck.node {
                        NodeId::Site(s) => Some(s),
                        NodeId::MainServer => None,
                    };
                    self.policy.on_job_restored(&record, checkpoint_site, &view);
                }
            }
            self.jobs[idx].site = None;
            self.jobs[idx].state = JobState::Pending;
            self.record(now, idx, JobState::Pending);
            self.pending.push_back(idx);
        } else {
            // Retry budget exhausted. Terminal bookkeeping only — the caller
            // re-dispatches once its own capacity bookkeeping is consistent.
            self.finalize_no_restart(idx, JobState::Failed, ctx);
        }
    }
}
