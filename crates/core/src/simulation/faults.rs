//! Fault-plan replay: applying scheduled infrastructure faults to the live
//! simulation state.
//!
//! The plan itself is generated up front by `cgsim-faults`; this module is
//! the runtime half of the subsystem. Every fault event first synchronises
//! the fluid model to the current instant (so work done at the old rates is
//! credited before capacities change), then mutates availability state:
//!
//! * **site outage** — jobs holding cores are killed (their pending engine
//!   timers cancelled, their fluid activities removed), queued jobs are
//!   bounced back to the main server, and every replica staged at the site
//!   is invalidated (cache wiped, catalog evicted),
//! * **partial node loss** — the lost cores are reclaimed from the free
//!   pool, killing the most recently started jobs if the free pool cannot
//!   cover the loss,
//! * **link degradation** — the link's fluid capacity is rescaled, which
//!   re-rates every in-flight transfer through max-min fairness,
//! * **job kill** — one targeted job is killed if it currently holds cores.
//!
//! Killed jobs consume a fault retry (`ExecutionConfig::fault_max_retries`)
//! and are resubmitted through the allocation policy — which hears about
//! every interruption via `AllocationPolicy::on_job_interrupted`, so
//! policies can blacklist flapping sites — or are finalized as failed when
//! the budget is exhausted.

use cgsim_des::{Context, SimTime};
use cgsim_faults::FaultAction;
use cgsim_platform::{LinkId, NodeId, SiteId};
use cgsim_workload::JobState;

use super::events::GridEvent;
use super::GridModel;

impl GridModel {
    /// Applies fault-plan event `index` and chains the next one.
    pub(super) fn handle_fault(&mut self, index: usize, ctx: &mut Context<'_, GridEvent>) {
        self.fault_key = None;
        let now = ctx.now();
        // Credit all in-flight fluid work at the pre-fault rates before any
        // capacity or activity-set change.
        let completed = self.advance_fluid(now);
        self.handle_completed_activities(completed, ctx);

        let action = self.fault_plan[index].action;
        match action {
            FaultAction::SiteDown { site } if site < self.sites.len() => {
                let site = SiteId::new(site);
                // Overlapping outage processes nest; only the up -> down
                // transition kills work.
                if self.availability.site_down_begin(site) {
                    self.collector.record_site_outage();
                    self.take_site_down(site, ctx);
                }
            }
            FaultAction::SiteUp { site } if site < self.sites.len() => {
                let site = SiteId::new(site);
                if self.availability.site_down_end(site) {
                    // Back up: reconsider parked work.
                    self.after_release(site, ctx);
                }
            }
            FaultAction::NodeLoss { site, fraction } if site < self.sites.len() => {
                self.apply_node_loss(SiteId::new(site), fraction, ctx);
            }
            FaultAction::NodeRestore { site } if site < self.sites.len() => {
                self.apply_node_restore(SiteId::new(site), ctx);
            }
            FaultAction::LinkDegrade { link, factor } if link < self.link_resources.len() => {
                self.collector.record_link_degradation();
                self.availability
                    .link_degrade_begin(LinkId::new(link), factor);
                self.apply_link_capacity(link);
            }
            FaultAction::LinkRestore { link } if link < self.link_resources.len() => {
                // Overlapping degradations nest: the link only returns to
                // nominal bandwidth when the last one ends.
                self.availability.link_degrade_end(LinkId::new(link));
                self.apply_link_capacity(link);
            }
            // Only jobs currently occupying cores can be killed; anything
            // else (pending, queued, already terminal) is a no-op.
            FaultAction::KillJob { job } if job < self.jobs.len() && self.jobs[job].holds_cores => {
                let site = self.jobs[job].site.expect("job holding cores has a site");
                self.interrupt_job(job, ctx);
                self.after_release(site, ctx);
            }
            // A target outside this scenario's topology (plan generated for a
            // different platform/trace): ignore rather than corrupt state.
            _ => {}
        }

        self.reschedule_fluid(ctx);
        self.schedule_next_fault(index + 1, ctx);
    }

    /// Schedules fault-plan event `index`, unless the plan or the workload
    /// is exhausted.
    pub(super) fn schedule_next_fault(&mut self, index: usize, ctx: &mut Context<'_, GridEvent>) {
        if self.completed_jobs >= self.jobs.len() {
            return;
        }
        if let Some(event) = self.fault_plan.get(index) {
            let key = ctx.schedule_at(SimTime::from_secs(event.time_s), GridEvent::Fault(index));
            self.fault_key = Some(key);
        }
    }

    /// A whole site goes dark: kill holders, bounce the queue, wipe staged
    /// data.
    fn take_site_down(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        // Queued jobs hold no cores; they go back to the main server without
        // consuming a fault retry.
        let queued: Vec<usize> = self.sites[site.index()].queue.drain(..).collect();
        for idx in queued {
            self.jobs[idx].site = None;
            self.jobs[idx].state = JobState::Pending;
            self.record(now, idx, JobState::Pending);
            self.pending.push_back(idx);
        }
        // Kill every job holding cores (pilot wait, staging, executing,
        // shipping output), in start order — deterministic.
        let victims: Vec<usize> = self.sites[site.index()].running.clone();
        for idx in victims {
            self.interrupt_job(idx, ctx);
        }
        // Outages invalidate staged data: replicas and cache entries at the
        // site are gone; later jobs re-stage over the WAN.
        self.catalog.evict_node(NodeId::Site(site));
        self.caches[site.index()].clear();
        // Bounced and killed jobs re-enter through the allocation policy,
        // which now sees the site as down.
        self.drain_pending(ctx);
    }

    /// Partial node loss: reclaim `fraction` of the site's cores. Losses
    /// from overlapping processes stack (capped at the site's core count).
    fn apply_node_loss(&mut self, site: SiteId, fraction: f64, ctx: &mut Context<'_, GridEvent>) {
        let total = self.platform.site(site).total_cores;
        let lost = ((total as f64) * fraction.clamp(0.0, 1.0)).round() as u64;
        let lost = lost.min(total.saturating_sub(self.availability.cores_lost(site)));
        self.availability.node_loss_begin(site, lost);
        self.collector.record_node_loss();
        let mut need = lost;
        loop {
            let available = self.sites[site.index()].available_cores;
            let take = need.min(available);
            self.sites[site.index()].available_cores -= take;
            need -= take;
            if need == 0 {
                break;
            }
            // Free cores cannot cover the loss: kill the most recently
            // started job (LIFO — deterministic) and reclaim its cores.
            let Some(&victim) = self.sites[site.index()].running.last() else {
                break;
            };
            self.interrupt_job(victim, ctx);
        }
        self.update_cpu_capacity(site);
        // Capacity bookkeeping is consistent again; let survivors restart.
        self.after_release(site, ctx);
    }

    /// The most recent outstanding node loss at the site ends; its cores
    /// return to the free pool.
    fn apply_node_restore(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        let restored = self.availability.node_loss_end(site);
        self.sites[site.index()].available_cores += restored;
        self.update_cpu_capacity(site);
        self.after_release(site, ctx);
    }

    /// Pushes the current availability-scaled bandwidth of `link` into the
    /// fluid model, re-rating every transfer crossing it.
    fn apply_link_capacity(&mut self, link: usize) {
        let base = self.platform.links()[link].bandwidth_bps.max(1.0);
        let factor = self.availability.link_factor(LinkId::new(link));
        self.fluid
            .set_capacity(self.link_resources[link], base * factor);
    }

    /// Pushes the current availability-scaled compute capacity of `site`
    /// into the fluid model (relevant for time-shared execution).
    fn update_cpu_capacity(&mut self, site: SiteId) {
        let usable = self
            .platform
            .site(site)
            .total_cores
            .saturating_sub(self.availability.cores_lost(site));
        let capacity = (usable as f64 * self.platform.effective_speed(site)).max(1.0);
        self.fluid
            .set_capacity(self.cpu_resources[site.index()], capacity);
    }

    /// Kills one job mid-flight: cancels its pending timer and fluid
    /// activity, releases its cores, notifies the policy, and either
    /// resubmits it (fault-retry budget permitting) or fails it for good.
    pub(super) fn interrupt_job(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        let site = self.jobs[idx].site.expect("interrupted job has a site");
        if let Some(key) = self.jobs[idx].timer.take() {
            ctx.cancel(key);
        }
        if let Some(activity) = self.jobs[idx].activity.take() {
            self.fluid.remove_activity(activity);
            self.activity_map.remove(activity);
        }
        self.release_cores(idx, site);
        self.collector.record_interruption(site.index());

        let view = self.grid_view(now, idx);
        let record = self.jobs[idx].record.clone();
        self.policy.on_job_interrupted(&record, site, &view);

        if self.jobs[idx].fault_retries < self.execution.fault_max_retries {
            self.jobs[idx].fault_retries += 1;
            self.collector.record_fault_retry();
            self.jobs[idx].site = None;
            self.jobs[idx].state = JobState::Pending;
            self.record(now, idx, JobState::Pending);
            self.pending.push_back(idx);
        } else {
            // Retry budget exhausted. Terminal bookkeeping only — the caller
            // re-dispatches once its own capacity bookkeeping is consistent.
            self.finalize_no_restart(idx, JobState::Failed, ctx);
        }
    }
}
