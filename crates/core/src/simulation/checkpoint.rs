//! Checkpoint/restart: segmented execution with durable state writes, and
//! recovery of fault-interrupted jobs from their newest surviving checkpoint.
//!
//! With a non-zero [`CheckpointConfig::interval_s`](crate::config::CheckpointConfig)
//! a job's execution is cut into segments of `interval_s` completed-work
//! seconds. After each segment the job pauses and writes its state — sized by
//! the config's byte model — as a *real fluid transfer* to the configured
//! storage target (the site's own storage element over the site LAN, or the
//! main server over the WAN, contending with staging traffic either way).
//! Only a completed write is durable: it registers the checkpoint as a
//! dataset replica in the [`ReplicaCatalog`](cgsim_data::ReplicaCatalog) at
//! the target node and reserves its bytes in the target's
//! [`StorageElement`](cgsim_data::StorageElement).
//!
//! When fault injection kills the job, the resubmitted attempt resumes from
//! the newest checkpoint whose replica still exists — site outages and disk
//! losses evict replicas, so a checkpoint stored at a dead site is simply
//! gone and recovery falls back to an older checkpoint at another node, or
//! to a scratch rerun. Resuming at a site that does not hold the checkpoint
//! re-stages the checkpoint bytes through the fluid model first.
//!
//! Everything here is a pure function of the simulation state: no RNG is
//! drawn, so checkpointed runs are exactly as reproducible as plain ones,
//! and a disabled policy leaves the original execution path untouched.

use cgsim_data::DatasetId;
use cgsim_des::{Context, SimTime};
use cgsim_obs::{SpanPhase, Subsystem, TraceCategory};
use cgsim_platform::{NodeId, SiteId};
use cgsim_workload::ideal_walltime;

use super::events::GridEvent;
use super::job_runtime::Phase;
use super::GridModel;
use crate::config::{CheckpointTarget, ComputeMode};

/// One durable checkpoint of a job: how much of the job it covers and where
/// its bytes live. A job holds at most one checkpoint per storage node (a
/// newer write at the same node supersedes the older one in place).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(super) struct JobCheckpoint {
    /// Fraction of the job's total work completed at checkpoint time.
    pub(super) frac: f64,
    /// Storage node holding the checkpoint bytes.
    pub(super) node: NodeId,
    /// Catalog dataset backing the checkpoint (replica at `node` while the
    /// checkpoint is alive).
    pub(super) dataset: DatasetId,
    /// Checkpoint size in bytes.
    pub(super) bytes: u64,
}

impl GridModel {
    /// The nominal (contention-free) walltime of job `idx` at `site`, used
    /// to convert between progress fractions and execution seconds.
    pub(super) fn nominal_walltime_at(&self, idx: usize, site: SiteId) -> f64 {
        let record = &self.jobs[idx].record;
        ideal_walltime(
            record.work_hs23,
            record.cores,
            self.platform.effective_speed(site),
        )
    }

    /// The newest surviving checkpoint of job `idx`: the highest-coverage
    /// stack entry whose replica still exists in the catalog (outages and
    /// disk losses evict replicas and eagerly drop stack entries, so the
    /// replica re-check is a cheap safety net, not the primary mechanism).
    pub(super) fn best_durable_checkpoint(&self, idx: usize) -> Option<JobCheckpoint> {
        self.jobs[idx]
            .checkpoints
            .iter()
            .filter(|ck| self.catalog.has_replica(ck.dataset, ck.node))
            .copied()
            .fold(None, |best: Option<JobCheckpoint>, ck| match best {
                Some(b) if b.frac >= ck.frac => Some(b),
                _ => Some(ck),
            })
    }

    /// Entry point of a checkpointed execution attempt (cores held, input
    /// staged): restore from the best surviving checkpoint — re-staging its
    /// bytes when they live at another endpoint — or start from scratch.
    pub(super) fn begin_restore_or_segment(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        self.jobs[idx].frac_done = 0.0;
        self.jobs[idx].restore_frac = 0.0;
        match self.best_durable_checkpoint(idx) {
            Some(ck) if ck.node == NodeId::Site(site) => {
                // The resume site already holds the checkpoint: restore is a
                // local read, free at this model's resolution.
                self.jobs[idx].frac_done = ck.frac;
                let saved = ck.frac * self.nominal_walltime_at(idx, site);
                self.collector.record_checkpoint_restore(saved);
                if let Some(t) = self.tracer.as_mut() {
                    if t.wants(TraceCategory::Ckpt) {
                        t.emit(
                            ctx.now().as_secs(),
                            TraceCategory::Ckpt,
                            SpanPhase::Instant,
                            "ckpt.restore",
                            Some(self.jobs[idx].record.id.0),
                            Some(&self.platform.site(site).name),
                            Some(format!("local frac={:.4}", ck.frac)),
                        );
                    }
                }
                self.start_execution_segment(idx, site, ctx);
            }
            Some(ck) => {
                // Remote checkpoint: re-stage its bytes through the fluid
                // model before execution continues. Durability is credited
                // only when the transfer lands (`finish_restore`).
                self.jobs[idx].restore_frac = ck.frac;
                self.jobs[idx].transfer_peer = Some(ck.node);
                self.jobs[idx].staged_bytes += ck.bytes;
                self.start_transfer(
                    idx,
                    Phase::Restore,
                    ck.bytes,
                    ck.node,
                    NodeId::Site(site),
                    ctx,
                );
            }
            None => self.start_execution_segment(idx, site, ctx),
        }
    }

    /// A checkpoint-restore transfer landed: credit the restored progress
    /// and continue executing from it.
    pub(super) fn finish_restore(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let site = self.jobs[idx].site.expect("restoring job has a site");
        self.jobs[idx].transfer_peer = None;
        let frac = self.jobs[idx].restore_frac;
        self.jobs[idx].restore_frac = 0.0;
        self.jobs[idx].frac_done = frac;
        let saved = frac * self.nominal_walltime_at(idx, site);
        self.collector.record_checkpoint_restore(saved);
        self.start_execution_segment(idx, site, ctx);
    }

    /// Schedules the next execution segment: `interval_s` completed-work
    /// seconds, or whatever remains if that is less. Only called with
    /// checkpointing enabled.
    pub(super) fn start_execution_segment(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let now = ctx.now();
        let interval = self.execution.checkpoint.interval_s;
        let total_w = self.nominal_walltime_at(idx, site);
        let frac_done = self.jobs[idx].frac_done;
        let remaining_w = total_w * (1.0 - frac_done);
        // Degenerate zero-work jobs (a trace is free to contain them) get a
        // single final segment: guard the interval/total_w ratio so the
        // time-shared arm cannot compute `0 * inf = NaN` and poison the
        // fluid model.
        let interval_frac = if total_w > 0.0 {
            interval / total_w
        } else {
            1.0
        };
        match self.execution.compute_mode {
            ComputeMode::DedicatedCores => {
                let (seg_w, seg_frac) = if remaining_w <= interval {
                    (remaining_w, 1.0 - frac_done)
                } else {
                    (interval, interval_frac)
                };
                self.jobs[idx].seg_fraction = seg_frac;
                self.jobs[idx].seg_started_s = now.as_secs();
                self.jobs[idx].seg_walltime_s = seg_w;
                let key = ctx.schedule_in(SimTime::from_secs(seg_w), GridEvent::ExecutionDone(idx));
                self.jobs[idx].timer = Some(key);
                self.trace_phase(now.as_secs(), idx, Phase::Execute, SpanPhase::Begin, None);
            }
            ComputeMode::TimeShared => {
                let record = &self.jobs[idx].record;
                let cores = record.cores;
                let weight = cores as f64;
                let total_amount = record.work_hs23 / cgsim_workload::parallel_efficiency(cores);
                let resource = self.cpu_resources[site.index()];
                let remaining_amount = total_amount * (1.0 - frac_done);
                let interval_amount = total_amount * interval_frac;
                let (seg_amount, seg_frac) = if remaining_amount <= interval_amount {
                    (remaining_amount, 1.0 - frac_done)
                } else {
                    (interval_amount, interval_frac)
                };
                self.jobs[idx].seg_fraction = seg_frac;
                self.jobs[idx].seg_started_s = now.as_secs();
                self.jobs[idx].seg_amount = seg_amount;
                self.start_fluid_activity(
                    idx,
                    Phase::Execute,
                    seg_amount,
                    &[resource],
                    weight,
                    ctx,
                );
            }
        }
    }

    /// Bytes the *wire* has to carry to make the next checkpoint of job
    /// `idx` durable at `target`: the full image by default, or just the
    /// delta accrued since the target's previous checkpoint of this job when
    /// incremental shipping (`delta_bytes_per_s`) is configured and a base
    /// image survives there. The storage reservation is always the full
    /// image — the durable artifact is self-contained either way.
    fn checkpoint_transfer_bytes(&self, idx: usize, site: SiteId, target: NodeId) -> u64 {
        let job = &self.jobs[idx];
        let base = job
            .checkpoints
            .iter()
            .find(|ck| ck.node == target && self.catalog.has_replica(ck.dataset, ck.node));
        let progress_s = base
            .map(|ck| (job.frac_done - ck.frac).max(0.0) * self.nominal_walltime_at(idx, site))
            .unwrap_or(0.0);
        self.execution
            .checkpoint
            .transfer_bytes_for(job.record.cores, progress_s, base.is_some())
    }

    /// Starts the durable write of a checkpoint covering the job's progress
    /// so far: a fluid transfer to the configured storage target. A full
    /// site storage element skips the write (the job keeps computing and
    /// tries again after the next segment; the element records the
    /// rejection).
    pub(super) fn start_checkpoint_write(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let bytes = self
            .execution
            .checkpoint
            .bytes_for(self.jobs[idx].record.cores);
        match self.execution.checkpoint.target {
            CheckpointTarget::SiteStorage => {
                // The new copy is written before the superseded one is
                // deleted, so both are briefly reserved.
                if !self.storage[site.index()].reserve(bytes) {
                    self.start_execution_segment(idx, site, ctx);
                    return;
                }
                let target = NodeId::Site(site);
                let xfer = self.checkpoint_transfer_bytes(idx, site, target);
                self.collector.record_ckpt_shipped(xfer);
                self.jobs[idx].transfer_peer = Some(target);
                // A site-local write crosses only the site LAN, contending
                // with staging transfers entering or leaving the site.
                let lan = self.platform.site(site).lan_link;
                let route = [self.link_resources[lan.index()]];
                self.start_fluid_activity(idx, Phase::Checkpoint, xfer as f64, &route, 1.0, ctx);
            }
            CheckpointTarget::MainServer => {
                let xfer = self.checkpoint_transfer_bytes(idx, site, NodeId::MainServer);
                self.collector.record_ckpt_shipped(xfer);
                self.jobs[idx].transfer_peer = Some(NodeId::MainServer);
                self.start_transfer(
                    idx,
                    Phase::Checkpoint,
                    xfer,
                    NodeId::Site(site),
                    NodeId::MainServer,
                    ctx,
                );
            }
        }
    }

    /// A synchronous checkpoint write landed: the checkpoint becomes durable
    /// and the next execution segment starts.
    pub(super) fn finish_checkpoint_write(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let timer = self.profiler.start();
        let site = self.jobs[idx].site.expect("checkpointing job has a site");
        let node = self.jobs[idx]
            .transfer_peer
            .take()
            .expect("checkpoint write has a target");
        let frac = self.jobs[idx].frac_done;
        self.make_checkpoint_durable(idx, site, node, frac, ctx);
        self.profiler.stop(Subsystem::Checkpoint, timer);
        self.start_execution_segment(idx, site, ctx);
    }

    /// Registers a completed checkpoint write as durable: catalog replica +
    /// stack entry, superseding any older checkpoint of this job at the same
    /// node (shared by the synchronous and asynchronous write paths).
    fn make_checkpoint_durable(
        &mut self,
        idx: usize,
        site: SiteId,
        node: NodeId,
        frac: f64,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let bytes = self
            .execution
            .checkpoint
            .bytes_for(self.jobs[idx].record.cores);
        let name = format!("ckpt-job-{idx}@{node}");
        let dataset = self.catalog.register(&name, 1, bytes, node);
        self.catalog.add_replica(dataset, node);
        if let Some(entry) = self.jobs[idx]
            .checkpoints
            .iter_mut()
            .find(|c| c.node == node)
        {
            // Superseded in place: the old copy's bytes are freed now that
            // the new one is durable.
            let old_bytes = entry.bytes;
            entry.frac = frac;
            entry.bytes = bytes;
            entry.dataset = dataset;
            self.release_checkpoint_storage(node, old_bytes);
        } else {
            self.jobs[idx].checkpoints.push(JobCheckpoint {
                frac,
                node,
                dataset,
                bytes,
            });
            // First checkpoint of this job at `node`: register it in the
            // per-node holder index (supersedes-in-place keeps membership).
            let ni = self.node_index(node);
            let holders = &mut self.ckpt_holders[ni];
            if let Err(pos) = holders.binary_search(&idx) {
                holders.insert(pos, idx);
            }
        }
        self.collector
            .record_checkpoint_written(site.index(), bytes);
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Ckpt) {
                t.emit(
                    ctx.now().as_secs(),
                    TraceCategory::Ckpt,
                    SpanPhase::Instant,
                    "ckpt.durable",
                    Some(self.jobs[idx].record.id.0),
                    Some(&self.platform.site(site).name),
                    Some(format!("frac={frac:.4} bytes={bytes} node={node}")),
                );
            }
        }
    }

    /// Starts an *asynchronous* checkpoint write (`checkpoint.overlap`): the
    /// same fluid transfer as the synchronous path, but held in the job's
    /// `ckpt_activity` slot so the next execution segment runs concurrently.
    /// Captures the job's current progress fraction — that snapshot, not the
    /// progress at completion time, is what becomes durable. Returns whether
    /// the write was admitted (a full storage element skips it, exactly like
    /// the synchronous path).
    pub(super) fn start_async_checkpoint_write(
        &mut self,
        idx: usize,
        site: SiteId,
        ctx: &mut Context<'_, GridEvent>,
    ) -> bool {
        debug_assert!(self.jobs[idx].ckpt_activity.is_none());
        let timer = self.profiler.start();
        let bytes = self
            .execution
            .checkpoint
            .bytes_for(self.jobs[idx].record.cores);
        let (node, route): (NodeId, Vec<_>) = match self.execution.checkpoint.target {
            CheckpointTarget::SiteStorage => {
                if !self.storage[site.index()].reserve(bytes) {
                    self.profiler.stop(Subsystem::Checkpoint, timer);
                    return false;
                }
                let lan = self.platform.site(site).lan_link;
                (NodeId::Site(site), vec![self.link_resources[lan.index()]])
            }
            CheckpointTarget::MainServer => {
                let route = self
                    .platform
                    .route(NodeId::Site(site), NodeId::MainServer)
                    .links
                    .iter()
                    .map(|l| self.link_resources[l.index()])
                    .collect();
                (NodeId::MainServer, route)
            }
        };
        let xfer = self.checkpoint_transfer_bytes(idx, site, node);
        self.collector.record_ckpt_shipped(xfer);
        let now = ctx.now();
        let completed = self.advance_fluid(now);
        let activity = self.fluid.add_weighted_activity(xfer as f64, &route, 1.0);
        self.activity_map.insert(activity, (idx, Phase::CkptAsync));
        self.jobs[idx].ckpt_activity = Some(activity);
        self.jobs[idx].ckpt_node = Some(node);
        self.jobs[idx].ckpt_frac = self.jobs[idx].frac_done;
        // Register the write in the per-node transfer index under its target
        // so data loss there finds it. The job's only possible concurrent
        // main activity is Execute, which touches no node, so the index slot
        // is unambiguous.
        let ni = self.node_index(node);
        let list = &mut self.transfer_touch[ni];
        if let Err(pos) = list.binary_search(&idx) {
            list.insert(pos, idx);
        }
        self.trace_phase(now.as_secs(), idx, Phase::CkptAsync, SpanPhase::Begin, None);
        self.profiler.stop(Subsystem::Checkpoint, timer);
        self.handle_completed_activities(completed, ctx);
        self.reschedule_fluid(ctx);
        true
    }

    /// An asynchronous checkpoint write drained: the snapshot it carried
    /// becomes durable, and a job stalled at its next segment boundary
    /// resumes (writing the freshly accumulated state and computing on).
    pub(super) fn finish_async_checkpoint_write(
        &mut self,
        idx: usize,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let timer = self.profiler.start();
        let site = self.jobs[idx].site.expect("checkpointing job has a site");
        let node = self.jobs[idx]
            .ckpt_node
            .take()
            .expect("async checkpoint write has a target");
        self.jobs[idx].ckpt_activity = None;
        let ni = self.node_index(node);
        if let Ok(pos) = self.transfer_touch[ni].binary_search(&idx) {
            self.transfer_touch[ni].remove(pos);
        }
        self.trace_phase(
            ctx.now().as_secs(),
            idx,
            Phase::CkptAsync,
            SpanPhase::End,
            None,
        );
        let frac = self.jobs[idx].ckpt_frac;
        self.make_checkpoint_durable(idx, site, node, frac, ctx);
        self.profiler.stop(Subsystem::Checkpoint, timer);
        if self.jobs[idx].ckpt_stalled {
            self.jobs[idx].ckpt_stalled = false;
            let admitted = self.start_async_checkpoint_write(idx, site, ctx);
            self.start_execution_segment(idx, site, ctx);
            if admitted {
                self.collector.record_ckpt_overlap();
            }
        }
    }

    /// Tears down an in-flight asynchronous write (job interrupted, its
    /// target lost its data, or the job finished first): the transfer leaves
    /// the fluid model and the reservation is returned — nothing becomes
    /// durable. Returns whether the job was stalled on this write (the
    /// caller then owns restarting its execution segment, unless the job is
    /// leaving the site anyway).
    pub(super) fn cancel_async_write(
        &mut self,
        idx: usize,
        ctx: &mut Context<'_, GridEvent>,
        info: &str,
    ) -> bool {
        let Some(activity) = self.jobs[idx].ckpt_activity.take() else {
            return false;
        };
        self.trace_phase(
            ctx.now().as_secs(),
            idx,
            Phase::CkptAsync,
            SpanPhase::End,
            Some(info),
        );
        self.fluid.remove_activity(activity);
        self.activity_map.remove(activity);
        if let Some(node) = self.jobs[idx].ckpt_node.take() {
            let ni = self.node_index(node);
            if let Ok(pos) = self.transfer_touch[ni].binary_search(&idx) {
                self.transfer_touch[ni].remove(pos);
            }
            let bytes = self
                .execution
                .checkpoint
                .bytes_for(self.jobs[idx].record.cores);
            self.release_checkpoint_storage(node, bytes);
        }
        std::mem::take(&mut self.jobs[idx].ckpt_stalled)
    }

    /// Releases a checkpoint's byte reservation at its storage node. The
    /// main server's storage is modelled as unbounded, so only site elements
    /// keep accounts.
    pub(super) fn release_checkpoint_storage(&mut self, node: NodeId, bytes: u64) {
        if let NodeId::Site(site) = node {
            self.storage[site.index()].release(bytes);
        }
    }

    /// Drops every durable checkpoint of job `idx`, freeing its storage and
    /// catalog replicas (terminal jobs and application failures clean up
    /// after themselves).
    pub(super) fn discard_checkpoints(&mut self, idx: usize) {
        let timer = self.profiler.start();
        let stack = std::mem::take(&mut self.jobs[idx].checkpoints);
        for ck in stack {
            let ni = self.node_index(ck.node);
            if let Ok(pos) = self.ckpt_holders[ni].binary_search(&idx) {
                self.ckpt_holders[ni].remove(pos);
            }
            self.catalog.remove_replica(ck.dataset, ck.node);
            self.release_checkpoint_storage(ck.node, ck.bytes);
        }
        self.profiler.stop(Subsystem::Checkpoint, timer);
    }

    /// Debug-only: the checkpoint-holder index must agree exactly with the
    /// O(jobs) scan it replaced.
    #[cfg(debug_assertions)]
    fn assert_holder_index_matches_scan(&self, node: NodeId) {
        let scan: Vec<usize> = (0..self.jobs.len())
            .filter(|&idx| self.jobs[idx].checkpoints.iter().any(|ck| ck.node == node))
            .collect();
        debug_assert_eq!(
            self.ckpt_holders[self.node_index(node)],
            scan,
            "checkpoint-holder index diverged from the scan at {node:?}"
        );
    }

    /// Invalidates every durable checkpoint held at `node` (a site outage or
    /// disk loss destroyed the storage contents). Returns how many
    /// checkpoints were lost; the catalog replicas are dropped by the
    /// caller's `evict_node`. The holders come from the per-node index —
    /// O(checkpoints at the node), not O(jobs) — visited in ascending job
    /// order; each job's surviving stack entries keep their relative order
    /// (`best_durable_checkpoint`'s tie-break observes it).
    pub(super) fn invalidate_checkpoints_at(&mut self, node: NodeId) -> u64 {
        let timer = self.profiler.start();
        #[cfg(debug_assertions)]
        self.assert_holder_index_matches_scan(node);
        let ni = self.node_index(node);
        let holders = std::mem::take(&mut self.ckpt_holders[ni]);
        let mut lost = 0u64;
        let mut freed = 0u64;
        for idx in holders {
            self.jobs[idx].checkpoints.retain(|ck| {
                if ck.node == node {
                    lost += 1;
                    freed += ck.bytes;
                    false
                } else {
                    true
                }
            });
        }
        if freed > 0 {
            self.release_checkpoint_storage(node, freed);
        }
        self.profiler.stop(Subsystem::Checkpoint, timer);
        lost
    }

    /// Execution progress of job `idx`'s current attempt, including the
    /// partially completed in-flight segment, as a fraction of total work.
    /// Valid only after the fluid model has been advanced to `now`.
    pub(super) fn attempt_progress_fraction(&self, idx: usize, now: SimTime) -> f64 {
        let job = &self.jobs[idx];
        let mut frac = job.frac_done;
        if let Some(activity) = job.activity {
            // Time-shared segment in flight: read progress off the fluid
            // model's remaining work.
            if let Some(&(_, Phase::Execute)) = self.activity_map.get(activity) {
                if let Some(remaining) = self.fluid.remaining(activity) {
                    if job.seg_amount > 0.0 {
                        let done = 1.0 - (remaining / job.seg_amount).clamp(0.0, 1.0);
                        frac += job.seg_fraction * done;
                    }
                }
            }
        } else if job.timer.is_some()
            && job.state == cgsim_workload::JobState::Running
            && job.seg_walltime_s > 0.0
        {
            // Dedicated-core segment in flight: progress is linear in time.
            let elapsed = (now.as_secs() - job.seg_started_s).clamp(0.0, job.seg_walltime_s);
            frac += job.seg_fraction * (elapsed / job.seg_walltime_s);
        }
        frac.clamp(0.0, 1.0)
    }
}
