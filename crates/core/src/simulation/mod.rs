//! The event-driven grid simulation (main server + site receivers).
//!
//! The module is split along the paper's architecture (§3.1–3.2):
//!
//! * [`events`] — the [`GridEvent`](events::GridEvent) alphabet and the DES
//!   event dispatch,
//! * [`broker`] — the main server's *sender* actor: policy-driven site
//!   selection, the pending list and the per-site FIFO queue with its
//!   pilot/queue-time model,
//! * [`job_runtime`] — the per-job state machine (Input/Execute/Output
//!   phases, failure draws and retries),
//! * [`staging`] — execution of staging plans against the fluid network
//!   model and the replica catalog,
//! * [`accounting`] — monitoring transitions, job outcomes and dashboard
//!   panels,
//!
//! with this file holding the public façade: [`Simulation`],
//! [`SimulationBuilder`] and [`SimulationError`].

mod accounting;
mod broker;
mod checkpoint;
mod events;
mod faults;
mod job_runtime;
mod repair;
mod staging;
#[cfg(test)]
mod tests;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cgsim_data::{DatasetId, LruCache, ReplicaCatalog, StorageElement};
use cgsim_des::fluid::{ActivityId, ActivityMap, FluidModel, ResourceId};
use cgsim_des::rng::Rng;
use cgsim_des::{Engine, EventKey, SimTime};
use cgsim_faults::{FaultEvent, FaultPlan};
use cgsim_monitor::{MetricsReport, MonitoringCollector};
use cgsim_obs::{Profiler, SpanPhase, Subsystem, TraceSink, Tracer};
use cgsim_platform::{GridAvailability, Platform, PlatformSpec};
use cgsim_policies::{
    AllocationPolicy, DataMovementPolicy, DataPolicyRegistry, GridInfo, PolicyRegistry,
};
use cgsim_workload::{JobRecord, Trace};

use crate::config::ExecutionConfig;
use crate::results::SimulationResults;

use broker::SiteState;
use events::GridEvent;
use job_runtime::{JobRuntime, Phase};
use repair::RepairState;

/// Errors raised while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// The platform specification failed to validate/build.
    Platform(String),
    /// The requested allocation policy is not registered.
    UnknownPolicy(String),
    /// The requested data-movement policy is not registered.
    UnknownDataPolicy(String),
    /// The simulation was built without a required component.
    MissingComponent(&'static str),
    /// A scenario specification could not be resolved into a run (e.g. an
    /// unparseable `--faults` spec submitted through the scenario engine).
    InvalidScenario(String),
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::Platform(msg) => write!(f, "platform error: {msg}"),
            SimulationError::UnknownPolicy(name) => write!(f, "unknown allocation policy: {name}"),
            SimulationError::UnknownDataPolicy(name) => {
                write!(f, "unknown data-movement policy: {name}")
            }
            SimulationError::MissingComponent(what) => {
                write!(f, "simulation builder is missing: {what}")
            }
            SimulationError::InvalidScenario(msg) => {
                write!(f, "invalid scenario: {msg}")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// The simulation model driven by the DES engine.
///
/// Behaviour is implemented across the sibling modules; this struct is the
/// shared state they all act on.
struct GridModel {
    platform: Platform,
    execution: ExecutionConfig,
    policy: Box<dyn AllocationPolicy>,
    data_policy: Box<dyn DataMovementPolicy>,
    jobs: Vec<JobRuntime>,
    sites: Vec<SiteState>,
    pending: VecDeque<usize>,
    rng: Rng,
    // Fluid model state. The per-activity bookkeeping is slab-parallel to
    // the fluid model's slots (see `cgsim_des::fluid::ActivityMap`): lookups
    // are index arithmetic and stale generation-tagged ids are rejected, so
    // no hashing happens on the per-event hot path.
    fluid: FluidModel,
    link_resources: Vec<ResourceId>,
    cpu_resources: Vec<ResourceId>,
    activity_map: ActivityMap<(usize, Phase)>,
    last_fluid_sync: SimTime,
    fluid_event: Option<EventKey>,
    /// Reused buffer for `FluidModel::advance_into` (no allocation on the
    /// per-event fluid sync).
    fluid_done_scratch: Vec<ActivityId>,
    /// Reused buffer for staging-route resource lists.
    route_scratch: Vec<ResourceId>,
    // Data management state.
    catalog: ReplicaCatalog,
    caches: Vec<LruCache>,
    /// Per-site storage elements holding durable checkpoint state (indexed
    /// by `SiteId`; the main server's storage is modelled as unbounded).
    storage: Vec<StorageElement>,
    task_datasets: HashMap<u64, DatasetId>,
    // Monitoring.
    collector: MonitoringCollector,
    /// Whether the out-of-range-policy warning has been emitted (log once).
    warned_invalid_policy: bool,
    // Fault injection.
    /// Dynamic per-site/per-link availability (all-up without a fault plan).
    availability: GridAvailability,
    /// The attached fault schedule (empty without a plan).
    fault_plan: Vec<FaultEvent>,
    /// Pending fault-chain event, cancelled when the workload completes.
    fault_key: Option<EventKey>,
    /// Per-node index of jobs whose in-flight transfer touches the node
    /// (remote peer, or destination of an inbound transfer), indexed by
    /// [`GridModel::node_index`]. Sorted ascending so data-loss replay
    /// visits victims in job-index order without scanning every job.
    transfer_touch: Vec<Vec<usize>>,
    /// Per-node index of jobs holding a durable checkpoint at the node
    /// (at most one each — newer writes supersede in place), indexed by
    /// [`GridModel::node_index`], sorted ascending. Lets a site outage or
    /// disk loss invalidate exactly the affected checkpoints instead of
    /// walking every job's stack.
    ckpt_holders: Vec<Vec<usize>>,
    /// Jobs that reached a terminal state so far.
    completed_jobs: usize,
    /// Fault-aware re-replication planner (inert when disabled — no events,
    /// no RNG draws, no allocation).
    repair: RepairState,
    // Observability (see `cgsim_obs`). `None`/disabled adds a single branch
    // per emission site and nothing else — no allocation, no formatting.
    /// Structured trace of simulated behaviour (spans carry sim-time only).
    tracer: Option<Tracer>,
    /// Wall-clock self-profiler (buckets stay empty when disabled).
    profiler: Profiler,
}

impl GridModel {
    #[allow(clippy::too_many_arguments)]
    fn new(
        platform: Platform,
        jobs: Vec<JobRuntime>,
        policy: Box<dyn AllocationPolicy>,
        data_policy: Box<dyn DataMovementPolicy>,
        execution: ExecutionConfig,
        fault_plan: Vec<FaultEvent>,
        fault_key: Option<EventKey>,
        tracer: Option<Tracer>,
        profiler: Profiler,
    ) -> Self {
        let mut fluid = FluidModel::new();
        let link_resources: Vec<ResourceId> = platform
            .links()
            .iter()
            .map(|l| fluid.add_resource(l.bandwidth_bps.max(1.0)))
            .collect();
        let cpu_resources: Vec<ResourceId> = platform
            .sites()
            .iter()
            .map(|s| {
                let capacity = (s.total_cores as f64 * platform.effective_speed(s.id)).max(1.0);
                fluid.add_resource(capacity)
            })
            .collect();
        let sites = platform
            .sites()
            .iter()
            .map(|s| SiteState {
                available_cores: s.total_cores,
                queue: VecDeque::new(),
                running: Vec::new(),
            })
            .collect();
        let caches = platform
            .sites()
            .iter()
            .map(|s| LruCache::new((s.storage_tb * 0.1 * 1e12) as u64))
            .collect();
        let storage = platform
            .sites()
            .iter()
            .map(|s| StorageElement::new(s.name.clone(), (s.storage_tb * 1e12) as u64))
            .collect();
        let site_names = platform.sites().iter().map(|s| s.name.clone()).collect();
        let collector = MonitoringCollector::new(site_names, execution.monitoring.clone());

        let availability = GridAvailability::all_up(&platform);
        // One slot per site plus the main server (see `node_index`).
        let node_count = platform.sites().len() + 1;
        let repair = RepairState::new(&execution.repair, execution.seed, platform.sites().len());

        GridModel {
            rng: Rng::new(execution.seed),
            platform,
            execution,
            policy,
            data_policy,
            jobs,
            sites,
            pending: VecDeque::new(),
            fluid,
            link_resources,
            cpu_resources,
            activity_map: ActivityMap::new(),
            last_fluid_sync: SimTime::ZERO,
            fluid_event: None,
            fluid_done_scratch: Vec::new(),
            route_scratch: Vec::new(),
            catalog: ReplicaCatalog::new(),
            caches,
            storage,
            task_datasets: HashMap::new(),
            collector,
            warned_invalid_policy: false,
            availability,
            fault_plan,
            fault_key,
            transfer_touch: vec![Vec::new(); node_count],
            ckpt_holders: vec![Vec::new(); node_count],
            completed_jobs: 0,
            repair,
            tracer,
            profiler,
        }
    }

    /// Emits one edge (begin/end) of a job-phase span. A single branch when
    /// tracing is off; site resolution and the record only happen once the
    /// category passed the filter.
    #[inline]
    fn trace_phase(
        &mut self,
        time_s: f64,
        idx: usize,
        phase: Phase,
        ph: SpanPhase,
        info: Option<&str>,
    ) {
        let Some(t) = self.tracer.as_mut() else {
            return;
        };
        if !t.wants(phase.trace_cat()) {
            return;
        }
        let site = self.jobs[idx]
            .site
            .map(|s| self.platform.sites()[s.index()].name.as_str());
        t.emit(
            time_s,
            phase.trace_cat(),
            ph,
            phase.trace_kind(),
            Some(self.jobs[idx].record.id.0),
            site,
            info.map(str::to_string),
        );
    }
}

/// The job source a simulation ingests: a materialised trace shared between
/// runs, or a streaming record source consumed incrementally (million-job
/// campaigns never hold a `Vec<JobRecord>`; each record is moved straight
/// into its per-job runtime slot).
enum Workload {
    Materialised(Arc<Trace>),
    Stream(Box<dyn Iterator<Item = JobRecord>>),
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    platform: Option<Platform>,
    trace: Option<Workload>,
    policy: Option<Box<dyn AllocationPolicy>>,
    policy_name: Option<String>,
    registry: PolicyRegistry,
    data_policy: Option<Box<dyn DataMovementPolicy>>,
    data_registry: DataPolicyRegistry,
    execution: ExecutionConfig,
    fault_plan: Option<FaultPlan>,
    trace_sink: Option<(Box<dyn TraceSink>, u32)>,
    profile: bool,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            platform: None,
            trace: None,
            policy: None,
            policy_name: None,
            registry: PolicyRegistry::with_builtins(),
            data_policy: None,
            data_registry: DataPolicyRegistry::with_builtins(),
            execution: ExecutionConfig::default(),
            fault_plan: None,
            trace_sink: None,
            profile: false,
        }
    }
}

impl SimulationBuilder {
    /// Uses an already-built platform.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Builds the platform from a specification.
    pub fn platform_spec(mut self, spec: &PlatformSpec) -> Result<Self, SimulationError> {
        let platform =
            Platform::build(spec).map_err(|e| SimulationError::Platform(e.to_string()))?;
        self.platform = Some(platform);
        Ok(self)
    }

    /// Sets the workload trace.
    ///
    /// Accepts either an owned [`Trace`] or an `Arc<Trace>`: traces shared
    /// between many simulations (sweeps, scenario batches, a long-running
    /// evaluation service) should be passed as `Arc` clones so every run
    /// reads the same immutable job records instead of deep-copying them.
    pub fn trace(mut self, trace: impl Into<Arc<Trace>>) -> Self {
        self.trace = Some(Workload::Materialised(trace.into()));
        self
    }

    /// Sets a **streaming** workload source consumed record by record (e.g.
    /// [`TraceGenerator::stream`](cgsim_workload::TraceGenerator::stream)).
    /// No trace is ever materialised: each record moves straight into its
    /// runtime slot, so peak memory is one record-plus-runtime per job
    /// instead of two.
    ///
    /// Submission events are scheduled in stream order. The engine still
    /// fires them in `submit_time` order, but *simultaneous* submissions tie
    /// break by stream position rather than by sorted-trace position, so a
    /// streamed run is deterministic (same stream → byte-identical results)
    /// yet not guaranteed byte-identical to the equivalent materialised run.
    pub fn trace_stream(mut self, stream: impl Iterator<Item = JobRecord> + 'static) -> Self {
        self.trace = Some(Workload::Stream(Box::new(stream)));
        self
    }

    /// Uses a custom allocation-policy instance (a "plugin").
    pub fn policy(mut self, policy: Box<dyn AllocationPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Selects an allocation policy by registry name (overrides the name in
    /// the execution config).
    pub fn policy_name(mut self, name: impl Into<String>) -> Self {
        self.policy_name = Some(name.into());
        self
    }

    /// Replaces the policy registry (to expose user-registered plugins).
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Uses a custom data-movement policy instance (replica-source selection
    /// and cache admission).
    pub fn data_policy(mut self, policy: Box<dyn DataMovementPolicy>) -> Self {
        self.data_policy = Some(policy);
        self
    }

    /// Replaces the data-movement policy registry (to expose user-registered
    /// data plugins referenced by name in the execution configuration).
    pub fn data_registry(mut self, registry: DataPolicyRegistry) -> Self {
        self.data_registry = registry;
        self
    }

    /// Sets the execution configuration.
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    /// Attaches a fault-injection plan (site outages, link degradation, job
    /// kills) replayed during the run. An empty plan is bit-for-bit
    /// equivalent to attaching none.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a structured-trace sink recording the categories selected by
    /// `mask` (see [`cgsim_obs::parse_filter`]). Tracing never changes the
    /// simulation: the deterministic results are byte-identical with or
    /// without a sink attached.
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>, mask: u32) -> Self {
        self.trace_sink = Some((sink, mask));
        self
    }

    /// Enables wall-clock self-profiling; the report lands in
    /// [`SimulationResults::profile`].
    pub fn profile(mut self, enabled: bool) -> Self {
        self.profile = enabled;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Result<Simulation, SimulationError> {
        let platform = self
            .platform
            .ok_or(SimulationError::MissingComponent("platform"))?;
        let trace = self
            .trace
            .ok_or(SimulationError::MissingComponent("trace"))?;
        let policy = match self.policy {
            Some(p) => p,
            None => {
                let name = self
                    .policy_name
                    .clone()
                    .unwrap_or_else(|| self.execution.allocation_policy.clone());
                self.registry
                    .create(&name, self.execution.seed)
                    .ok_or(SimulationError::UnknownPolicy(name))?
            }
        };
        let data_policy = match self.data_policy {
            Some(p) => p,
            None => {
                let name = self.execution.data_movement_policy.clone();
                self.data_registry
                    .create(&name, self.execution.seed)
                    .ok_or(SimulationError::UnknownDataPolicy(name))?
            }
        };
        Ok(Simulation {
            platform,
            trace,
            policy,
            data_policy,
            execution: self.execution,
            fault_plan: self.fault_plan,
            trace_sink: self.trace_sink,
            profile: self.profile,
        })
    }

    /// Builds and immediately runs the simulation.
    pub fn run(self) -> Result<SimulationResults, SimulationError> {
        Ok(self.build()?.run())
    }
}

/// A fully configured simulation, ready to run.
pub struct Simulation {
    platform: Platform,
    trace: Workload,
    policy: Box<dyn AllocationPolicy>,
    data_policy: Box<dyn DataMovementPolicy>,
    execution: ExecutionConfig,
    fault_plan: Option<FaultPlan>,
    trace_sink: Option<(Box<dyn TraceSink>, u32)>,
    profile: bool,
}

impl Simulation {
    /// Starts building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Executes the simulation to completion and returns the results.
    pub fn run(mut self) -> SimulationResults {
        let started = std::time::Instant::now();
        let policy_name = self.policy.name().to_string();

        // Hand the static grid description to the policy (the paper's
        // getResourceInformation hook).
        let info = GridInfo::from_platform(&self.platform);
        self.policy.get_resource_information(&info);

        let mut engine: Engine<GridEvent> = Engine::new();
        if let Some(horizon) = self.execution.horizon_s {
            engine = engine.with_horizon(SimTime::from_secs(horizon));
        }
        // Ingest the workload: a materialised trace is borrowed record by
        // record (the `Arc` may be shared with other runs), a stream is
        // drained with each record moved into its runtime slot.
        let jobs: Vec<JobRuntime> = match self.trace {
            Workload::Materialised(trace) => trace.jobs.iter().map(JobRuntime::new).collect(),
            Workload::Stream(stream) => stream.map(JobRuntime::from_record).collect(),
        };
        for (idx, job) in jobs.iter().enumerate() {
            engine.schedule_at(
                SimTime::from_secs(job.record.submit_time),
                GridEvent::Submit(idx),
            );
        }

        // Kick off the fault chain: only the first plan event is scheduled
        // up front; each fault schedules its successor, and the chain is cut
        // when the workload completes. An empty plan (or an empty trace)
        // schedules nothing, keeping such runs bit-identical to plan-free
        // ones.
        let fault_events = self.fault_plan.map(|plan| plan.events).unwrap_or_default();
        let fault_key = match fault_events.first() {
            Some(first) if !jobs.is_empty() => {
                Some(engine.schedule_at(SimTime::from_secs(first.time_s), GridEvent::Fault(0)))
            }
            _ => None,
        };

        let tracer = self.trace_sink.map(|(sink, mask)| Tracer::new(sink, mask));
        let profiler = Profiler::new(self.profile);

        let mut model = GridModel::new(
            self.platform,
            jobs,
            self.policy,
            self.data_policy,
            self.execution,
            fault_events,
            fault_key,
            tracer,
            profiler,
        );
        let loop_timer = model.profiler.start();
        let report = engine.run(&mut model);
        model.profiler.stop(Subsystem::EventLoop, loop_timer);

        if let Some(mut tracer) = model.tracer.take() {
            if let Err(e) = tracer.finish() {
                eprintln!("warning: trace sink failed: {e}");
            }
        }
        let profile = if model.profiler.enabled() {
            model
                .profiler
                .add_counter("engine_events", report.events_processed);
            let (fast, slow) = model.fluid.solver_stats();
            model.profiler.add_counter("fluid_fast_solves", fast);
            model.profiler.add_counter("fluid_slow_solves", slow);
            Some(model.profiler.report(&policy_name))
        } else {
            None
        };

        let site_panels = model.site_panels();
        let grid_counters = model.collector.grid_counters();
        model.collector.finish_windows();
        let windows = model
            .collector
            .windows()
            .map(|w| w.windows().cloned().collect())
            .unwrap_or_default();
        let (events, outcomes) = model.collector.into_parts();
        let metrics = MetricsReport::from_outcomes(&outcomes);
        SimulationResults {
            outcomes,
            events,
            metrics,
            makespan_s: report.end_time.as_secs(),
            engine_events: report.events_processed,
            wall_clock_s: started.elapsed().as_secs_f64(),
            site_panels,
            grid_counters,
            policy: policy_name,
            profile,
            windows,
        }
    }
}
