//! Monitoring transitions, terminal outcomes and dashboard panels: the glue
//! between the simulation core and the `cgsim-monitor` output layer.

use cgsim_des::{Context, SimTime};
use cgsim_monitor::dashboard::SitePanel;
use cgsim_monitor::JobOutcome;
use cgsim_obs::{SpanPhase, TraceCategory};
use cgsim_workload::JobState;

use super::events::GridEvent;
use super::GridModel;

impl GridModel {
    /// Reports a job state transition to the monitoring collector.
    pub(super) fn record(&mut self, now: SimTime, idx: usize, state: JobState) {
        let job_id = self.jobs[idx].record.id;
        let (site_index, avail, queued) = match self.jobs[idx].site {
            Some(site) => (
                Some(site.index()),
                self.sites[site.index()].available_cores,
                self.sites[site.index()].queue.len() as u64,
            ),
            None => (None, 0, self.pending.len() as u64),
        };
        self.collector
            .record_transition(now.as_secs(), job_id, state, site_index, avail, queued);
        if let Some(t) = self.tracer.as_mut() {
            if t.wants(TraceCategory::Job) {
                let site = site_index.map(|s| self.platform.sites()[s].name.as_str());
                t.emit(
                    now.as_secs(),
                    TraceCategory::Job,
                    SpanPhase::Instant,
                    &format!("state.{}", state.label()),
                    Some(job_id.0),
                    site,
                    None,
                );
            }
        }
    }

    /// Records the terminal state, outcome, and frees resources, then lets
    /// the site pick up queued work.
    pub(super) fn finalize(
        &mut self,
        idx: usize,
        state: JobState,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        let site = self.finalize_no_restart(idx, state, ctx);
        self.after_release(site, ctx);
    }

    /// The restart-free part of [`finalize`]: terminal bookkeeping without
    /// the `after_release` re-dispatch. The fault-injection paths use this
    /// directly so a kill performed while site capacity is being rewritten
    /// cannot immediately resurrect queued work on stale numbers; callers
    /// run `after_release`/`drain_pending` once their bookkeeping is
    /// consistent. Returns the site the job was at.
    pub(super) fn finalize_no_restart(
        &mut self,
        idx: usize,
        state: JobState,
        ctx: &mut Context<'_, GridEvent>,
    ) -> cgsim_platform::SiteId {
        let now = ctx.now();
        let site = self.jobs[idx].site.expect("terminal job has a site");
        self.release_cores(idx, site);
        // Terminal jobs no longer need their durable checkpoints: free the
        // storage bytes and drop the catalog replicas.
        self.discard_checkpoints(idx);
        self.jobs[idx].state = state;
        self.jobs[idx].end_time = now.as_secs();
        self.record(now, idx, state);

        let job = &self.jobs[idx];
        let site_name = self.platform.site(site).name.clone();
        let outcome = JobOutcome {
            id: job.record.id,
            kind: job.record.kind,
            cores: job.record.cores,
            work_hs23: job.record.work_hs23,
            site: site_name,
            submit_time: job.submit_time,
            assign_time: job.assign_time,
            start_time: job.start_time,
            end_time: job.end_time,
            final_state: state,
            staged_bytes: job.staged_bytes,
            walltime: job.end_time - job.start_time,
            queue_time: job.start_time - job.submit_time,
            hist_walltime: job.record.hist_walltime,
            hist_queue_time: job.record.hist_queue_time,
        };
        self.collector.record_outcome(outcome);

        let view = self.grid_view(now, idx);
        let record = self.jobs[idx].record.clone();
        self.policy.on_job_completed(&record, site, &view);

        // Once the whole workload is terminal, stop the fault-event chain so
        // an attached fault plan cannot keep the engine (and the makespan)
        // alive past the last job.
        self.completed_jobs += 1;
        if self.completed_jobs == self.jobs.len() {
            if let Some(key) = self.fault_key.take() {
                ctx.cancel(key);
            }
            // Same contract for the repair planner: in-flight repairs and
            // backoff timers must not outlive the workload.
            self.shutdown_repairs(ctx);
        }
        site
    }

    /// Builds the final per-site dashboard panels.
    pub(super) fn site_panels(&self) -> Vec<SitePanel> {
        self.platform
            .sites()
            .iter()
            .map(|s| {
                let state = &self.sites[s.id.index()];
                let counters = self.collector.site_counters(s.id.index());
                SitePanel {
                    site: s.name.clone(),
                    total_cores: s.total_cores,
                    busy_cores: s
                        .total_cores
                        .saturating_sub(state.available_cores)
                        .saturating_sub(self.availability.cores_lost(s.id)),
                    queued_jobs: state.queue.len() as u64,
                    running_jobs: state.running.len() as u64,
                    finished_jobs: counters.finished,
                    interrupted_jobs: counters.interrupted,
                    checkpoints: counters.checkpoints,
                    repairs: counters.repairs,
                    up: self.availability.site_up(s.id),
                    running_sample: state
                        .running
                        .iter()
                        .take(10)
                        .map(|&j| (self.jobs[j].record.id.0, self.jobs[j].record.cores))
                        .collect(),
                }
            })
            .collect()
    }
}
