//! Behavioural tests of the simulation façade.

use std::collections::HashMap;

use cgsim_platform::presets::{example_platform, single_site_platform};
use cgsim_platform::{Platform, PlatformSpec, SiteId};
use cgsim_policies::{AllocationPolicy, GridView};
use cgsim_workload::{JobKind, JobRecord, JobState, Trace, TraceConfig, TraceGenerator};

use super::{Simulation, SimulationError};
use crate::config::{ComputeMode, ExecutionConfig};
use crate::queue_model::QueueModel;
use crate::results::SimulationResults;

/// Runs `trace` on `platform` with a named policy and the given execution
/// configuration, panicking on any builder error.
fn run_on(
    platform: &PlatformSpec,
    trace: Trace,
    policy: &str,
    exec: ExecutionConfig,
) -> SimulationResults {
    Simulation::builder()
        .platform_spec(platform)
        .unwrap()
        .trace(trace)
        .policy_name(policy)
        .execution(exec)
        .run()
        .unwrap()
}

fn run_with(policy: &str, jobs: usize, seed: u64) -> SimulationResults {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
    run_on(&platform, trace, policy, ExecutionConfig::default())
}

#[test]
fn all_jobs_reach_a_terminal_state() {
    let results = run_with("least-loaded", 200, 11);
    assert_eq!(results.outcomes.len(), 200);
    assert!(results.outcomes.iter().all(|o| o.final_state.is_terminal()));
    assert_eq!(results.metrics.total_jobs, 200);
    assert_eq!(results.metrics.failed_jobs, 0);
    assert!(results.makespan_s > 0.0);
    assert!(results.engine_events >= 200);
}

#[test]
fn timing_invariants_hold_for_every_job() {
    let results = run_with("least-loaded", 150, 3);
    for o in &results.outcomes {
        assert!(o.assign_time >= o.submit_time - 1e-9, "{o:?}");
        assert!(o.start_time >= o.assign_time - 1e-9, "{o:?}");
        assert!(o.end_time >= o.start_time, "{o:?}");
        assert!(o.walltime > 0.0);
        assert!(o.queue_time >= 0.0);
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = run_with("least-loaded", 100, 7);
    let b = run_with("least-loaded", 100, 7);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.site, y.site);
        assert!((x.walltime - y.walltime).abs() < 1e-9);
        assert!((x.end_time - y.end_time).abs() < 1e-9);
    }
    assert_eq!(a.engine_events, b.engine_events);
}

#[test]
fn different_policies_produce_different_schedules() {
    let a = run_with("least-loaded", 300, 5);
    let b = run_with("round-robin", 300, 5);
    let sites_a: Vec<_> = a.outcomes.iter().map(|o| o.site.clone()).collect();
    let sites_b: Vec<_> = b.outcomes.iter().map(|o| o.site.clone()).collect();
    assert_ne!(sites_a, sites_b);
    assert_eq!(a.policy, "least-loaded");
    assert_eq!(b.policy, "round-robin");
}

#[test]
fn historical_policy_respects_trace_assignments() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(120, 2)).generate(&platform);
    let expected: Vec<_> = trace.jobs.iter().map(|j| j.hist_site.clone()).collect();
    let results = run_on(
        &platform,
        trace,
        "historical-panda",
        ExecutionConfig::default(),
    );
    // Outcomes are not necessarily in submit order; join by job id.
    let by_id: HashMap<_, _> = results
        .outcomes
        .iter()
        .map(|o| (o.id, o.site.clone()))
        .collect();
    let platform_trace = TraceGenerator::new(TraceConfig::with_jobs(120, 2)).generate(&platform);
    for (job, hist) in platform_trace.jobs.iter().zip(expected) {
        assert_eq!(by_id[&job.id], hist);
    }
}

/// Every terminal job must produce a finished event with its site set.
#[test]
fn event_dataset_has_table1_shape() {
    let results = run_with("least-loaded", 50, 13);
    assert!(!results.events.is_empty());
    let finished_events = results
        .events
        .iter()
        .filter(|e| e.state == JobState::Finished)
        .count();
    assert_eq!(finished_events, 50);
    for e in &results.events {
        if e.state == JobState::Finished {
            assert!(!e.site.is_empty());
            assert!(e.assigned_jobs >= e.finished_jobs);
        }
    }
}

#[test]
fn failure_injection_and_retries() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(200, 21)).generate(&platform);
    let exec = ExecutionConfig {
        failure_probability: 0.3,
        max_retries: 0,
        ..Default::default()
    };
    let results = run_on(&platform, trace, "least-loaded", exec.clone());
    assert!(results.metrics.failed_jobs > 20);
    assert!(results.metrics.failure_rate > 0.1);
    assert!(results.metrics.failure_rate < 0.6);
    // With retries allowed, the failure rate drops substantially.
    let trace2 = TraceGenerator::new(TraceConfig::with_jobs(200, 21)).generate(&platform);
    let exec2 = ExecutionConfig {
        max_retries: 3,
        ..exec
    };
    let retried = run_on(&platform, trace2, "least-loaded", exec2);
    assert!(retried.metrics.failure_rate < results.metrics.failure_rate);
    assert_eq!(retried.outcomes.len(), 200);
}

#[test]
fn single_site_contention_causes_queueing() {
    // 40 cores, many concurrent single-core jobs -> some must queue.
    let platform = single_site_platform(40, 10.0);
    let mut cfg = TraceConfig::with_jobs(200, 4);
    cfg.submission_window_s = 0.0; // all at t=0
    cfg.multicore_fraction = 0.0;
    let trace = TraceGenerator::new(cfg).generate(&platform);
    let results = run_on(&platform, trace, "least-loaded", ExecutionConfig::default());
    let queued = results
        .outcomes
        .iter()
        .filter(|o| o.queue_time > 1.0)
        .count();
    assert!(queued > 100, "expected significant queueing, got {queued}");
    // Utilisation of the single site should be high.
    assert!(results.metrics.cpu_utilisation(40) > 0.5);
}

#[test]
fn dataset_caching_reduces_staged_bytes() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(150, 17)).generate(&platform);
    let cached_exec = ExecutionConfig {
        cache_datasets: true,
        ..Default::default()
    };
    let uncached_exec = ExecutionConfig {
        cache_datasets: false,
        ..Default::default()
    };
    let cached = run_on(&platform, trace.clone(), "historical-panda", cached_exec);
    let uncached = run_on(&platform, trace, "historical-panda", uncached_exec);
    assert!(cached.metrics.staged_bytes < uncached.metrics.staged_bytes);
}

#[test]
fn time_shared_mode_completes_all_jobs() {
    let platform = single_site_platform(64, 10.0);
    let mut cfg = TraceConfig::with_jobs(80, 6);
    cfg.multicore_fraction = 0.5;
    let trace = TraceGenerator::new(cfg).generate(&platform);
    let exec = ExecutionConfig {
        compute_mode: ComputeMode::TimeShared,
        ..Default::default()
    };
    let results = run_on(&platform, trace, "least-loaded", exec);
    assert_eq!(results.outcomes.len(), 80);
    assert!(results.outcomes.iter().all(|o| o.succeeded()));
}

#[test]
fn custom_plugin_policy_is_honoured() {
    struct PinToSite(SiteId);
    impl AllocationPolicy for PinToSite {
        fn name(&self) -> &str {
            "pin"
        }
        fn assign_job(&mut self, _job: &JobRecord, _view: &GridView) -> Option<SiteId> {
            Some(self.0)
        }
    }
    let platform_spec = example_platform();
    let platform = Platform::build(&platform_spec).unwrap();
    let bnl = platform.site_by_name("BNL").unwrap();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(60, 19)).generate(&platform_spec);
    let results = Simulation::builder()
        .platform(platform)
        .trace(trace)
        .policy(Box::new(PinToSite(bnl)))
        .execution(ExecutionConfig::default())
        .run()
        .unwrap();
    assert!(results.outcomes.iter().all(|o| o.site == "BNL"));
    assert_eq!(results.policy, "pin");
}

#[test]
fn out_of_range_policy_decision_is_counted_not_hidden() {
    // A buggy plugin that points the first decision for every job at a site
    // far outside the platform, then behaves on re-dispatch (so the run still
    // finishes). The defect must surface in the grid-level monitoring
    // counters instead of masquerading as an overloaded grid.
    struct OffByAMile {
        bogus_sent: bool,
    }
    impl AllocationPolicy for OffByAMile {
        fn name(&self) -> &str {
            "off-by-a-mile"
        }
        fn assign_job(&mut self, _job: &JobRecord, view: &GridView) -> Option<SiteId> {
            if !self.bogus_sent {
                self.bogus_sent = true;
                Some(SiteId::new(9_999))
            } else {
                Some(view.sites[0].site)
            }
        }
    }
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(40, 31)).generate(&platform);
    let results = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy(Box::new(OffByAMile { bogus_sent: false }))
        .execution(ExecutionConfig::default())
        .run()
        .unwrap();
    assert_eq!(results.grid_counters.invalid_policy_decisions, 1);
    // The parked job was re-dispatched once capacity freed up: nothing lost.
    assert_eq!(results.outcomes.len(), 40);
    assert!(results.outcomes.iter().all(|o| o.final_state.is_terminal()));
}

#[test]
fn valid_runs_report_zero_invalid_decisions() {
    let results = run_with("least-loaded", 50, 13);
    assert_eq!(results.grid_counters.invalid_policy_decisions, 0);
}

/// The ISSUE-2 determinism gate: the same 2-site/50-job scenario run twice in
/// one process must produce bit-identical results — makespan, per-job
/// walltimes and the engine event count. This covers the fluid model's slab
/// iteration order (a randomly seeded hash map on the share-recomputation
/// path would fail this test with some probability per run).
#[test]
fn two_site_scenario_is_bit_identical_across_runs() {
    let run_once = |mode: ComputeMode| {
        let platform = cgsim_platform::presets::wlcg_platform(2, 77);
        let mut cfg = TraceConfig::with_jobs(50, 77);
        cfg.mean_file_bytes = 5e8; // meaningful staging traffic over the fluid links
        let trace = TraceGenerator::new(cfg).generate(&platform);
        let exec = ExecutionConfig {
            compute_mode: mode,
            ..Default::default()
        };
        run_on(&platform, trace, "least-loaded", exec)
    };
    for mode in [ComputeMode::DedicatedCores, ComputeMode::TimeShared] {
        let a = run_once(mode);
        let b = run_once(mode);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits(), "{mode:?}");
        assert_eq!(a.engine_events, b.engine_events, "{mode:?}");
        assert_eq!(a.outcomes.len(), 50);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.id, y.id, "{mode:?}");
            assert_eq!(x.site, y.site, "{mode:?}");
            assert_eq!(x.walltime.to_bits(), y.walltime.to_bits(), "{mode:?}");
            assert_eq!(x.queue_time.to_bits(), y.queue_time.to_bits(), "{mode:?}");
            assert_eq!(x.end_time.to_bits(), y.end_time.to_bits(), "{mode:?}");
            assert_eq!(x.staged_bytes, y.staged_bytes, "{mode:?}");
        }
    }
}

#[test]
fn builder_reports_missing_components_and_unknown_policies() {
    let err = Simulation::builder().run().unwrap_err();
    assert!(matches!(err, SimulationError::MissingComponent("platform")));
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(5, 1)).generate(&platform);
    let err = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .policy_name("does-not-exist")
        .run()
        .unwrap_err();
    assert!(matches!(err, SimulationError::UnknownPolicy(_)));
    assert!(err.to_string().contains("does-not-exist"));
}

#[test]
fn horizon_truncates_the_run() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(200, 23)).generate(&platform);
    let exec = ExecutionConfig {
        horizon_s: Some(60.0),
        ..Default::default()
    };
    let results = run_on(&platform, trace, "least-loaded", exec);
    assert!(results.outcomes.len() < 200);
    assert!(results.makespan_s <= 60.0 + 1e-6);
}

#[test]
fn monitoring_can_be_disabled() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(40, 29)).generate(&platform);
    let exec = ExecutionConfig {
        monitoring: cgsim_monitor::MonitoringConfig::disabled(),
        ..Default::default()
    };
    let results = run_on(&platform, trace, "least-loaded", exec);
    assert!(results.events.is_empty());
    assert_eq!(results.outcomes.len(), 40);
}

#[test]
fn queue_model_overhead_delays_job_starts() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(120, 37)).generate(&platform);
    let baseline = run_on(
        &platform,
        trace.clone(),
        "least-loaded",
        ExecutionConfig::default(),
    );
    let exec = ExecutionConfig {
        queue_model: QueueModel::constant(300.0),
        ..Default::default()
    };
    let delayed = run_on(&platform, trace, "least-loaded", exec);
    let mean = |r: &SimulationResults| r.metrics.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0);
    // Every job pays the 300 s pilot overhead on top of core contention.
    assert!(
        mean(&delayed) >= mean(&baseline) + 299.0,
        "queue model ignored: baseline {} vs delayed {}",
        mean(&baseline),
        mean(&delayed)
    );
    assert_eq!(delayed.outcomes.len(), 120);
    assert!(delayed.outcomes.iter().all(|o| o.final_state.is_terminal()));
}

#[test]
fn never_cache_data_policy_stages_more_bytes() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(150, 43)).generate(&platform);
    let never_exec = ExecutionConfig {
        data_movement_policy: "never-cache".to_string(),
        ..Default::default()
    };
    let never = run_on(&platform, trace.clone(), "historical-panda", never_exec);
    let default = run_on(
        &platform,
        trace,
        "historical-panda",
        ExecutionConfig::default(),
    );
    // Without cache admission every job of a task re-stages its input.
    assert!(
        never.metrics.staged_bytes > default.metrics.staged_bytes,
        "never-cache {} vs default {}",
        never.metrics.staged_bytes,
        default.metrics.staged_bytes
    );
}

#[test]
fn unknown_data_policy_is_reported() {
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(5, 3)).generate(&platform);
    let exec = ExecutionConfig {
        data_movement_policy: "no-such-data-policy".to_string(),
        ..Default::default()
    };
    let err = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace)
        .execution(exec)
        .run()
        .unwrap_err();
    assert!(matches!(err, SimulationError::UnknownDataPolicy(_)));
    assert!(err.to_string().contains("no-such-data-policy"));
}

#[test]
fn custom_data_policy_instance_is_honoured() {
    use cgsim_policies::{CachePolicy, DataMovementPolicy};
    struct NoCache;
    impl DataMovementPolicy for NoCache {
        fn name(&self) -> &str {
            "test-no-cache"
        }
        fn cache_decision(&mut self, _job: &JobRecord, _site: SiteId) -> CachePolicy {
            CachePolicy::NoCache
        }
    }
    let platform = example_platform();
    let trace = TraceGenerator::new(TraceConfig::with_jobs(100, 47)).generate(&platform);
    let custom = Simulation::builder()
        .platform_spec(&platform)
        .unwrap()
        .trace(trace.clone())
        .policy_name("historical-panda")
        .data_policy(Box::new(NoCache))
        .execution(ExecutionConfig::default())
        .run()
        .unwrap();
    let default = run_on(
        &platform,
        trace,
        "historical-panda",
        ExecutionConfig::default(),
    );
    assert!(custom.metrics.staged_bytes >= default.metrics.staged_bytes);
}

#[test]
fn multicore_jobs_use_more_cores_of_the_site() {
    let results = run_with("least-loaded", 100, 31);
    assert!(results
        .outcomes
        .iter()
        .any(|o| o.kind == JobKind::MultiCore && o.cores == 8));
    // Dashboard panels reflect the platform.
    assert_eq!(results.site_panels.len(), 4);
    assert!(results.site_panels.iter().all(|p| p.busy_cores == 0));
}
