//! # cgsim-core — the CGSim simulation core
//!
//! This crate is the paper's primary contribution: the layered simulation
//! core that sits between the JSON input layer and the monitoring output
//! layer (paper §3.1–3.2).
//!
//! The architecture mirrors the paper exactly:
//!
//! * the **main server** hosts the *sender* actor: it receives workload
//!   records from the job manager (the trace), consults the allocation
//!   policy plugin for a target site, and either dispatches the job to that
//!   site's queue or parks it in a **pending list** when no suitable
//!   resource exists; pending jobs are reconsidered whenever a resource
//!   frees up,
//! * every **site** runs a *receiver* actor: a FIFO queue in front of the
//!   site's cores; jobs start when enough cores are free, stage their input
//!   over the shared WAN (the fluid network model of `cgsim-des`), execute,
//!   ship their output back, and release their cores,
//! * every state transition is reported to the monitoring collector, which
//!   produces the event-level dataset (Table 1), per-job outcomes and the
//!   metric report.
//!
//! The public entry point is [`Simulation`]: configure it with a platform, a
//! trace, an allocation policy (by name through the registry, or any custom
//! [`cgsim_policies::AllocationPolicy`] implementation) and an
//! [`ExecutionConfig`], then call [`Simulation::run`].
//!
//! ```
//! use cgsim_core::{ExecutionConfig, Simulation};
//! use cgsim_platform::presets::example_platform;
//! use cgsim_workload::{TraceConfig, TraceGenerator};
//!
//! let platform = example_platform();
//! let trace = TraceGenerator::new(TraceConfig::with_jobs(50, 1)).generate(&platform);
//! let results = Simulation::builder()
//!     .platform_spec(&platform)
//!     .unwrap()
//!     .trace(trace)
//!     .policy_name("least-loaded")
//!     .execution(ExecutionConfig::default())
//!     .run()
//!     .unwrap();
//! assert_eq!(results.outcomes.len(), 50);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiment;
pub mod queue_model;
pub mod results;
pub mod scenario;
pub mod simulation;
pub mod sweep;

pub use config::{
    CheckpointConfig, CheckpointTarget, ComputeMode, ExecutionConfig, RepairConfig,
    SimulationConfig,
};
pub use experiment::{compare_policies, compare_policies_faulted, ComparisonReport, ComparisonRow};
pub use queue_model::QueueModel;
pub use results::SimulationResults;
pub use scenario::{
    serve_loop, ResponseCache, ScenarioBase, ScenarioDelta, ScenarioEngine, ScenarioOutcome,
    ScenarioSpec, ServeRequest,
};
pub use simulation::{Simulation, SimulationBuilder, SimulationError};
pub use sweep::{run_sweep, run_sweep_on, sweep_csv, SweepOutcome, SweepPoint, SweepRow};
