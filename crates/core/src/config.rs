//! Execution parameters (the third JSON input file).

use cgsim_data::SourceSelection;
use cgsim_monitor::MonitoringConfig;
use cgsim_platform::PlatformSpec;
use serde::{Deserialize, Serialize};

use crate::queue_model::QueueModel;

/// How CPU cores are shared between jobs at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ComputeMode {
    /// Jobs get dedicated cores (PanDA batch-slot semantics); jobs queue when
    /// no cores are free. This is the mode used by all paper experiments.
    #[default]
    DedicatedCores,
    /// Jobs time-share the site's aggregate capacity through the fluid model
    /// (useful for modelling opportunistic/backfill resources).
    TimeShared,
}

/// Where a job's periodic checkpoints are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CheckpointTarget {
    /// The storage element of the site the job executes at. Writes cross
    /// only the site LAN (cheap), but a site outage or disk loss destroys
    /// the checkpoints together with the site.
    #[default]
    SiteStorage,
    /// The main server's storage. Writes cross the WAN (contending with
    /// staging traffic), but checkpoints survive any site fault.
    MainServer,
}

/// Checkpoint/restart policy: how often executing jobs persist their state,
/// how large that state is, and where it is written.
///
/// Checkpoints are *simulated work*, not free metadata: each write is a
/// fluid-model transfer from the execution site to the target storage,
/// contending with staging traffic. By default checkpointing is synchronous
/// (execution pauses until the write is durable); with `overlap` the write
/// proceeds concurrently with the next execution segment and the job only
/// stalls when the previous write is still in flight at the next boundary.
/// A fault-interrupted job resumes from its newest surviving *durable*
/// checkpoint — re-staging the checkpoint data through the fluid model when
/// it lives at another endpoint — instead of rerunning from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Checkpoint interval in completed-work seconds: a job writes a
    /// checkpoint each time it finishes another `interval_s` seconds of
    /// execution progress. `0` disables checkpointing entirely (the default;
    /// runs are then bit-identical to builds without the feature).
    pub interval_s: f64,
    /// Fixed size of a checkpoint in bytes (state independent of core
    /// count).
    pub base_bytes: u64,
    /// Additional checkpoint bytes per core of the job (per-rank state).
    pub bytes_per_core: u64,
    /// Where checkpoints are written.
    pub target: CheckpointTarget,
    /// Asynchronous checkpointing: when true, a checkpoint write overlaps
    /// the next execution segment instead of pausing the job. The job only
    /// stalls if the previous write is still in flight when it reaches the
    /// next checkpoint boundary. `false` (the default) keeps the original
    /// synchronous write-then-resume behaviour bit-for-bit.
    #[serde(default)]
    pub overlap: bool,
    /// Incremental checkpointing: bytes of *new* state produced per
    /// completed-work second since the previous checkpoint. When non-zero, a
    /// write whose target already holds an older checkpoint of the job ships
    /// only `delta_bytes_per_s × progress-seconds` (capped at the full image
    /// size); the first write to a target always ships the full image, and
    /// restores always re-stage the full image. `0` (the default) disables
    /// deltas and every write ships the full image.
    #[serde(default)]
    pub delta_bytes_per_s: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval_s: 0.0,
            base_bytes: 2_000_000_000,   // 2 GB of application state
            bytes_per_core: 250_000_000, // + 250 MB per rank
            target: CheckpointTarget::SiteStorage,
            overlap: false,
            delta_bytes_per_s: 0,
        }
    }
}

impl CheckpointConfig {
    /// A checkpoint policy writing every `interval_s` completed-work seconds
    /// with the default size model and target.
    pub fn every(interval_s: f64) -> Self {
        CheckpointConfig {
            interval_s,
            ..CheckpointConfig::default()
        }
    }

    /// True when the policy actually checkpoints.
    pub fn enabled(&self) -> bool {
        self.interval_s > 0.0
    }

    /// Checkpoint size for a job of `cores` cores.
    pub fn bytes_for(&self, cores: u32) -> u64 {
        self.base_bytes
            .saturating_add(self.bytes_per_core.saturating_mul(cores as u64))
    }

    /// Bytes actually shipped by a checkpoint write for a job of `cores`
    /// cores that made `progress_s` completed-work seconds since the target
    /// last received a checkpoint of this job. `has_base` says whether the
    /// target holds such an older checkpoint (delta writes need a base
    /// image to apply against). Never exceeds the full image size.
    pub fn transfer_bytes_for(&self, cores: u32, progress_s: f64, has_base: bool) -> u64 {
        let full = self.bytes_for(cores);
        if self.delta_bytes_per_s == 0 || !has_base {
            return full;
        }
        let delta = (self.delta_bytes_per_s as f64 * progress_s.max(0.0)).round() as u64;
        delta.min(full).max(1)
    }
}

/// Fault-aware re-replication policy: after an outage or disk loss evicts
/// replicas, a background repair planner re-establishes them as real fluid
/// transfers (contending with staging and checkpoint traffic on the WAN).
///
/// Disabled by default; a disabled configuration is bit-identical to builds
/// without the feature. Source and destination selection are deterministic
/// (seeded from the master seed), concurrency is bounded, and a repair whose
/// chosen source dies mid-transfer retries with exponential backoff up to
/// `max_retries` times before the deficit is abandoned — graceful
/// degradation, never a livelock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Master switch. `false` (the default) schedules no repair work at all.
    #[serde(default)]
    pub enabled: bool,
    /// Desired number of replicas per task-input dataset (including the
    /// indestructible main-server copy). Deficits below this target trigger
    /// re-replication.
    #[serde(default = "default_repair_target_factor")]
    pub target_factor: u32,
    /// Maximum number of repair transfers in flight at once.
    #[serde(default = "default_repair_max_concurrent")]
    pub max_concurrent: u32,
    /// Base retry backoff in seconds; attempt `n` waits `backoff_s × 2^(n-1)`.
    #[serde(default = "default_repair_backoff_s")]
    pub backoff_s: f64,
    /// How many times a failed repair of one deficit is retried before the
    /// deficit is abandoned.
    #[serde(default = "default_repair_max_retries")]
    pub max_retries: u32,
}

fn default_repair_target_factor() -> u32 {
    2
}

fn default_repair_max_concurrent() -> u32 {
    4
}

fn default_repair_backoff_s() -> f64 {
    300.0
}

fn default_repair_max_retries() -> u32 {
    5
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            enabled: false,
            target_factor: default_repair_target_factor(),
            max_concurrent: default_repair_max_concurrent(),
            backoff_s: default_repair_backoff_s(),
            max_retries: default_repair_max_retries(),
        }
    }
}

impl RepairConfig {
    /// A repair policy enabled with the default knobs.
    pub fn enabled() -> Self {
        RepairConfig {
            enabled: true,
            ..RepairConfig::default()
        }
    }
}

/// Execution parameters: everything about a run that is not the platform or
/// the workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Name of the allocation policy to instantiate from the registry.
    pub allocation_policy: String,
    /// Master RNG seed (failure draws, random policies).
    pub seed: u64,
    /// Probability that a job fails at the end of its execution.
    pub failure_probability: f64,
    /// How many times a failed job is re-submitted before being declared failed.
    pub max_retries: u32,
    /// How many times a fault-interrupted job (site outage, partial node
    /// loss, targeted kill) is resubmitted before being declared failed.
    /// Separate from `max_retries` so operators can study retry budgets for
    /// infrastructure faults independently of application failures.
    #[serde(default = "default_fault_max_retries")]
    pub fault_max_retries: u32,
    /// Checkpoint/restart policy for executing jobs (disabled by default;
    /// absent from configurations written before the feature existed, hence
    /// the serde default).
    #[serde(default)]
    pub checkpoint: CheckpointConfig,
    /// Fault-aware re-replication policy (disabled by default; absent from
    /// configurations written before the feature existed).
    #[serde(default)]
    pub repair: RepairConfig,
    /// Replica-source selection strategy for input staging.
    pub source_selection: SourceSelection,
    /// Name of the data-movement policy to instantiate from the data-policy
    /// registry (replica-source selection and cache admission). The default
    /// policy defers source selection to `source_selection` and always caches.
    #[serde(default = "default_data_movement_policy")]
    pub data_movement_policy: String,
    /// Whether finished jobs ship their output back to the main server.
    pub enable_output_transfers: bool,
    /// Whether staged task datasets are cached (replicated) at the execution
    /// site so later jobs of the same task skip the WAN transfer.
    pub cache_datasets: bool,
    /// Core sharing mode.
    pub compute_mode: ComputeMode,
    /// Scheduling-overhead / contention model applied when a site picks a job
    /// from its queue (paper §4.2 queue-time modeling). Zero by default.
    #[serde(default)]
    pub queue_model: QueueModel,
    /// Monitoring configuration.
    pub monitoring: MonitoringConfig,
    /// Optional virtual-time horizon (seconds); events after it are dropped.
    pub horizon_s: Option<f64>,
}

fn default_data_movement_policy() -> String {
    "default-data-movement".to_string()
}

fn default_fault_max_retries() -> u32 {
    3
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            allocation_policy: "least-loaded".to_string(),
            seed: 1,
            failure_probability: 0.0,
            max_retries: 1,
            fault_max_retries: default_fault_max_retries(),
            checkpoint: CheckpointConfig::default(),
            repair: RepairConfig::default(),
            source_selection: SourceSelection::LowestLatency,
            data_movement_policy: default_data_movement_policy(),
            enable_output_transfers: true,
            cache_datasets: true,
            compute_mode: ComputeMode::DedicatedCores,
            queue_model: QueueModel::default(),
            monitoring: MonitoringConfig::default(),
            horizon_s: None,
        }
    }
}

impl ExecutionConfig {
    /// Convenience constructor selecting a policy by name.
    pub fn with_policy(name: impl Into<String>) -> Self {
        ExecutionConfig {
            allocation_policy: name.into(),
            ..ExecutionConfig::default()
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("execution config serialises")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The full three-part simulation configuration of the paper's input layer:
/// infrastructure + network (both inside [`PlatformSpec`]) and execution
/// parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Platform (infrastructure + network topology).
    pub platform: PlatformSpec,
    /// Execution parameters.
    pub execution: ExecutionConfig,
}

impl SimulationConfig {
    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("simulation config serialises")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Loads a configuration from two JSON files (platform and execution).
    pub fn load(
        platform_path: impl AsRef<std::path::Path>,
        execution_path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let platform = PlatformSpec::load(platform_path)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let execution: ExecutionConfig =
            serde_json::from_str(&std::fs::read_to_string(execution_path)?)?;
        Ok(SimulationConfig {
            platform,
            execution,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;

    #[test]
    fn defaults_are_sane() {
        let cfg = ExecutionConfig::default();
        assert_eq!(cfg.allocation_policy, "least-loaded");
        assert_eq!(cfg.failure_probability, 0.0);
        assert!(cfg.cache_datasets);
        assert_eq!(cfg.compute_mode, ComputeMode::DedicatedCores);
        assert_eq!(cfg.data_movement_policy, "default-data-movement");
        assert!(cfg.queue_model.is_zero());
        assert!(!cfg.checkpoint.enabled());
        assert!(!cfg.checkpoint.overlap);
        assert_eq!(cfg.checkpoint.delta_bytes_per_s, 0);
        assert!(!cfg.repair.enabled);
    }

    #[test]
    fn configs_without_queue_model_or_data_policy_still_parse() {
        // Configuration files written before the queue-time model, the
        // data-movement policy, checkpointing or repair existed must keep
        // loading (serde defaults).
        let mut json: serde_json::Value =
            serde_json::from_str(&ExecutionConfig::default().to_json()).unwrap();
        json.as_object_mut().unwrap().remove("queue_model");
        json.as_object_mut().unwrap().remove("data_movement_policy");
        json.as_object_mut().unwrap().remove("fault_max_retries");
        json.as_object_mut().unwrap().remove("checkpoint");
        json.as_object_mut().unwrap().remove("repair");
        let cfg = ExecutionConfig::from_json(&json.to_string()).unwrap();
        assert!(cfg.queue_model.is_zero());
        assert_eq!(cfg.data_movement_policy, "default-data-movement");
        assert_eq!(cfg.fault_max_retries, 3);
        assert_eq!(cfg.checkpoint, CheckpointConfig::default());
        assert!(!cfg.checkpoint.enabled());
        assert_eq!(cfg.repair, RepairConfig::default());
        assert!(!cfg.repair.enabled);
    }

    #[test]
    fn checkpoint_configs_without_async_fields_still_parse() {
        // Checkpoint blocks written before overlap/delta existed keep
        // loading as synchronous full-image checkpointing.
        let json = r#"{"interval_s": 600.0, "base_bytes": 1000,
                       "bytes_per_core": 10, "target": "SiteStorage"}"#;
        let ck: CheckpointConfig = serde_json::from_str(json).unwrap();
        assert!(!ck.overlap);
        assert_eq!(ck.delta_bytes_per_s, 0);
    }

    #[test]
    fn checkpoint_config_roundtrips_and_sizes() {
        let ck = CheckpointConfig {
            interval_s: 1_800.0,
            base_bytes: 1_000,
            bytes_per_core: 10,
            target: CheckpointTarget::MainServer,
            overlap: true,
            delta_bytes_per_s: 5,
        };
        assert!(ck.enabled());
        assert_eq!(ck.bytes_for(8), 1_080);
        assert!(CheckpointConfig::every(600.0).enabled());
        let cfg = ExecutionConfig {
            checkpoint: ck.clone(),
            ..ExecutionConfig::default()
        };
        let back = ExecutionConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.checkpoint, ck);
    }

    #[test]
    fn delta_checkpoints_cap_at_the_full_image() {
        let ck = CheckpointConfig {
            interval_s: 100.0,
            base_bytes: 1_000,
            bytes_per_core: 0,
            delta_bytes_per_s: 4,
            ..CheckpointConfig::default()
        };
        // No base image at the target -> full image.
        assert_eq!(ck.transfer_bytes_for(1, 100.0, false), 1_000);
        // Base present -> delta bytes, capped at the full image.
        assert_eq!(ck.transfer_bytes_for(1, 100.0, true), 400);
        assert_eq!(ck.transfer_bytes_for(1, 1e9, true), 1_000);
        // Deltas disabled -> always the full image.
        let full = CheckpointConfig {
            delta_bytes_per_s: 0,
            ..ck.clone()
        };
        assert_eq!(full.transfer_bytes_for(1, 100.0, true), 1_000);
    }

    #[test]
    fn repair_config_defaults_and_roundtrip() {
        let off = RepairConfig::default();
        assert!(!off.enabled);
        let on = RepairConfig::enabled();
        assert!(on.enabled);
        assert_eq!(on.target_factor, 2);
        assert_eq!(on.max_concurrent, 4);
        assert_eq!(on.backoff_s, 300.0);
        assert_eq!(on.max_retries, 5);
        let cfg = ExecutionConfig {
            repair: on.clone(),
            ..ExecutionConfig::default()
        };
        let back = ExecutionConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.repair, on);
        // A bare `{"enabled": true}` block fills the remaining knobs.
        let sparse: RepairConfig = serde_json::from_str(r#"{"enabled": true}"#).unwrap();
        assert_eq!(sparse, on);
    }

    #[test]
    fn execution_config_json_roundtrip() {
        let mut cfg = ExecutionConfig::with_policy("round-robin");
        cfg.failure_probability = 0.05;
        cfg.horizon_s = Some(1e6);
        let json = cfg.to_json();
        let back = ExecutionConfig::from_json(&json).unwrap();
        assert_eq!(back.allocation_policy, "round-robin");
        assert_eq!(back.failure_probability, 0.05);
        assert_eq!(back.horizon_s, Some(1e6));
    }

    #[test]
    fn simulation_config_roundtrip_and_file_load() {
        let config = SimulationConfig {
            platform: example_platform(),
            execution: ExecutionConfig::default(),
        };
        let back = SimulationConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back.platform.sites.len(), 4);

        let dir = std::env::temp_dir().join("cgsim-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let platform_path = dir.join("platform.json");
        let exec_path = dir.join("execution.json");
        config.platform.save(&platform_path).unwrap();
        std::fs::write(&exec_path, config.execution.to_json()).unwrap();
        let loaded = SimulationConfig::load(&platform_path, &exec_path).unwrap();
        assert_eq!(loaded.platform.sites.len(), 4);
        assert_eq!(loaded.execution.allocation_policy, "least-loaded");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_fields_are_rejected_gracefully() {
        // Missing required field -> error, not panic.
        assert!(ExecutionConfig::from_json("{\"bogus\": 1}").is_err());
    }
}
