//! Multi-policy experiment driver.
//!
//! The motivation of CGSim is to let operators evaluate scheduling and
//! data-movement policies *before* deploying them on the production grid
//! (paper §1). This module packages the most common experiment shape — run
//! the same platform and workload under several allocation policies and
//! compare the operational metrics — behind one call, so policy studies do
//! not have to re-implement the bookkeeping.

use std::sync::Arc;

use cgsim_faults::FaultPlan;
use cgsim_platform::PlatformSpec;
use cgsim_policies::PolicyRegistry;
use cgsim_workload::Trace;
use serde::{Deserialize, Serialize};

use crate::config::ExecutionConfig;
use crate::scenario::{ScenarioBase, ScenarioEngine, ScenarioSpec};
use crate::simulation::SimulationError;

/// Aggregated metrics of one policy's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Policy name.
    pub policy: String,
    /// Virtual makespan (s).
    pub makespan_s: f64,
    /// Mean queue time (s).
    pub mean_queue_time_s: f64,
    /// 95th percentile queue time (s).
    pub p95_queue_time_s: f64,
    /// Mean walltime (s).
    pub mean_walltime_s: f64,
    /// Failure rate in `[0, 1]`.
    pub failure_rate: f64,
    /// Throughput in finished jobs per simulated hour.
    pub throughput_per_hour: f64,
    /// Bytes staged across the WAN.
    pub staged_bytes: u64,
    /// Whole-site outages applied by fault injection during the run.
    pub site_outages: u64,
    /// Jobs killed mid-flight by fault injection.
    pub interrupted_jobs: u64,
    /// Fault-interrupted jobs that were resubmitted.
    pub fault_retries: u64,
    /// Checkpoints durably written during the run.
    pub checkpoints_written: u64,
    /// Attempts resumed from a durable checkpoint instead of from scratch.
    pub checkpoint_restores: u64,
    /// Durable checkpoints destroyed by site outages or disk losses.
    pub checkpoints_lost: u64,
    /// Execution seconds saved by checkpoint restores.
    pub work_saved_s: f64,
    /// Execution seconds discarded by fault interruptions.
    pub work_lost_s: f64,
    /// Simulator wall-clock cost of the run (s).
    pub wall_clock_s: f64,
}

/// Result of a policy comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// One row per policy, in the order requested.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonReport {
    /// The policy with the smallest makespan.
    pub fn best_by_makespan(&self) -> Option<&ComparisonRow> {
        self.rows.iter().min_by(|a, b| {
            a.makespan_s
                .partial_cmp(&b.makespan_s)
                .expect("makespans are finite")
        })
    }

    /// The policy with the smallest mean queue time.
    pub fn best_by_queue_time(&self) -> Option<&ComparisonRow> {
        self.rows.iter().min_by(|a, b| {
            a.mean_queue_time_s
                .partial_cmp(&b.mean_queue_time_s)
                .expect("queue times are finite")
        })
    }

    /// CSV rendering (one row per policy), including the reliability columns
    /// so faulted policy comparisons show interruption/retry behaviour, not
    /// just makespan.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "policy,makespan_s,mean_queue_time_s,p95_queue_time_s,mean_walltime_s,failure_rate,throughput_per_hour,staged_bytes,site_outages,interrupted_jobs,fault_retries,checkpoints_written,checkpoint_restores,checkpoints_lost,work_saved_s,work_lost_s,wall_clock_s\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.3},{:.3},{:.3},{:.3},{:.4},{:.3},{},{},{},{},{},{},{},{:.3},{:.3},{:.4}\n",
                r.policy,
                r.makespan_s,
                r.mean_queue_time_s,
                r.p95_queue_time_s,
                r.mean_walltime_s,
                r.failure_rate,
                r.throughput_per_hour,
                r.staged_bytes,
                r.site_outages,
                r.interrupted_jobs,
                r.fault_retries,
                r.checkpoints_written,
                r.checkpoint_restores,
                r.checkpoints_lost,
                r.work_saved_s,
                r.work_lost_s,
                r.wall_clock_s
            ));
        }
        out
    }
}

/// Runs the same platform + trace under each named policy.
///
/// Custom plugins are supported by passing a registry that has them
/// registered; the execution configuration (seed, failure model, data
/// movement, monitoring) is shared by all runs so the comparison is fair.
pub fn compare_policies(
    platform: &PlatformSpec,
    trace: &Trace,
    policies: &[&str],
    execution: &ExecutionConfig,
    registry: &PolicyRegistry,
) -> Result<ComparisonReport, SimulationError> {
    compare_policies_faulted(platform, trace, policies, execution, registry, None)
}

/// [`compare_policies`] under fault injection: every policy runs against the
/// *same* fault plan, so the reliability columns (outages, interruptions,
/// fault retries) isolate how each policy copes with identical churn.
pub fn compare_policies_faulted(
    platform: &PlatformSpec,
    trace: &Trace,
    policies: &[&str],
    execution: &ExecutionConfig,
    registry: &PolicyRegistry,
    fault_plan: Option<&FaultPlan>,
) -> Result<ComparisonReport, SimulationError> {
    // One shared base (a single copy of the platform and trace, however many
    // policies run against it) and one Arc'ed fault plan: the per-policy
    // deltas are just the execution config's policy name.
    let engine = ScenarioEngine::with_registry(registry.clone());
    let base = ScenarioBase::shared(platform.clone(), trace.clone());
    let fault_plan: Option<Arc<FaultPlan>> = fault_plan.map(|plan| Arc::new(plan.clone()));
    let specs: Vec<ScenarioSpec> = policies
        .iter()
        .map(|&policy| {
            let mut run_execution = execution.clone();
            run_execution.allocation_policy = policy.to_string();
            let mut spec = ScenarioSpec::new(base.clone(), run_execution);
            if let Some(plan) = &fault_plan {
                spec = spec.with_fault_plan(plan.clone());
            }
            spec
        })
        .collect();

    let mut rows = Vec::with_capacity(policies.len());
    for (outcome, &policy) in engine.evaluate_batch(&specs).into_iter().zip(policies) {
        let outcome = outcome?;
        let results = &outcome.results;
        let metrics = &results.metrics;
        rows.push(ComparisonRow {
            policy: policy.to_string(),
            makespan_s: metrics.makespan_s,
            mean_queue_time_s: metrics.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0),
            p95_queue_time_s: metrics.queue_time.as_ref().map(|s| s.p95).unwrap_or(0.0),
            mean_walltime_s: metrics.walltime.as_ref().map(|s| s.mean).unwrap_or(0.0),
            failure_rate: metrics.failure_rate,
            throughput_per_hour: metrics.throughput_per_hour,
            staged_bytes: metrics.staged_bytes,
            site_outages: results.grid_counters.site_outages,
            interrupted_jobs: results.grid_counters.job_interruptions,
            fault_retries: results.grid_counters.fault_retries,
            checkpoints_written: results.grid_counters.checkpoints_written,
            checkpoint_restores: results.grid_counters.checkpoint_restores,
            checkpoints_lost: results.grid_counters.checkpoints_lost,
            work_saved_s: results.grid_counters.work_saved_s,
            work_lost_s: results.grid_counters.work_lost_s,
            wall_clock_s: results.wall_clock_s,
        });
    }
    Ok(ComparisonReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn setup() -> (PlatformSpec, Trace) {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(120, 91)).generate(&platform);
        (platform, trace)
    }

    #[test]
    fn compares_multiple_policies_fairly() {
        let (platform, trace) = setup();
        let registry = PolicyRegistry::with_builtins();
        let report = compare_policies(
            &platform,
            &trace,
            &["least-loaded", "round-robin", "random"],
            &ExecutionConfig::default(),
            &registry,
        )
        .unwrap();
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.makespan_s > 0.0);
            assert!(row.mean_walltime_s > 0.0);
            assert_eq!(row.failure_rate, 0.0);
        }
        let best = report.best_by_makespan().unwrap();
        assert!(report.rows.iter().all(|r| r.makespan_s >= best.makespan_s));
        assert!(report.best_by_queue_time().is_some());
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("round-robin"));
    }

    #[test]
    fn unknown_policy_is_an_error() {
        let (platform, trace) = setup();
        let registry = PolicyRegistry::with_builtins();
        let err = compare_policies(
            &platform,
            &trace,
            &["nope"],
            &ExecutionConfig::default(),
            &registry,
        )
        .unwrap_err();
        assert!(matches!(err, SimulationError::UnknownPolicy(_)));
    }

    #[test]
    fn custom_plugins_participate_in_comparisons() {
        use cgsim_platform::SiteId;
        use cgsim_policies::{AllocationPolicy, GridView};
        use cgsim_workload::JobRecord;

        struct PinFirst;
        impl AllocationPolicy for PinFirst {
            fn name(&self) -> &str {
                "pin-first"
            }
            fn assign_job(&mut self, _job: &JobRecord, _view: &GridView) -> Option<SiteId> {
                Some(SiteId::new(0))
            }
        }

        let (platform, trace) = setup();
        let mut registry = PolicyRegistry::with_builtins();
        registry.register("pin-first", |_| Box::new(PinFirst));
        let report = compare_policies(
            &platform,
            &trace,
            &["pin-first", "least-loaded"],
            &ExecutionConfig::default(),
            &registry,
        )
        .unwrap();
        assert_eq!(report.rows[0].policy, "pin-first");
        // Pinning everything to one site cannot beat load balancing on makespan.
        assert!(report.rows[0].makespan_s >= report.rows[1].makespan_s);
    }
}
