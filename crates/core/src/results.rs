//! Simulation results and derived analyses.

use std::collections::BTreeMap;

use cgsim_des::stats::relative_mae;
use cgsim_monitor::dashboard::SitePanel;
use cgsim_monitor::{EventRecord, JobOutcome, MetricsReport, TableStore};
use cgsim_workload::JobKind;
use serde::{Deserialize, Serialize};

/// Relative walltime error of one site, split by job class (the per-site
/// quantity plotted in the paper's Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SiteWalltimeError {
    /// Relative MAE over single-core jobs (`None` when the site ran none).
    pub single_core: Option<f64>,
    /// Relative MAE over multi-core jobs (`None` when the site ran none).
    pub multi_core: Option<f64>,
    /// Relative MAE over all jobs with ground truth.
    pub overall: f64,
    /// Number of jobs with ground truth used.
    pub jobs: usize,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationResults {
    /// Per-job outcomes.
    pub outcomes: Vec<JobOutcome>,
    /// Event-level monitoring dataset (Table 1 rows).
    pub events: Vec<EventRecord>,
    /// Aggregated operational metrics.
    pub metrics: MetricsReport,
    /// Virtual time at which the last event was processed (seconds).
    pub makespan_s: f64,
    /// Number of discrete events processed by the engine.
    pub engine_events: u64,
    /// Wall-clock runtime of the simulation itself (seconds) — the quantity
    /// reported by the scalability experiments (Fig. 4).
    pub wall_clock_s: f64,
    /// Final per-site dashboard panels.
    pub site_panels: Vec<SitePanel>,
    /// Grid-level anomaly counters (e.g. invalid policy decisions).
    pub grid_counters: cgsim_monitor::GridCounters,
    /// Name of the allocation policy used.
    pub policy: String,
    /// Self-profiling report (`None` unless profiling was requested).
    /// Wall-clock data lives here and in the separate `profile.json` the CLI
    /// writes — never in [`SimulationResults::deterministic_json`].
    #[serde(default)]
    pub profile: Option<cgsim_obs::ProfileReport>,
    /// Windowed metrics (empty unless `MonitoringConfig::window_s` enabled
    /// them): per-window site/grid counter snapshots, bounded by the
    /// configured ring capacity.
    #[serde(default)]
    pub windows: Vec<cgsim_monitor::WindowSnapshot>,
}

impl SimulationResults {
    /// Per-site relative walltime error against the trace ground truth.
    pub fn walltime_error_by_site(&self) -> BTreeMap<String, SiteWalltimeError> {
        let mut grouped: BTreeMap<String, Vec<&JobOutcome>> = BTreeMap::new();
        for o in &self.outcomes {
            if o.hist_walltime.is_some() {
                grouped.entry(o.site.clone()).or_default().push(o);
            }
        }
        grouped
            .into_iter()
            .map(|(site, jobs)| {
                let split = |kind: JobKind| {
                    let (sim, truth): (Vec<f64>, Vec<f64>) = jobs
                        .iter()
                        .filter(|o| o.kind == kind)
                        .map(|o| (o.walltime, o.hist_walltime.expect("filtered")))
                        .unzip();
                    if sim.is_empty() {
                        None
                    } else {
                        Some(relative_mae(&sim, &truth))
                    }
                };
                let (sim_all, truth_all): (Vec<f64>, Vec<f64>) = jobs
                    .iter()
                    .map(|o| (o.walltime, o.hist_walltime.expect("filtered")))
                    .unzip();
                (
                    site,
                    SiteWalltimeError {
                        single_core: split(JobKind::SingleCore),
                        multi_core: split(JobKind::MultiCore),
                        overall: relative_mae(&sim_all, &truth_all),
                        jobs: jobs.len(),
                    },
                )
            })
            .collect()
    }

    /// Geometric mean of the per-site overall relative walltime error — the
    /// headline calibration number of Fig. 3 (76 % before, 17 % after).
    pub fn geometric_mean_walltime_error(&self) -> Option<f64> {
        let per_site = self.walltime_error_by_site();
        let errors: Vec<f64> = per_site.values().map(|e| e.overall.max(1e-6)).collect();
        if errors.is_empty() {
            None
        } else {
            Some(cgsim_des::stats::geometric_mean(&errors))
        }
    }

    /// Exports the run into the table store (the paper's SQLite/CSV output
    /// layer): `events`, `jobs` and `site_summary` tables.
    pub fn to_table_store(&self) -> TableStore {
        let mut store = TableStore::new();
        {
            let t = store.table(
                "events",
                &[
                    "event_id",
                    "time_s",
                    "job_id",
                    "state",
                    "site",
                    "available_cores",
                    "pending_jobs",
                    "assigned_jobs",
                    "finished_jobs",
                ],
            );
            for e in &self.events {
                t.push_row(vec![
                    e.event_id.into(),
                    e.time_s.into(),
                    e.job_id.0.into(),
                    e.state.label().into(),
                    e.site.clone().into(),
                    e.available_cores.into(),
                    e.pending_jobs.into(),
                    e.assigned_jobs.into(),
                    e.finished_jobs.into(),
                ]);
            }
        }
        {
            let t = store.table(
                "jobs",
                &[
                    "job_id",
                    "kind",
                    "cores",
                    "site",
                    "submit_time",
                    "queue_time",
                    "walltime",
                    "final_state",
                    "staged_bytes",
                ],
            );
            for o in &self.outcomes {
                t.push_row(vec![
                    o.id.0.into(),
                    o.kind.label().into(),
                    (o.cores as u64).into(),
                    o.site.clone().into(),
                    o.submit_time.into(),
                    o.queue_time.into(),
                    o.walltime.into(),
                    o.final_state.label().into(),
                    o.staged_bytes.into(),
                ]);
            }
        }
        {
            let t = store.table(
                "site_summary",
                &[
                    "site",
                    "finished_jobs",
                    "failed_jobs",
                    "failure_rate",
                    "mean_queue_time",
                    "mean_walltime",
                    "core_seconds",
                ],
            );
            for (name, m) in &self.metrics.per_site {
                t.push_row(vec![
                    name.clone().into(),
                    m.finished_jobs.into(),
                    m.failed_jobs.into(),
                    m.failure_rate.into(),
                    m.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0).into(),
                    m.walltime.as_ref().map(|s| s.mean).unwrap_or(0.0).into(),
                    m.core_seconds.into(),
                ]);
            }
        }
        store
    }

    /// Serialises the deterministic subset of the results — everything except
    /// the wall-clock measurement — as pretty-printed JSON. Two runs of the
    /// same scenario must produce byte-identical output here; the CI
    /// determinism gate runs the CLI twice and diffs this file.
    pub fn deterministic_json(&self) -> String {
        #[derive(Serialize)]
        struct Deterministic {
            policy: String,
            makespan_s: f64,
            engine_events: u64,
            grid_counters: cgsim_monitor::GridCounters,
            metrics: MetricsReport,
        }
        serde_json::to_string_pretty(&Deterministic {
            policy: self.policy.clone(),
            makespan_s: self.makespan_s,
            engine_events: self.engine_events,
            grid_counters: self.grid_counters,
            metrics: self.metrics.clone(),
        })
        .expect("simulation results serialise")
    }

    /// Renders the final dashboard as ASCII.
    pub fn ascii_dashboard(&self) -> String {
        cgsim_monitor::dashboard::ascii_dashboard(self.makespan_s, &self.site_panels)
    }

    /// Renders the final dashboard as a self-contained HTML page.
    pub fn html_dashboard(&self) -> String {
        cgsim_monitor::dashboard::html_dashboard(self.makespan_s, &self.site_panels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_workload::{JobId, JobState};

    fn outcome(id: u64, site: &str, kind: JobKind, sim: f64, truth: f64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            kind,
            cores: if kind == JobKind::MultiCore { 8 } else { 1 },
            work_hs23: sim * 10.0,
            site: site.into(),
            submit_time: 0.0,
            assign_time: 1.0,
            start_time: 2.0,
            end_time: 2.0 + sim,
            final_state: JobState::Finished,
            staged_bytes: 100,
            walltime: sim,
            queue_time: 2.0,
            hist_walltime: Some(truth),
            hist_queue_time: Some(1.0),
        }
    }

    fn results(outcomes: Vec<JobOutcome>) -> SimulationResults {
        let metrics = MetricsReport::from_outcomes(&outcomes);
        SimulationResults {
            outcomes,
            events: Vec::new(),
            metrics,
            makespan_s: 100.0,
            engine_events: 10,
            wall_clock_s: 0.01,
            site_panels: Vec::new(),
            grid_counters: cgsim_monitor::GridCounters::default(),
            policy: "test".into(),
            profile: None,
            windows: Vec::new(),
        }
    }

    #[test]
    fn walltime_error_splits_by_site_and_kind() {
        let r = results(vec![
            outcome(1, "A", JobKind::SingleCore, 110.0, 100.0), // 10% error
            outcome(2, "A", JobKind::MultiCore, 80.0, 100.0),   // 20% error
            outcome(3, "B", JobKind::SingleCore, 100.0, 100.0), // exact
        ]);
        let errs = r.walltime_error_by_site();
        assert_eq!(errs.len(), 2);
        let a = &errs["A"];
        assert!((a.single_core.unwrap() - 0.1).abs() < 1e-9);
        assert!((a.multi_core.unwrap() - 0.2).abs() < 1e-9);
        assert!((a.overall - 0.15).abs() < 1e-9);
        assert_eq!(a.jobs, 2);
        let b = &errs["B"];
        assert_eq!(b.multi_core, None);
        assert!(b.overall < 1e-9);
    }

    #[test]
    fn geometric_mean_error_aggregates_sites() {
        let r = results(vec![
            outcome(1, "A", JobKind::SingleCore, 200.0, 100.0), // 100% error
            outcome(2, "B", JobKind::SingleCore, 101.0, 100.0), // 1% error
        ]);
        let gm = r.geometric_mean_walltime_error().unwrap();
        assert!((gm - (1.0f64 * 0.01).sqrt()).abs() < 1e-9);
        assert!(results(vec![]).geometric_mean_walltime_error().is_none());
    }

    #[test]
    fn table_store_export_contains_all_tables() {
        let r = results(vec![outcome(1, "A", JobKind::SingleCore, 10.0, 10.0)]);
        let store = r.to_table_store();
        assert_eq!(store.table_names(), vec!["events", "jobs", "site_summary"]);
        assert_eq!(store.get("jobs").unwrap().len(), 1);
        assert_eq!(store.get("site_summary").unwrap().len(), 1);
    }

    #[test]
    fn dashboards_render() {
        let r = results(vec![outcome(1, "A", JobKind::SingleCore, 10.0, 10.0)]);
        assert!(r.ascii_dashboard().contains("CGSim dashboard"));
        assert!(r.html_dashboard().contains("<!DOCTYPE html>"));
    }
}
