//! Queue-time model: scheduling overhead and resource-contention delays.
//!
//! The paper extends the walltime calibration methodology "to queue time
//! modeling, incorporating scheduling overhead and resource contention
//! effects to achieve comprehensive job lifecycle accuracy" (§4.2). In the
//! real grid a job that is dispatched to a site does not start the moment
//! cores are free: the batch system has to match it, a pilot has to claim it
//! and the payload has to bootstrap. This module models that gap as a
//! per-site dispatch delay
//!
//! ```text
//! delay = base_overhead_s
//!       + per_queued_job_s × (jobs ahead in the site queue)
//!       + contention_coeff × base_overhead_s × (busy-core fraction)
//! ```
//!
//! The three coefficients are per-site calibration parameters (see
//! `cgsim-calibrate`'s queue-time objective); with the default configuration
//! every coefficient is zero and the simulation behaves exactly as before —
//! queue time then comes only from waiting for free cores.

use serde::{Deserialize, Serialize};

/// Per-site (or grid-wide) queue-delay coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct QueueModel {
    /// Fixed scheduling overhead applied to every job start (seconds).
    pub base_overhead_s: f64,
    /// Additional delay per job already queued at the site when this job is
    /// picked (seconds per job) — models batch-system matching cost.
    pub per_queued_job_s: f64,
    /// Contention coefficient: the base overhead is inflated by
    /// `contention_coeff × busy_fraction`, so a saturated site dispatches
    /// more slowly than an idle one.
    pub contention_coeff: f64,
}

impl QueueModel {
    /// A model with no scheduling overhead (the default).
    pub fn none() -> Self {
        QueueModel::default()
    }

    /// A convenience constructor with only a fixed overhead.
    pub fn constant(base_overhead_s: f64) -> Self {
        QueueModel {
            base_overhead_s,
            per_queued_job_s: 0.0,
            contention_coeff: 0.0,
        }
    }

    /// True when the model adds no delay at all.
    pub fn is_zero(&self) -> bool {
        self.base_overhead_s <= 0.0 && self.per_queued_job_s <= 0.0 && self.contention_coeff <= 0.0
    }

    /// Dispatch delay for a job picked from a site whose queue currently
    /// holds `queued_jobs` other jobs and whose cores are `busy_fraction`
    /// (in `[0, 1]`) occupied.
    pub fn dispatch_delay(&self, queued_jobs: u64, busy_fraction: f64) -> f64 {
        debug_assert!(
            (0.0..=1.0 + 1e-9).contains(&busy_fraction),
            "busy fraction must be in [0, 1]"
        );
        let contention =
            self.contention_coeff * self.base_overhead_s * busy_fraction.clamp(0.0, 1.0);
        (self.base_overhead_s + self.per_queued_job_s * queued_jobs as f64 + contention).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_adds_no_delay() {
        let m = QueueModel::default();
        assert!(m.is_zero());
        assert_eq!(m.dispatch_delay(0, 0.0), 0.0);
        assert_eq!(m.dispatch_delay(100, 1.0), 0.0);
        assert_eq!(QueueModel::none(), QueueModel::default());
    }

    #[test]
    fn constant_overhead_is_independent_of_load() {
        let m = QueueModel::constant(300.0);
        assert!(!m.is_zero());
        assert_eq!(m.dispatch_delay(0, 0.0), 300.0);
        assert_eq!(m.dispatch_delay(50, 1.0), 300.0);
    }

    #[test]
    fn queue_depth_and_contention_increase_the_delay() {
        let m = QueueModel {
            base_overhead_s: 100.0,
            per_queued_job_s: 2.0,
            contention_coeff: 0.5,
        };
        let idle = m.dispatch_delay(0, 0.0);
        let deep_queue = m.dispatch_delay(10, 0.0);
        let saturated = m.dispatch_delay(10, 1.0);
        assert_eq!(idle, 100.0);
        assert_eq!(deep_queue, 120.0);
        assert_eq!(saturated, 170.0);
        assert!(idle < deep_queue && deep_queue < saturated);
    }

    #[test]
    fn busy_fraction_is_clamped_and_delay_never_negative() {
        let m = QueueModel {
            base_overhead_s: -50.0,
            per_queued_job_s: 0.0,
            contention_coeff: 0.0,
        };
        assert_eq!(m.dispatch_delay(0, 0.0), 0.0);
        let m = QueueModel {
            base_overhead_s: 10.0,
            per_queued_job_s: 0.0,
            contention_coeff: 1.0,
        };
        // busy fraction slightly above 1 (floating accumulation) is tolerated.
        assert!((m.dispatch_delay(0, 1.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let m = QueueModel {
            base_overhead_s: 12.0,
            per_queued_job_s: 0.5,
            contention_coeff: 0.25,
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: QueueModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
