//! Canonical, process-stable hashing of serialisable values.
//!
//! The scenario response cache keys on a hash that must be identical for
//! *equivalent* scenarios however they were expressed — built in code, parsed
//! from a JSONL request, or round-tripped through JSON with the object keys
//! in a different order — and must be stable across processes and server
//! restarts (std's default `Hasher` is SipHash with a per-process random key,
//! so it cannot be used). The canonical form is defined on the serde value
//! tree:
//!
//! * object keys are hashed in sorted order (insertion order is irrelevant),
//! * entries whose value is `null` are dropped (an absent optional field and
//!   an explicit `null` are the same scenario),
//! * every node is prefixed with a type tag, and strings/containers with
//!   their length, so concatenation ambiguities cannot collide trivially,
//! * numbers hash by variant: integers as their 64-bit value, floats by IEEE
//!   bit pattern (the JSON shim preserves the integer/float distinction
//!   through text round-trips by always printing floats with a fractional
//!   part).
//!
//! The hash itself is 64-bit FNV-1a: tiny, dependency-free and fully
//! deterministic.

use serde_json::{Number, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into the running FNV-1a state `h`.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn tag(h: u64, t: u8) -> u64 {
    fnv1a(h, &[t])
}

/// Canonical hash of a serialisable value (see the module docs for the
/// canonical form).
pub fn canonical_hash_of<T: serde::Serialize + ?Sized>(value: &T) -> u64 {
    let tree = serde_json::to_value(value).expect("shim serialisation is infallible");
    canonical_value_hash(&tree)
}

/// Canonical hash of a JSON value tree.
pub fn canonical_value_hash(value: &Value) -> u64 {
    hash_value(FNV_OFFSET, value)
}

/// Folds `value` into the running FNV-1a state `h` in canonical form.
pub fn hash_value(mut h: u64, value: &Value) -> u64 {
    match value {
        Value::Null => tag(h, 0),
        Value::Bool(b) => fnv1a(tag(h, 1), &[*b as u8]),
        Value::Number(n) => match n {
            // Non-negative integers always parse as `UInt`, but normalise
            // anyway so a hand-built `Int(3)` and a parsed `UInt(3)` agree.
            Number::Int(i) if *i >= 0 => fnv1a(tag(h, 2), &(*i as u64).to_le_bytes()),
            Number::UInt(u) => fnv1a(tag(h, 2), &u.to_le_bytes()),
            Number::Int(i) => fnv1a(tag(h, 3), &i.to_le_bytes()),
            Number::Float(f) => fnv1a(tag(h, 4), &f.to_bits().to_le_bytes()),
        },
        Value::String(s) => {
            h = fnv1a(tag(h, 5), &(s.len() as u64).to_le_bytes());
            fnv1a(h, s.as_bytes())
        }
        Value::Array(items) => {
            h = fnv1a(tag(h, 6), &(items.len() as u64).to_le_bytes());
            for item in items {
                h = hash_value(h, item);
            }
            h
        }
        Value::Object(map) => {
            let mut entries: Vec<(&String, &Value)> =
                map.iter().filter(|(_, v)| !v.is_null()).collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            h = fnv1a(tag(h, 7), &(entries.len() as u64).to_le_bytes());
            for (key, item) in entries {
                h = fnv1a(h, &(key.len() as u64).to_le_bytes());
                h = fnv1a(h, key.as_bytes());
                h = hash_value(h, item);
            }
            h
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Map;

    fn obj(entries: &[(&str, Value)]) -> Value {
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert((*k).to_string(), v.clone());
        }
        Value::Object(map)
    }

    #[test]
    fn key_order_is_irrelevant() {
        let a = obj(&[
            ("x", Value::Number(Number::UInt(1))),
            ("y", Value::String("s".into())),
        ]);
        let b = obj(&[
            ("y", Value::String("s".into())),
            ("x", Value::Number(Number::UInt(1))),
        ]);
        assert_eq!(canonical_value_hash(&a), canonical_value_hash(&b));
    }

    #[test]
    fn null_entries_match_absent_entries() {
        let explicit = obj(&[("x", Value::Number(Number::UInt(1))), ("opt", Value::Null)]);
        let absent = obj(&[("x", Value::Number(Number::UInt(1)))]);
        assert_eq!(
            canonical_value_hash(&explicit),
            canonical_value_hash(&absent)
        );
    }

    #[test]
    fn distinct_values_hash_differently() {
        let base = obj(&[("seed", Value::Number(Number::UInt(1)))]);
        let other = obj(&[("seed", Value::Number(Number::UInt(2)))]);
        assert_ne!(canonical_value_hash(&base), canonical_value_hash(&other));
        // Type confusion: string "1" vs number 1 vs bool true.
        assert_ne!(
            canonical_value_hash(&Value::String("1".into())),
            canonical_value_hash(&Value::Number(Number::UInt(1)))
        );
        assert_ne!(
            canonical_value_hash(&Value::Bool(true)),
            canonical_value_hash(&Value::Number(Number::UInt(1)))
        );
    }

    #[test]
    fn text_round_trip_is_hash_stable() {
        let v = obj(&[
            ("f", Value::Number(Number::Float(2.0))),
            ("u", Value::Number(Number::UInt(2))),
            (
                "nested",
                obj(&[("a", Value::Array(vec![Value::Bool(false)]))]),
            ),
        ]);
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(canonical_value_hash(&v), canonical_value_hash(&back));
        // The float kept its fractional form, so it did not collapse into the
        // integer 2 (which hashes differently).
        assert_ne!(
            canonical_value_hash(v.get("f").unwrap()),
            canonical_value_hash(v.get("u").unwrap())
        );
    }

    #[test]
    fn known_vector_pins_the_hash_across_releases() {
        // Cache keys may be persisted by operators (e.g. mapping saved
        // results.json files back to scenarios); changing the canonical form
        // is a breaking change and must show up as a test failure.
        assert_eq!(
            fnv1a(0xcbf2_9ce4_8422_2325, b"cgsim"),
            0xeeb3_b14c_d768_b63e
        );
    }
}
