//! Scenarios: immutable shared base state + cheap per-run deltas.
//!
//! The ROADMAP's "millions of users" north star reads as many concurrent
//! what-if queries — *which allocation policy? which fault spec? which
//! checkpoint interval? which seed?* — against a handful of shared grid
//! topologies and traces. This module is the evaluation path for that shape:
//!
//! * [`ScenarioBase`] — the expensive, immutable part of a run (platform
//!   spec + workload trace), held behind `Arc` and content-hashed once so a
//!   thousand scenarios share one copy,
//! * [`ScenarioSpec`] — one runnable scenario: a base reference plus the
//!   cheap deltas (execution config, `--faults` spec text, fault seed, or an
//!   explicit pre-generated plan),
//! * [`ScenarioDelta`] — the serialisable delta shape used by the JSONL
//!   `cgsim serve` protocol: every field optional, resolved against the
//!   server's base execution config,
//! * [`ScenarioEngine`] — batch evaluation over the self-scheduling worker
//!   pool with exact response memoisation ([`ResponseCache`]),
//! * [`serve`] — the long-running JSONL request/response loop behind
//!   `cgsim serve`.
//!
//! Memoisation is *exact* because every run is bit-for-bit deterministic
//! (pinned by the CI determinism gates): the canonical hash of a spec fully
//! determines the deterministic subset of [`SimulationResults`]. Equivalent
//! scenarios must therefore hash identically however they are spelled —
//! see [`hash`] for the canonical form, and the normalisations below for
//! fault plans (an empty plan, an empty spec string and no plan at all are
//! one scenario; the fault seed only matters when a fault spec is present).

pub mod cache;
pub mod engine;
pub mod hash;
pub mod serve;

use std::sync::Arc;

use cgsim_faults::{parse_fault_spec, FaultPlan, FaultTopology};
use cgsim_platform::{Platform, PlatformSpec};
use cgsim_workload::Trace;
use serde::{Deserialize, Serialize};

use crate::config::{CheckpointConfig, ExecutionConfig, RepairConfig};
use crate::simulation::SimulationError;

pub use cache::ResponseCache;
pub use engine::{ScenarioEngine, ScenarioOutcome, DEFAULT_CACHE_CAPACITY};
pub use serve::{serve_loop, ServeRequest};

/// The fault seed used when none is specified (the CLI's `--fault-seed`
/// default).
pub const DEFAULT_FAULT_SEED: u64 = 7;

/// The immutable, shareable part of a scenario: platform + trace.
///
/// Both components live behind `Arc` — constructing scenarios, fanning a
/// sweep out over worker threads and caching responses all share the same
/// allocation. The content hashes are computed once here so hashing a
/// [`ScenarioSpec`] never re-serialises the (potentially huge) trace.
#[derive(Debug, Clone)]
pub struct ScenarioBase {
    platform: Arc<PlatformSpec>,
    trace: Arc<Trace>,
    platform_hash: u64,
    trace_hash: u64,
}

impl ScenarioBase {
    /// Builds a base from a platform and a trace (owned values or `Arc`s).
    pub fn new(platform: impl Into<Arc<PlatformSpec>>, trace: impl Into<Arc<Trace>>) -> Self {
        let platform = platform.into();
        let trace = trace.into();
        let platform_hash = hash::canonical_hash_of(&*platform);
        let trace_hash = hash::canonical_hash_of(&*trace);
        ScenarioBase {
            platform,
            trace,
            platform_hash,
            trace_hash,
        }
    }

    /// [`ScenarioBase::new`], already wrapped for sharing.
    pub fn shared(
        platform: impl Into<Arc<PlatformSpec>>,
        trace: impl Into<Arc<Trace>>,
    ) -> Arc<Self> {
        Arc::new(ScenarioBase::new(platform, trace))
    }

    /// A base with a different platform but the same trace. Only the
    /// platform hash is recomputed; the trace (and its hash) are reused —
    /// this is the calibration path, which re-evaluates one site's speed
    /// multiplier against a fixed historical trace.
    pub fn with_platform(&self, platform: impl Into<Arc<PlatformSpec>>) -> Self {
        let platform = platform.into();
        let platform_hash = hash::canonical_hash_of(&*platform);
        ScenarioBase {
            platform,
            trace: self.trace.clone(),
            platform_hash,
            trace_hash: self.trace_hash,
        }
    }

    /// The shared platform specification.
    pub fn platform(&self) -> &Arc<PlatformSpec> {
        &self.platform
    }

    /// The shared workload trace.
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }

    /// Canonical hash of the base content (platform + trace).
    pub fn content_hash(&self) -> u64 {
        let h = hash::fnv1a(0xcbf2_9ce4_8422_2325, &self.platform_hash.to_le_bytes());
        hash::fnv1a(h, &self.trace_hash.to_le_bytes())
    }
}

/// One runnable scenario: a shared base plus its deltas.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The shared platform + trace.
    pub base: Arc<ScenarioBase>,
    /// Execution parameters (policy name, seed, checkpoint block, …).
    pub execution: ExecutionConfig,
    /// Optional `--faults` spec text (the CLI grammar); the plan is
    /// generated deterministically from it and [`ScenarioSpec::fault_seed`].
    /// An empty string is the same scenario as no faults at all.
    pub faults: Option<String>,
    /// Seed for fault-plan generation (ignored without a fault spec).
    pub fault_seed: u64,
    /// An explicit pre-generated fault plan. Takes precedence over
    /// [`ScenarioSpec::faults`] and is hashed by content, so two specs
    /// sharing one `Arc`ed plan are one scenario.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl ScenarioSpec {
    /// A fault-free scenario of `execution` against `base`.
    pub fn new(base: Arc<ScenarioBase>, execution: ExecutionConfig) -> Self {
        ScenarioSpec {
            base,
            execution,
            faults: None,
            fault_seed: DEFAULT_FAULT_SEED,
            fault_plan: None,
        }
    }

    /// Sets the fault spec text (CLI `--faults` grammar).
    pub fn with_faults(mut self, spec: impl Into<String>) -> Self {
        self.faults = Some(spec.into());
        self
    }

    /// Sets the fault-generation seed (CLI `--fault-seed`).
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Attaches an explicit, already-generated fault plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The canonical hash identifying this scenario — the response-cache key.
    ///
    /// Equivalent scenarios hash identically: object key order and
    /// absent-vs-`null` optionals are canonicalised away (see [`hash`]), and
    /// the fault state is normalised so `faults: None`, `faults: Some("")`
    /// and an explicit *empty* plan — all bit-identical runs by the
    /// empty-plan invariant — share one key, with the fault seed folded in
    /// only when a fault spec is actually present.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = self.base.content_hash();
        let execution = serde_json::to_value(&self.execution).expect("execution config serialises");
        h = hash::hash_value(h, &execution);
        match (&self.fault_plan, self.faults.as_deref()) {
            (Some(plan), _) if !plan.events.is_empty() => {
                h = hash::fnv1a(h, &[1]);
                let plan = serde_json::to_value(&**plan).expect("fault plan serialises");
                hash::hash_value(h, &plan)
            }
            (Some(_), _) => hash::fnv1a(h, &[0]),
            (None, Some(spec)) if !spec.is_empty() => {
                h = hash::fnv1a(h, &[2]);
                h = hash::fnv1a(h, &(spec.len() as u64).to_le_bytes());
                h = hash::fnv1a(h, spec.as_bytes());
                hash::fnv1a(h, &self.fault_seed.to_le_bytes())
            }
            (None, _) => hash::fnv1a(h, &[0]),
        }
    }

    /// Materialises the fault plan this scenario runs under: the explicit
    /// plan if attached, else one generated from the spec text exactly like
    /// the CLI does (`parse_fault_spec` → `FaultTopology::for_platform` →
    /// `FaultPlan::generate`), else `None`. Empty plans collapse to `None`
    /// (bit-identical either way).
    pub fn build_fault_plan(&self) -> Result<Option<FaultPlan>, SimulationError> {
        if let Some(plan) = &self.fault_plan {
            return Ok(if plan.events.is_empty() {
                None
            } else {
                Some((**plan).clone())
            });
        }
        let Some(spec_text) = self.faults.as_deref().filter(|s| !s.is_empty()) else {
            return Ok(None);
        };
        let config = parse_fault_spec(spec_text).map_err(SimulationError::InvalidScenario)?;
        let platform = Platform::build(self.base.platform())
            .map_err(|e| SimulationError::Platform(e.to_string()))?;
        let topology = FaultTopology::for_platform(&platform, self.base.trace().len());
        Ok(Some(FaultPlan::generate(
            &config,
            &topology,
            self.fault_seed,
        )))
    }
}

/// The serialisable scenario delta of the `cgsim serve` JSONL protocol.
///
/// Every field is optional; absent (or `null`) fields inherit the server's
/// base execution configuration. Because the canonical hash is computed from
/// the *resolved* [`ScenarioSpec`] — never from the request text — two
/// requests spelling the same scenario differently (field order, explicit
/// `null`s, explicitly restating a default) share one cache entry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDelta {
    /// Allocation policy name (registry key).
    #[serde(default)]
    pub policy: Option<String>,
    /// Master RNG seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Fault spec text (CLI `--faults` grammar; empty string = no faults).
    #[serde(default)]
    pub faults: Option<String>,
    /// Fault-generation seed (CLI `--fault-seed`).
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Checkpoint/restart policy override.
    #[serde(default)]
    pub checkpoint: Option<CheckpointConfig>,
    /// Fault-aware re-replication (repair planner) override.
    #[serde(default)]
    pub repair: Option<RepairConfig>,
}

impl ScenarioDelta {
    /// Resolves the delta against a shared base and a base execution config.
    pub fn resolve(&self, base: &Arc<ScenarioBase>, execution: &ExecutionConfig) -> ScenarioSpec {
        let mut execution = execution.clone();
        if let Some(policy) = &self.policy {
            execution.allocation_policy = policy.clone();
        }
        if let Some(seed) = self.seed {
            execution.seed = seed;
        }
        if let Some(checkpoint) = &self.checkpoint {
            execution.checkpoint = checkpoint.clone();
        }
        if let Some(repair) = &self.repair {
            execution.repair = repair.clone();
        }
        let mut spec = ScenarioSpec::new(base.clone(), execution);
        spec.faults = self.faults.clone();
        if let Some(fault_seed) = self.fault_seed {
            spec.fault_seed = fault_seed;
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};
    use proptest::prelude::*;
    use serde_json::Value;

    fn base() -> Arc<ScenarioBase> {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(40, 5)).generate(&platform);
        ScenarioBase::shared(platform, trace)
    }

    #[test]
    fn base_sharing_is_pointer_cheap() {
        let platform = Arc::new(example_platform());
        let trace =
            Arc::new(TraceGenerator::new(TraceConfig::with_jobs(10, 1)).generate(&platform));
        let base = ScenarioBase::shared(platform.clone(), trace.clone());
        assert_eq!(Arc::strong_count(&platform), 2);
        assert_eq!(Arc::strong_count(&trace), 2);
        // A thousand scenario specs add zero copies of platform or trace.
        let specs: Vec<ScenarioSpec> = (0..1000)
            .map(|seed| {
                let execution = ExecutionConfig {
                    seed,
                    ..ExecutionConfig::default()
                };
                ScenarioSpec::new(base.clone(), execution)
            })
            .collect();
        assert_eq!(Arc::strong_count(&platform), 2);
        assert_eq!(Arc::strong_count(&trace), 2);
        assert_eq!(Arc::strong_count(&base), 1001);
        drop(specs);
        assert_eq!(Arc::strong_count(&base), 1);
    }

    #[test]
    fn with_platform_reuses_the_trace_hash() {
        let base = base();
        let mut modified = (**base.platform()).clone();
        modified.sites[0].speed_multiplier = 2.0;
        let rebased = base.with_platform(modified);
        assert_eq!(rebased.trace_hash, base.trace_hash);
        assert_ne!(rebased.content_hash(), base.content_hash());
        assert!(Arc::ptr_eq(rebased.trace(), base.trace()));
    }

    #[test]
    fn fault_normalisation_collapses_equivalent_spellings() {
        let base = base();
        let plain = ScenarioSpec::new(base.clone(), ExecutionConfig::default());
        let empty_text = plain.clone().with_faults("");
        let empty_plan = plain
            .clone()
            .with_fault_plan(Arc::new(FaultPlan::default()));
        assert_eq!(plain.canonical_hash(), empty_text.canonical_hash());
        assert_eq!(plain.canonical_hash(), empty_plan.canonical_hash());
        // The fault seed is irrelevant without a fault spec…
        assert_eq!(
            plain.canonical_hash(),
            plain.clone().with_fault_seed(99).canonical_hash()
        );
        // …but distinguishes scenarios once one is present.
        let faulted = plain.clone().with_faults("kill:rate=1");
        assert_ne!(plain.canonical_hash(), faulted.canonical_hash());
        assert_ne!(
            faulted.canonical_hash(),
            faulted.clone().with_fault_seed(99).canonical_hash()
        );
    }

    #[test]
    fn delta_resolution_inherits_the_base_execution() {
        let base = base();
        let execution = ExecutionConfig {
            seed: 11,
            ..ExecutionConfig::default()
        };
        let delta = ScenarioDelta {
            policy: Some("round-robin".into()),
            checkpoint: Some(CheckpointConfig::every(600.0)),
            ..ScenarioDelta::default()
        };
        let spec = delta.resolve(&base, &execution);
        assert_eq!(spec.execution.allocation_policy, "round-robin");
        assert_eq!(spec.execution.seed, 11);
        assert_eq!(spec.execution.checkpoint.interval_s, 600.0);
        assert_eq!(spec.fault_seed, DEFAULT_FAULT_SEED);
        // An empty delta is exactly the base scenario.
        let identity = ScenarioDelta::default().resolve(&base, &execution);
        assert_eq!(
            identity.canonical_hash(),
            ScenarioSpec::new(base.clone(), execution.clone()).canonical_hash()
        );
    }

    #[test]
    fn build_fault_plan_matches_the_cli_pipeline() {
        let base = base();
        let spec = ScenarioSpec::new(base.clone(), ExecutionConfig::default())
            .with_faults("kill:rate=2;horizon=12h")
            .with_fault_seed(7);
        let plan = spec.build_fault_plan().unwrap().expect("plan generated");
        // Same pipeline as src/main.rs build_fault_plan.
        let config = parse_fault_spec("kill:rate=2;horizon=12h").unwrap();
        let platform = Platform::build(base.platform()).unwrap();
        let topology = FaultTopology::for_platform(&platform, base.trace().len());
        assert_eq!(plan, FaultPlan::generate(&config, &topology, 7));

        let bad = ScenarioSpec::new(base, ExecutionConfig::default()).with_faults("bogus:nope");
        assert!(matches!(
            bad.build_fault_plan(),
            Err(SimulationError::InvalidScenario(_))
        ));
    }

    /// Deterministically permutes object key order throughout a value tree
    /// (rotation by `shift` at every object), leaving content untouched.
    fn rotate_keys(value: &Value, shift: usize) -> Value {
        match value {
            Value::Array(items) => {
                Value::Array(items.iter().map(|v| rotate_keys(v, shift)).collect())
            }
            Value::Object(map) => {
                let entries: Vec<(String, Value)> = map
                    .iter()
                    .map(|(k, v)| (k.clone(), rotate_keys(v, shift)))
                    .collect();
                let n = entries.len().max(1);
                let rotated = entries
                    .iter()
                    .cycle()
                    .skip(shift % n)
                    .take(entries.len())
                    .cloned()
                    .collect::<Vec<_>>();
                Value::Object(rotated.into_iter().collect())
            }
            other => other.clone(),
        }
    }

    proptest! {
        /// Satellite: serde round-trips and field-order permutations of an
        /// equivalent scenario hash identically; distinct seeds, policies and
        /// fault specs never collide (64 cases).
        #[test]
        fn canonical_hash_is_permutation_stable_and_collision_free(
            seed in 0u64..1_000_000,
            policy in prop::sample::select(vec!["least-loaded", "round-robin", "random"]),
            faults in prop::sample::select(vec!["", "kill:rate=1", "outage:site=0,mttf=4h,mttr=30m"]),
            fault_seed in 0u64..1_000,
            shift in 1usize..7,
        ) {
            let base = base();
            let mut execution = ExecutionConfig::with_policy(policy);
            execution.seed = seed;
            let spec = ScenarioSpec::new(base.clone(), execution.clone())
                .with_faults(faults)
                .with_fault_seed(fault_seed);
            let reference = spec.canonical_hash();

            // Round-trip the execution config through JSON text and permute
            // its field order: still the same scenario, same hash.
            let tree = serde_json::to_value(&execution).unwrap();
            let rotated = rotate_keys(&tree, shift);
            prop_assert_ne!(
                serde_json::to_string(&tree).unwrap(),
                serde_json::to_string(&rotated).unwrap(),
                "rotation must actually reorder fields"
            );
            let reparsed: ExecutionConfig =
                serde_json::from_str(&serde_json::to_string(&rotated).unwrap()).unwrap();
            let round_tripped = ScenarioSpec::new(base.clone(), reparsed)
                .with_faults(faults)
                .with_fault_seed(fault_seed);
            prop_assert_eq!(reference, round_tripped.canonical_hash());

            // Distinct deltas never collide with the reference scenario.
            let mut other_seed = execution.clone();
            other_seed.seed = seed + 1;
            prop_assert_ne!(
                reference,
                ScenarioSpec::new(base.clone(), other_seed)
                    .with_faults(faults)
                    .with_fault_seed(fault_seed)
                    .canonical_hash()
            );
            let mut other_policy = execution.clone();
            other_policy.allocation_policy = "fastest-available".into();
            prop_assert_ne!(
                reference,
                ScenarioSpec::new(base.clone(), other_policy)
                    .with_faults(faults)
                    .with_fault_seed(fault_seed)
                    .canonical_hash()
            );
            let other_faults = ScenarioSpec::new(base, execution)
                .with_faults("degrade:link=all,factor=0.5,mttf=6h,mttr=15m")
                .with_fault_seed(fault_seed);
            prop_assert_ne!(reference, other_faults.canonical_hash());
        }
    }
}
