//! The `cgsim serve` JSONL request/response loop.
//!
//! One line in = one JSON value: either a single request object or an array
//! of request objects (a *batch*, evaluated together over the engine's
//! worker pool and deduplicated against the response cache). One line out
//! per request, in input order, as compact JSON. The loop is generic over
//! `BufRead`/`Write`, so the CLI drives it over stdin/stdout or a TCP
//! stream and tests/examples drive it in-process.
//!
//! Request fields (all optional; see [`ScenarioDelta`]):
//!
//! ```json
//! {"id": "q1", "policy": "round-robin", "seed": 7,
//!  "faults": "kill:rate=1", "fault_seed": 3,
//!  "checkpoint": {"interval_s": 600.0, "base_bytes": 1000000,
//!                 "bytes_per_core": 0, "target": "SiteStorage"},
//!  "save": "/tmp/out/results.json"}
//! ```
//!
//! Absent fields inherit the server's base execution configuration. `id` is
//! echoed back verbatim. `save` additionally writes the pretty-printed
//! deterministic results (the same bytes `cgsim simulate --output` writes to
//! `results.json`) to the given path on the server side.
//!
//! A request may also ask for a structured execution trace of its run:
//! `"trace"` names a server-side output path, with optional
//! `"trace_format"` (`"jsonl"`, the default, or `"chrome"`) and
//! `"trace_filter"` (the CLI `--trace-filter` grammar). Traced requests
//! always run a fresh simulation (a cached response has no run to trace),
//! and by the observability determinism contract their response line is
//! byte-identical to the untraced one.
//!
//! Control commands (single requests only, never inside a batch):
//! `{"cmd": "stats"}` reports cache counters, the simulation-run counter,
//! the scenario-requests-served counter and client-observed wall-clock
//! latency percentiles (per input line, so batch members share a sample);
//! `{"cmd": "shutdown"}` acknowledges and ends the loop. Latency statistics
//! are per serve loop (per TCP connection), while cache counters and
//! `simulations_run` live in the engine and span connections.
//!
//! Responses: `{"id": …, "ok": true, "results": {…}}` on success, where
//! `results` is the deterministic subset (policy, makespan, engine events,
//! grid counters, metrics) — never wall-clock time — so equal scenarios get
//! byte-identical response lines whether they were simulated or served from
//! cache, within one server process or across restarts. Failures reply
//! `{"id": …, "ok": false, "error": "…"}` and fail only their own request.

use std::io::{BufRead, Write};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};

use crate::config::{CheckpointConfig, ExecutionConfig, RepairConfig};
use crate::results::SimulationResults;
use crate::scenario::{ScenarioBase, ScenarioDelta, ScenarioEngine, ScenarioOutcome, ScenarioSpec};

/// One JSONL request: a scenario delta plus protocol envelope fields.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Client-chosen identifier, echoed back in the response.
    #[serde(default)]
    pub id: Option<String>,
    /// Control command (`"stats"` or `"shutdown"`); mutually exclusive with
    /// scenario fields and only valid as a single (non-batch) request.
    #[serde(default)]
    pub cmd: Option<String>,
    /// Allocation policy name.
    #[serde(default)]
    pub policy: Option<String>,
    /// Master RNG seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Fault spec text (CLI `--faults` grammar).
    #[serde(default)]
    pub faults: Option<String>,
    /// Fault-generation seed (CLI `--fault-seed`).
    #[serde(default)]
    pub fault_seed: Option<u64>,
    /// Checkpoint/restart policy override.
    #[serde(default)]
    pub checkpoint: Option<CheckpointConfig>,
    /// Fault-aware re-replication (repair planner) override.
    #[serde(default)]
    pub repair: Option<RepairConfig>,
    /// Server-side path to write the pretty deterministic results to.
    #[serde(default)]
    pub save: Option<String>,
    /// Server-side path for a structured execution trace of this run.
    #[serde(default)]
    pub trace: Option<String>,
    /// Trace file format: `"jsonl"` (default) or `"chrome"`.
    #[serde(default)]
    pub trace_format: Option<String>,
    /// Trace category filter (comma-separated, CLI `--trace-filter` grammar).
    #[serde(default)]
    pub trace_filter: Option<String>,
}

impl ServeRequest {
    /// The scenario delta carried by this request.
    pub fn delta(&self) -> ScenarioDelta {
        ScenarioDelta {
            policy: self.policy.clone(),
            seed: self.seed,
            faults: self.faults.clone(),
            fault_seed: self.fault_seed,
            checkpoint: self.checkpoint.clone(),
            repair: self.repair.clone(),
        }
    }
}

/// Runs `f`, converting a panic into a printable error so one hostile or
/// buggy request cannot take down the whole serve loop (every other request
/// on the line — and every later line — still gets its response).
fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_string());
        format!("internal error: simulation panicked: {message}")
    })
}

/// How one parsed request will be answered.
enum Planned {
    /// Evaluate `specs[index]` and reply with its results.
    Scenario { index: usize },
    /// Evaluate `traced[index]` with its trace sink and reply.
    Traced { index: usize },
    /// Reply with an error message.
    Error(String),
    /// Reply with engine statistics.
    Stats,
    /// Acknowledge and end the serve loop.
    Shutdown,
}

/// Per-loop service statistics: scenario requests served and client-observed
/// latency samples (one per request, the wall-clock of its whole input line).
/// Samples live in a fixed ring so long-lived servers stay bounded.
struct ServeStats {
    requests: u64,
    latencies_ms: Vec<f64>,
}

const LATENCY_SAMPLE_CAP: usize = 4096;

impl ServeStats {
    fn new() -> Self {
        ServeStats {
            requests: 0,
            latencies_ms: Vec::new(),
        }
    }

    fn record(&mut self, elapsed_ms: f64) {
        if self.latencies_ms.len() < LATENCY_SAMPLE_CAP {
            self.latencies_ms.push(elapsed_ms);
        } else {
            self.latencies_ms[self.requests as usize % LATENCY_SAMPLE_CAP] = elapsed_ms;
        }
        self.requests += 1;
    }

    fn percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let pos = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[pos.min(sorted.len() - 1)]
    }

    fn latency_value(&self) -> Value {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mut map = Map::new();
        for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
            map.insert(
                label.into(),
                Value::Number(serde_json::Number::from_f64(Self::percentile(&sorted, p))),
            );
        }
        map.insert(
            "max".into(),
            Value::Number(serde_json::Number::from_f64(
                sorted.last().copied().unwrap_or(0.0),
            )),
        );
        Value::Object(map)
    }
}

/// Runs the request/response loop until end-of-input or a `shutdown`
/// command. Returns `true` when the loop ended because of `shutdown`.
pub fn serve_loop<R: BufRead, W: Write>(
    engine: &ScenarioEngine,
    base: &Arc<ScenarioBase>,
    execution: &ExecutionConfig,
    input: R,
    mut output: W,
) -> std::io::Result<bool> {
    let mut stats = ServeStats::new();
    for line in input.lines() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let (requests, is_batch) = match serde_json::from_str::<Value>(text) {
            Err(e) => {
                write_line(
                    &mut output,
                    &error_value(&None, &format!("invalid JSON: {e}")),
                )?;
                output.flush()?;
                continue;
            }
            Ok(Value::Array(items)) => {
                let parsed = items
                    .into_iter()
                    .map(|item| {
                        serde_json::from_value::<ServeRequest>(item)
                            .map_err(|e| format!("invalid request: {e}"))
                    })
                    .collect::<Vec<_>>();
                (parsed, true)
            }
            Ok(value) => {
                let parsed = serde_json::from_value::<ServeRequest>(value)
                    .map_err(|e| format!("invalid request: {e}"));
                (vec![parsed], false)
            }
        };

        // Plan every request, collecting the scenario specs into one batch.
        // Traced requests are kept aside: each needs its own sink-carrying
        // run, so they cannot share the batch's deduplicated evaluation.
        let mut specs: Vec<ScenarioSpec> = Vec::new();
        let mut traced: Vec<(ScenarioSpec, TraceOptions)> = Vec::new();
        let mut planned: Vec<(Option<String>, Option<String>, Planned)> = Vec::new();
        let mut shutdown = false;
        for request in requests {
            let plan = match &request {
                Err(message) => (None, None, Planned::Error(message.clone())),
                Ok(req) => {
                    let plan = match req.cmd.as_deref() {
                        Some("stats") if !is_batch => Planned::Stats,
                        Some("shutdown") if !is_batch => {
                            shutdown = true;
                            Planned::Shutdown
                        }
                        Some(cmd) if is_batch => {
                            Planned::Error(format!("cmd '{cmd}' is not allowed inside a batch"))
                        }
                        Some(cmd) => Planned::Error(format!("unknown cmd: {cmd}")),
                        None => match trace_options(req) {
                            Err(message) => Planned::Error(message),
                            Ok(Some(options)) => {
                                traced.push((req.delta().resolve(base, execution), options));
                                Planned::Traced {
                                    index: traced.len() - 1,
                                }
                            }
                            Ok(None) => {
                                specs.push(req.delta().resolve(base, execution));
                                Planned::Scenario {
                                    index: specs.len() - 1,
                                }
                            }
                        },
                    };
                    (req.id.clone(), req.save.clone(), plan)
                }
            };
            planned.push(plan);
        }

        let line_started = std::time::Instant::now();
        let outcomes: Vec<Result<ScenarioOutcome, String>> =
            match catch_panic(|| engine.evaluate_batch(&specs)) {
                Ok(outcomes) => outcomes
                    .into_iter()
                    .map(|r| r.map_err(|e| e.to_string()))
                    .collect(),
                Err(message) => specs.iter().map(|_| Err(message.clone())).collect(),
            };
        let traced_outcomes: Vec<Result<ScenarioOutcome, String>> = traced
            .into_iter()
            .map(|(spec, options)| {
                catch_panic(|| evaluate_traced(engine, &spec, options)).and_then(|r| r)
            })
            .collect();
        let elapsed_ms = line_started.elapsed().as_secs_f64() * 1e3;
        for _ in 0..outcomes.len() + traced_outcomes.len() {
            stats.record(elapsed_ms);
        }

        for (id, save, plan) in planned {
            let response = match plan {
                Planned::Error(message) => error_value(&id, &message),
                Planned::Stats => stats_value(engine, &stats),
                Planned::Shutdown => {
                    let mut map = Map::new();
                    insert_id(&mut map, &id);
                    map.insert("ok".into(), Value::Bool(true));
                    map.insert("shutdown".into(), Value::Bool(true));
                    Value::Object(map)
                }
                Planned::Scenario { index } => match &outcomes[index] {
                    Err(e) => error_value(&id, &e.to_string()),
                    Ok(outcome) => match save_results(&save, &outcome.results) {
                        Err(message) => error_value(&id, &message),
                        Ok(()) => ok_value(&id, &outcome.results),
                    },
                },
                Planned::Traced { index } => match &traced_outcomes[index] {
                    Err(message) => error_value(&id, message),
                    Ok(outcome) => match save_results(&save, &outcome.results) {
                        Err(message) => error_value(&id, &message),
                        Ok(()) => ok_value(&id, &outcome.results),
                    },
                },
            };
            write_line(&mut output, &response)?;
        }
        output.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

fn write_line<W: Write>(output: &mut W, value: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(value).expect("response value serialises");
    writeln!(output, "{text}")
}

fn insert_id(map: &mut Map, id: &Option<String>) {
    if let Some(id) = id {
        map.insert("id".into(), Value::String(id.clone()));
    }
}

fn error_value(id: &Option<String>, message: &str) -> Value {
    let mut map = Map::new();
    insert_id(&mut map, id);
    map.insert("ok".into(), Value::Bool(false));
    map.insert("error".into(), Value::String(message.to_string()));
    Value::Object(map)
}

fn ok_value(id: &Option<String>, results: &SimulationResults) -> Value {
    let mut map = Map::new();
    insert_id(&mut map, id);
    map.insert("ok".into(), Value::Bool(true));
    let deterministic: Value = serde_json::from_str(&results.deterministic_json())
        .expect("deterministic results parse back");
    map.insert("results".into(), deterministic);
    Value::Object(map)
}

/// The trace options of a request (`Ok(None)` when untraced; `Err` on a bad
/// format or filter, caught at planning time so no simulation runs).
fn trace_options(req: &ServeRequest) -> Result<Option<TraceOptions>, String> {
    let Some(path) = req.trace.clone().filter(|p| !p.is_empty()) else {
        return Ok(None);
    };
    let chrome = match req.trace_format.as_deref() {
        None | Some("") | Some("jsonl") => false,
        Some("chrome") => true,
        Some(other) => return Err(format!("trace_format must be jsonl or chrome, got {other}")),
    };
    let mask = match req.trace_filter.as_deref() {
        Some(spec) if !spec.is_empty() => cgsim_obs::parse_filter(spec)?,
        _ => cgsim_obs::MASK_ALL,
    };
    Ok(Some(TraceOptions { path, chrome, mask }))
}

/// Where and how a traced request writes its trace.
struct TraceOptions {
    path: String,
    chrome: bool,
    mask: u32,
}

fn evaluate_traced(
    engine: &ScenarioEngine,
    spec: &ScenarioSpec,
    options: TraceOptions,
) -> Result<crate::scenario::ScenarioOutcome, String> {
    let path = std::path::Path::new(&options.path);
    let sink: Box<dyn cgsim_obs::TraceSink> = if options.chrome {
        Box::new(
            cgsim_obs::ChromeSink::create(path)
                .map_err(|e| format!("trace '{}' failed: {e}", options.path))?,
        )
    } else {
        Box::new(
            cgsim_obs::JsonlSink::create(path)
                .map_err(|e| format!("trace '{}' failed: {e}", options.path))?,
        )
    };
    engine
        .evaluate_traced(spec, sink, options.mask)
        .map_err(|e| e.to_string())
}

fn stats_value(engine: &ScenarioEngine, serve_stats: &ServeStats) -> Value {
    let mut stats = Map::new();
    stats.insert(
        "cache".into(),
        serde_json::to_value(&engine.cache_counters()).expect("counters serialise"),
    );
    stats.insert(
        "simulations_run".into(),
        Value::Number(serde_json::Number::from_u64(engine.simulations_run())),
    );
    stats.insert(
        "requests".into(),
        Value::Number(serde_json::Number::from_u64(serve_stats.requests)),
    );
    stats.insert("latency_ms".into(), serve_stats.latency_value());
    let mut map = Map::new();
    map.insert("ok".into(), Value::Bool(true));
    map.insert("stats".into(), Value::Object(stats));
    Value::Object(map)
}

/// Writes the pretty deterministic results server-side when requested — the
/// same bytes `cgsim simulate --output` puts in `results.json`, so saved
/// responses diff cleanly against direct CLI runs.
fn save_results(save: &Option<String>, results: &SimulationResults) -> Result<(), String> {
    let Some(path) = save else { return Ok(()) };
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("save '{path}' failed: {e}"))?;
        }
    }
    std::fs::write(path, results.deterministic_json())
        .map_err(|e| format!("save '{path}' failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_workload::{TraceConfig, TraceGenerator};

    fn setup() -> (Arc<ScenarioBase>, ExecutionConfig) {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(30, 3)).generate(&platform);
        (
            ScenarioBase::shared(platform, trace),
            ExecutionConfig::default(),
        )
    }

    fn drive(input: &str) -> (String, bool) {
        let engine = ScenarioEngine::new();
        let (base, execution) = setup();
        let mut output = Vec::new();
        let shutdown = serve_loop(
            &engine,
            &base,
            &execution,
            std::io::Cursor::new(input.as_bytes()),
            &mut output,
        )
        .expect("in-memory IO cannot fail");
        (String::from_utf8(output).unwrap(), shutdown)
    }

    #[test]
    fn single_and_batch_requests_answer_in_order() {
        let input = r#"{"id":"a","policy":"round-robin"}
[{"id":"b","policy":"least-loaded"},{"id":"c","seed":9}]
"#;
        let (out, shutdown) = drive(input);
        assert!(!shutdown);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(r#"{"id":"a","ok":true,"#));
        assert!(lines[1].starts_with(r#"{"id":"b","ok":true,"#));
        assert!(lines[2].starts_with(r#"{"id":"c","ok":true,"#));
        assert!(lines[0].contains(r#""policy":"round-robin""#));
    }

    #[test]
    fn responses_are_byte_identical_across_server_instances() {
        let input = r#"[{"id":"x","policy":"round-robin"},{"id":"y","faults":"kill:rate=1"}]
[{"id":"x","policy":"round-robin"},{"id":"y","faults":"kill:rate=1"}]
"#;
        let (first, _) = drive(input);
        let (second, _) = drive(input);
        assert_eq!(first, second, "restarted server must answer identically");
        // Within one transcript, the repeated batch (answered from cache)
        // is byte-identical to the first (simulated) one.
        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], lines[2]);
        assert_eq!(lines[1], lines[3]);
    }

    #[test]
    fn errors_fail_only_their_own_request() {
        let input = r#"[{"id":"ok1"},{"id":"bad","policy":"does-not-exist"},{"id":"ok2","faults":"nope"}]
not json
"#;
        let (out, _) = drive(input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""ok":true"#));
        assert!(lines[1].contains(r#""ok":false"#));
        assert!(lines[1].contains("unknown allocation policy"));
        assert!(lines[2].contains(r#""ok":false"#));
        assert!(lines[3].contains("invalid JSON"));
    }

    #[test]
    fn stats_and_shutdown_commands_work() {
        let input = r#"{"id":"q","seed":4}
{"id":"q","seed":4}
{"cmd":"stats"}
{"cmd":"shutdown"}
{"id":"never-reached"}
"#;
        let (out, shutdown) = drive(input);
        assert!(shutdown);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "requests after shutdown are not served");
        assert_eq!(lines[0], lines[1], "cached repeat is byte-identical");
        assert!(lines[2].contains(r#""hits":1"#));
        assert!(lines[2].contains(r#""misses":1"#));
        assert!(lines[2].contains(r#""simulations_run":1"#));
        assert!(lines[2].contains(r#""requests":2"#));
        assert!(lines[2].contains(r#""latency_ms""#));
        assert!(lines[2].contains(r#""p50""#));
        assert!(lines[2].contains(r#""p99""#));
        assert!(lines[3].contains(r#""shutdown":true"#));
    }

    #[test]
    fn traced_requests_answer_identically_and_write_the_trace() {
        let dir = std::env::temp_dir().join("cgsim-serve-trace-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("run.jsonl");
        let chrome = dir.join("run.json");
        let input = format!(
            "{{\"id\":\"plain\",\"faults\":\"kill:rate=1\"}}\n\
             {{\"id\":\"plain\",\"faults\":\"kill:rate=1\",\"trace\":{jsonl:?}}}\n\
             {{\"id\":\"plain\",\"faults\":\"kill:rate=1\",\"trace\":{chrome:?},\
               \"trace_format\":\"chrome\",\"trace_filter\":\"fault,job\"}}\n\
             {{\"id\":\"bad\",\"trace\":\"x\",\"trace_format\":\"xml\"}}\n",
            jsonl = jsonl.to_str().unwrap(),
            chrome = chrome.to_str().unwrap(),
        );
        let (out, _) = drive(&input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0], lines[1],
            "tracing must not change the response line"
        );
        assert_eq!(lines[0], lines[2]);
        assert!(lines[3].contains("trace_format must be jsonl or chrome"));

        let text = std::fs::read_to_string(&jsonl).unwrap();
        let records = cgsim_obs::validate_jsonl(&text).expect("schema-valid trace");
        assert!(records > 0);
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        cgsim_obs::validate_chrome(&chrome_text).expect("well-formed Chrome trace");
        assert!(chrome_text.contains("\"cat\":\"fault\""));
        assert!(!chrome_text.contains("\"cat\":\"broker\""), "filtered out");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn catch_panic_reports_str_and_string_payloads() {
        assert_eq!(catch_panic(|| 7), Ok(7));
        let err = catch_panic(|| panic!("boom")).unwrap_err();
        assert!(err.contains("simulation panicked: boom"), "{err}");
        let err = catch_panic(|| panic!("{}", String::from("dynamic"))).unwrap_err();
        assert!(err.contains("simulation panicked: dynamic"), "{err}");
        let err = catch_panic(|| std::panic::panic_any(42_i32)).unwrap_err();
        assert!(err.contains("unknown panic"), "{err}");
    }

    #[test]
    fn hostile_requests_each_get_one_error_line_and_the_loop_survives() {
        // A battery of malformed / hostile inputs: wrong top-level types,
        // type-confused fields, out-of-range numbers, pathological nesting,
        // binary garbage. Every line must produce exactly one JSON response
        // line per request (ok:false for the bad ones), and a well-formed
        // request afterwards must still be served.
        let deep_nest = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        let input = format!(
            r#""just a string"
42
true
{{"seed": -1}}
{{"seed": 1.5}}
{{"policy": 42}}
{{"policy": {{"name": "nested"}}}}
{{"checkpoint": {{"interval_s": "soon"}}}}
{{"repair": {{"enabled": "yes"}}}}
{{"faults": ["not", "a", "string"]}}
{{"faults": "bogus:clause"}}
{{"id": "bad-policy", "policy": "does-not-exist"}}
[1, "two", null]
{deep_nest}
{{"id": "unterminated"
\x00\x01garbage
{{"id": "still-alive", "seed": 3}}
"#
        );
        let (out, shutdown) = drive(&input);
        assert!(!shutdown);
        let lines: Vec<&str> = out.lines().collect();
        // 16 single-value lines + the 3-element array line = 19 responses.
        assert_eq!(lines.len(), 19, "one response per request: {out}");
        for line in &lines {
            let value: Value = serde_json::from_str(line).expect("every response is valid JSON");
            assert!(
                value.get("ok").is_some(),
                "response has an ok field: {line}"
            );
        }
        // Everything except the final good request fails.
        for line in &lines[..lines.len() - 1] {
            assert!(
                line.contains(r#""ok":false"#),
                "hostile line passed: {line}"
            );
        }
        let last = lines.last().unwrap();
        assert!(last.contains(r#""id":"still-alive""#));
        assert!(last.contains(r#""ok":true"#), "loop must survive: {last}");
    }

    #[test]
    fn repair_delta_is_resolved_and_distinguishes_scenarios() {
        let (base, execution) = setup();
        let request: ServeRequest = serde_json::from_str(
            r#"{"repair":{"enabled":true,"target_factor":3,"max_concurrent":2,
                "backoff_s":60.0,"max_retries":3}}"#,
        )
        .unwrap();
        let spec = request.delta().resolve(&base, &execution);
        assert!(spec.execution.repair.enabled);
        assert_eq!(spec.execution.repair.target_factor, 3);
        assert_eq!(spec.execution.repair.backoff_s, 60.0);
        // Partial overrides inherit the remaining knob defaults.
        let partial: ServeRequest = serde_json::from_str(r#"{"repair":{"enabled":true}}"#).unwrap();
        let partial = partial.delta().resolve(&base, &execution);
        assert!(partial.execution.repair.enabled);
        assert_eq!(partial.execution.repair.max_concurrent, 4);
        // The override reaches the cache key: distinct scenario from the base.
        let plain = ServeRequest::default().delta().resolve(&base, &execution);
        assert_ne!(spec.canonical_hash(), plain.canonical_hash());
        assert_ne!(partial.canonical_hash(), plain.canonical_hash());
        // And the serve loop answers a repair-enabled faulted request.
        let input = "{\"id\":\"on\",\"faults\":\"diskloss:site=1,mttf=30m;horizon=24h\",\
                     \"repair\":{\"enabled\":true}}\n";
        let (out, _) = drive(input);
        assert!(out.contains(r#""id":"on","ok":true"#), "{out}");
    }

    #[test]
    fn cmd_inside_a_batch_is_rejected() {
        let (out, shutdown) = drive(r#"[{"id":"s"},{"cmd":"shutdown"}]"#);
        assert!(!shutdown, "batched shutdown must not stop the server");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""ok":true"#));
        assert!(lines[1].contains("not allowed inside a batch"));
    }

    #[test]
    fn save_writes_the_simulate_results_file() {
        let dir = std::env::temp_dir().join("cgsim-serve-save-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("results.json");
        let input = format!("{{\"id\":\"s\",\"save\":{:?}}}\n", path.to_str().unwrap());
        let (out, _) = drive(&input);
        assert!(out.contains(r#""ok":true"#));
        let saved = std::fs::read_to_string(&path).unwrap();

        // The saved file is exactly the engine's pretty deterministic JSON.
        let engine = ScenarioEngine::new();
        let (base, execution) = setup();
        let spec = ScenarioSpec::new(base, execution);
        let direct = engine.evaluate(&spec).unwrap();
        assert_eq!(saved, direct.results.deterministic_json());
        std::fs::remove_dir_all(&dir).ok();
    }
}
