//! The deterministic response cache.
//!
//! Every CGSim run is bit-for-bit reproducible (pinned by the three CI
//! determinism gates), so the full [`SimulationResults`] of a scenario is a
//! pure function of its canonical hash — which makes memoisation *exact*: a
//! cached response is indistinguishable from rerunning the simulation.
//! The cache stores `Arc<SimulationResults>` so a hit costs one pointer
//! clone, evicts least-recently-used entries beyond its capacity, and keeps
//! the [`CacheCounters`] surfaced through `cgsim-monitor`.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cgsim_monitor::CacheCounters;

use crate::results::SimulationResults;

/// An LRU map from canonical scenario hash to the simulation response.
#[derive(Debug, Default)]
pub struct ResponseCache {
    capacity: usize,
    /// hash → (recency tick, response).
    entries: HashMap<u64, (u64, Arc<SimulationResults>)>,
    /// recency tick → hash; the smallest tick is the eviction victim. Ticks
    /// are unique (bumped on every touch), so this is a faithful LRU order.
    recency: BTreeMap<u64, u64>,
    tick: u64,
    counters: CacheCounters,
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` responses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            capacity: capacity.max(1),
            ..ResponseCache::default()
        }
    }

    /// Looks up a scenario. A present entry counts as a hit and is marked
    /// most-recently-used; an absent one counts nothing (the engine decides
    /// whether the lookup becomes a miss or shares another request's run).
    pub fn lookup(&mut self, hash: u64) -> Option<Arc<SimulationResults>> {
        let tick = self.next_tick();
        let (old_tick, results) = self.entries.get_mut(&hash)?;
        self.recency.remove(old_tick);
        self.recency.insert(tick, hash);
        *old_tick = tick;
        self.counters.hits += 1;
        Some(results.clone())
    }

    /// Records a lookup that will run a fresh simulation.
    pub fn record_miss(&mut self) {
        self.counters.misses += 1;
    }

    /// Records a request served by another in-flight request's run (a
    /// duplicate within one batch): no simulation of its own, so a hit.
    pub fn record_shared_hit(&mut self) {
        self.counters.hits += 1;
    }

    /// Inserts (or refreshes) a response, evicting least-recently-used
    /// entries beyond the capacity.
    pub fn insert(&mut self, hash: u64, results: Arc<SimulationResults>) {
        let tick = self.next_tick();
        if let Some((old_tick, slot)) = self.entries.get_mut(&hash) {
            self.recency.remove(old_tick);
            self.recency.insert(tick, hash);
            *old_tick = tick;
            *slot = results;
            return;
        }
        while self.entries.len() >= self.capacity {
            let (&oldest_tick, &victim) = self
                .recency
                .iter()
                .next()
                .expect("recency index matches entries");
            self.recency.remove(&oldest_tick);
            self.entries.remove(&victim);
            self.counters.evictions += 1;
        }
        self.entries.insert(hash, (tick, results));
        self.recency.insert(tick, hash);
        self.counters.entries = self.entries.len() as u64;
    }

    /// Current counters (hits, misses, evictions, resident entries).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            entries: self.entries.len() as u64,
            ..self.counters
        }
    }

    /// Number of resident responses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no responses are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_monitor::MetricsReport;

    fn response(makespan_s: f64) -> Arc<SimulationResults> {
        Arc::new(SimulationResults {
            outcomes: Vec::new(),
            events: Vec::new(),
            metrics: MetricsReport::from_outcomes(&[]),
            makespan_s,
            engine_events: 0,
            wall_clock_s: 0.0,
            site_panels: Vec::new(),
            grid_counters: cgsim_monitor::GridCounters::default(),
            policy: "test".into(),
            profile: None,
            windows: Vec::new(),
        })
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = ResponseCache::new(4);
        assert!(cache.lookup(1).is_none());
        cache.record_miss();
        cache.insert(1, response(10.0));
        let hit = cache.lookup(1).expect("cached");
        assert_eq!(hit.makespan_s, 10.0);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.entries), (1, 1, 0, 1));
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let mut cache = ResponseCache::new(2);
        cache.insert(1, response(1.0));
        cache.insert(2, response(2.0));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, response(3.0));
        assert!(cache.lookup(2).is_none(), "LRU entry evicted");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut cache = ResponseCache::new(2);
        cache.insert(1, response(1.0));
        cache.insert(1, response(9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(1).unwrap().makespan_s, 9.0);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache = ResponseCache::new(0);
        cache.insert(1, response(1.0));
        assert!(!cache.is_empty());
        cache.insert(2, response(2.0));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(2).is_some());
    }
}
