//! The scenario engine: batch evaluation with memoisation.
//!
//! The engine owns the three shared pieces every evaluation needs — the
//! policy registry, the deterministic response cache and the run counter —
//! and evaluates [`ScenarioSpec`] batches over the same self-scheduling
//! worker pool that powers `run_sweep`. It is `Sync`: sweeps, the calibrator
//! and the `cgsim serve` front end all hold one engine and evaluate through
//! shared references.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cgsim_monitor::CacheCounters;
use cgsim_obs::{ProfileReport, Profiler, Subsystem, TraceSink};
use cgsim_policies::PolicyRegistry;

use crate::results::SimulationResults;
use crate::scenario::cache::ResponseCache;
use crate::scenario::ScenarioSpec;
use crate::simulation::{Simulation, SimulationError};

/// Default number of responses the engine memoises.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// The result of evaluating one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The (possibly shared) simulation results.
    pub results: Arc<SimulationResults>,
    /// True when the response was served without running a simulation for
    /// this request (cache hit, or a duplicate within the same batch).
    pub cached: bool,
    /// The canonical scenario hash the response is keyed on.
    pub hash: u64,
}

/// A shared evaluation engine for scenario batches.
pub struct ScenarioEngine {
    registry: PolicyRegistry,
    cache: Option<Mutex<ResponseCache>>,
    simulations_run: AtomicU64,
    parallel: bool,
    /// Engine-level self-profiler (`None` unless profiling was requested):
    /// times response-cache probes, the engine's own contribution to a
    /// request's latency.
    profiler: Option<Mutex<Profiler>>,
}

impl Default for ScenarioEngine {
    fn default() -> Self {
        ScenarioEngine::new()
    }
}

impl ScenarioEngine {
    /// An engine with the built-in policies, a cache of
    /// [`DEFAULT_CACHE_CAPACITY`] responses and parallel batch evaluation.
    pub fn new() -> Self {
        ScenarioEngine::with_registry(PolicyRegistry::with_builtins())
    }

    /// An engine resolving policies through `registry` (custom plugins
    /// included). The registry is `Arc`-backed, so this is a cheap clone of
    /// the name table, not of the policies.
    pub fn with_registry(registry: PolicyRegistry) -> Self {
        ScenarioEngine {
            registry,
            cache: Some(Mutex::new(ResponseCache::new(DEFAULT_CACHE_CAPACITY))),
            simulations_run: AtomicU64::new(0),
            parallel: true,
            profiler: None,
        }
    }

    /// Replaces the response cache with one holding `capacity` entries.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Some(Mutex::new(ResponseCache::new(capacity)));
        self
    }

    /// Disables response caching: every request runs a fresh simulation.
    /// Output is byte-identical either way (determinism is what makes the
    /// cache exact); this exists for verification and for memory-constrained
    /// deployments.
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Enables or disables the parallel worker pool for batches.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Enables engine-level self-profiling (cache-lookup timing). Read the
    /// accumulated report with [`ScenarioEngine::profile_report`].
    pub fn profiling(mut self, enabled: bool) -> Self {
        self.profiler = enabled.then(|| Mutex::new(Profiler::new(true)));
        self
    }

    /// The accumulated engine self-profile (`None` unless
    /// [`ScenarioEngine::profiling`] enabled it).
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.profiler.as_ref().map(|p| {
            p.lock()
                .expect("profiler mutex poisoned")
                .report("scenario-engine")
        })
    }

    /// The policy registry the engine resolves names through.
    pub fn registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// Cache counters (all zero when caching is disabled).
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("cache mutex poisoned").counters())
            .unwrap_or_default()
    }

    /// Total simulations actually executed (excludes cache hits).
    pub fn simulations_run(&self) -> u64 {
        self.simulations_run.load(Ordering::Relaxed)
    }

    /// Evaluates one scenario (through the cache).
    pub fn evaluate(&self, spec: &ScenarioSpec) -> Result<ScenarioOutcome, SimulationError> {
        self.evaluate_batch(std::slice::from_ref(spec))
            .pop()
            .expect("batch of one yields one outcome")
    }

    /// Evaluates a batch of scenarios, returning outcomes in input order.
    ///
    /// Cache hits are answered immediately; the remaining *unique* scenarios
    /// run over the self-scheduling worker pool (duplicates within the batch
    /// share a single run and count as cache hits). Per-scenario errors
    /// (unknown policy, invalid fault spec, platform validation) fail only
    /// their own slot and are never cached.
    pub fn evaluate_batch(
        &self,
        specs: &[ScenarioSpec],
    ) -> Vec<Result<ScenarioOutcome, SimulationError>> {
        let probe_started = self.profiler.as_ref().map(|_| std::time::Instant::now());
        let hashes: Vec<u64> = specs.iter().map(ScenarioSpec::canonical_hash).collect();
        let mut slots: Vec<Option<Result<ScenarioOutcome, SimulationError>>> =
            (0..specs.len()).map(|_| None).collect();
        // Indices of the first occurrence of each hash that needs a run.
        let mut unique: Vec<usize> = Vec::new();
        // (request index, position in `unique`) of in-batch duplicates.
        let mut followers: Vec<(usize, usize)> = Vec::new();

        match &self.cache {
            Some(cache) => {
                let mut cache = cache.lock().expect("cache mutex poisoned");
                for (i, &hash) in hashes.iter().enumerate() {
                    if let Some(results) = cache.lookup(hash) {
                        slots[i] = Some(Ok(ScenarioOutcome {
                            results,
                            cached: true,
                            hash,
                        }));
                    } else if let Some(pos) = unique.iter().position(|&j| hashes[j] == hash) {
                        cache.record_shared_hit();
                        followers.push((i, pos));
                    } else {
                        cache.record_miss();
                        unique.push(i);
                    }
                }
            }
            // Without a cache nothing is deduplicated: every request runs.
            None => unique = (0..specs.len()).collect(),
        }
        if let Some(p) = &self.profiler {
            p.lock()
                .expect("profiler mutex poisoned")
                .stop(Subsystem::CacheLookup, probe_started);
        }

        let to_run: Vec<&ScenarioSpec> = unique.iter().map(|&i| &specs[i]).collect();
        let runs: Vec<Result<Arc<SimulationResults>, SimulationError>> =
            run_self_scheduled(to_run, self.parallel, |spec| {
                self.run_spec(spec).map(Arc::new)
            });

        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().expect("cache mutex poisoned");
            for (pos, &i) in unique.iter().enumerate() {
                if let Ok(results) = &runs[pos] {
                    cache.insert(hashes[i], results.clone());
                }
            }
        }
        for (pos, &i) in unique.iter().enumerate() {
            slots[i] = Some(runs[pos].clone().map(|results| ScenarioOutcome {
                results,
                cached: false,
                hash: hashes[i],
            }));
        }
        for (i, pos) in followers {
            slots[i] = Some(runs[pos].clone().map(|results| ScenarioOutcome {
                results,
                cached: true,
                hash: hashes[i],
            }));
        }
        slots
            .into_iter()
            .map(|s| s.expect("every request is classified exactly once"))
            .collect()
    }

    /// Evaluates one scenario with a structured-trace sink attached. The
    /// trace must come from a real run, so the cache is bypassed on the way
    /// in; on the way out the fresh results are fed *into* the cache — by
    /// the determinism contract they are byte-identical to untraced ones, so
    /// later untraced duplicates can be answered from memory.
    pub fn evaluate_traced(
        &self,
        spec: &ScenarioSpec,
        sink: Box<dyn TraceSink>,
        mask: u32,
    ) -> Result<ScenarioOutcome, SimulationError> {
        let hash = spec.canonical_hash();
        let results = Arc::new(self.run_spec_with(spec, |b| b.trace_sink(sink, mask))?);
        if let Some(cache) = &self.cache {
            let mut cache = cache.lock().expect("cache mutex poisoned");
            cache.record_miss();
            cache.insert(hash, results.clone());
        }
        Ok(ScenarioOutcome {
            results,
            cached: false,
            hash,
        })
    }

    /// Runs one scenario unconditionally (no cache involvement), faithfully
    /// reproducing the CLI's `simulate` pipeline: resolve the policy by name,
    /// generate the fault plan from the spec text, build the platform from
    /// the shared spec and run.
    fn run_spec(&self, spec: &ScenarioSpec) -> Result<SimulationResults, SimulationError> {
        self.run_spec_with(spec, |b| b)
    }

    /// [`ScenarioEngine::run_spec`] with a builder customisation hook (used
    /// to attach per-run observability options).
    fn run_spec_with(
        &self,
        spec: &ScenarioSpec,
        customise: impl FnOnce(
            crate::simulation::SimulationBuilder,
        ) -> crate::simulation::SimulationBuilder,
    ) -> Result<SimulationResults, SimulationError> {
        let policy = self
            .registry
            .create(&spec.execution.allocation_policy, spec.execution.seed)
            .ok_or_else(|| {
                SimulationError::UnknownPolicy(spec.execution.allocation_policy.clone())
            })?;
        let fault_plan = spec.build_fault_plan()?;
        let mut builder = Simulation::builder()
            .platform_spec(spec.base.platform())?
            .trace(spec.base.trace().clone())
            .policy(policy)
            .execution(spec.execution.clone());
        if let Some(plan) = fault_plan {
            builder = builder.fault_plan(plan);
        }
        let results = customise(builder).run()?;
        self.simulations_run.fetch_add(1, Ordering::Relaxed);
        Ok(results)
    }
}

/// Runs `run` over every item, self-scheduling the items across
/// `available_parallelism` worker threads when `parallel` is set; results
/// come back in input order either way.
///
/// Workers pull the next unclaimed item off a shared atomic counter.
/// Contiguous chunking would hand every large point of a monotone
/// job-scaling sweep to the same worker (the last chunk), serialising most
/// of the work; with self-scheduling a worker that drew a cheap item simply
/// comes back for another, so the load balances itself whatever the
/// item-size distribution.
pub(crate) fn run_self_scheduled<T, R, F>(items: Vec<T>, parallel: bool, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if !parallel || items.len() <= 1 {
        return items.into_iter().map(run).collect();
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("work item mutex poisoned")
                    .take()
                    .expect("each work item is claimed exactly once");
                let outcome = run(item);
                *results[i].lock().expect("result mutex poisoned") = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutex poisoned")
                .expect("every work item produced a result")
        })
        .collect()
}
