//! The event-driven grid simulation (main server + site receivers).

use std::collections::{HashMap, VecDeque};

use cgsim_data::transfer::plan_staging;
use cgsim_data::{LruCache, ReplicaCatalog};
use cgsim_des::fluid::{ActivityId, FluidModel, ResourceId};
use cgsim_des::rng::Rng;
use cgsim_des::{Context, Engine, EventHandler, EventKey, SimTime};
use cgsim_monitor::dashboard::SitePanel;
use cgsim_monitor::{JobOutcome, MetricsReport, MonitoringCollector};
use cgsim_platform::{NodeId, Platform, PlatformSpec, SiteId};
use cgsim_policies::{
    AllocationPolicy, CachePolicy, DataMovementPolicy, DataPolicyRegistry, GridInfo, GridView,
    PolicyRegistry, SiteLoad,
};
use cgsim_workload::{ideal_walltime, JobRecord, JobState, Trace};

use crate::config::{ComputeMode, ExecutionConfig};
use crate::results::SimulationResults;

/// Errors raised while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// The platform specification failed to validate/build.
    Platform(String),
    /// The requested allocation policy is not registered.
    UnknownPolicy(String),
    /// The requested data-movement policy is not registered.
    UnknownDataPolicy(String),
    /// The simulation was built without a required component.
    MissingComponent(&'static str),
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::Platform(msg) => write!(f, "platform error: {msg}"),
            SimulationError::UnknownPolicy(name) => write!(f, "unknown allocation policy: {name}"),
            SimulationError::UnknownDataPolicy(name) => {
                write!(f, "unknown data-movement policy: {name}")
            }
            SimulationError::MissingComponent(what) => {
                write!(f, "simulation builder is missing: {what}")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// Discrete events of the grid simulation.
#[derive(Debug, Clone, PartialEq)]
enum GridEvent {
    /// A job (by index into the trace) reaches its submission time.
    Submit(usize),
    /// The fluid network/CPU model predicts its next activity completion.
    FluidAdvance,
    /// A dedicated-core execution finishes (job index).
    ExecutionDone(usize),
    /// The scheduling/pilot overhead of a picked job elapses (job index); the
    /// job then starts staging its input (queue-time model, §4.2).
    PilotStart(usize),
}

/// Which phase of a job an in-flight fluid activity belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Input,
    Execute,
    Output,
}

/// Mutable per-job simulation state.
#[derive(Debug, Clone)]
struct JobRuntime {
    record: JobRecord,
    state: JobState,
    site: Option<SiteId>,
    retries: u32,
    submit_time: f64,
    assign_time: f64,
    start_time: f64,
    end_time: f64,
    staged_bytes: u64,
}

/// Mutable per-site simulation state (the receiver actor).
#[derive(Debug, Clone, Default)]
struct SiteState {
    available_cores: u64,
    queue: VecDeque<usize>,
    running: Vec<usize>,
}

/// The simulation model driven by the DES engine.
struct GridModel {
    platform: Platform,
    execution: ExecutionConfig,
    policy: Box<dyn AllocationPolicy>,
    data_policy: Box<dyn DataMovementPolicy>,
    jobs: Vec<JobRuntime>,
    sites: Vec<SiteState>,
    pending: VecDeque<usize>,
    rng: Rng,
    // Fluid model state.
    fluid: FluidModel,
    link_resources: Vec<ResourceId>,
    cpu_resources: Vec<ResourceId>,
    activity_map: HashMap<ActivityId, (usize, Phase)>,
    last_fluid_sync: SimTime,
    fluid_event: Option<EventKey>,
    // Data management state.
    catalog: ReplicaCatalog,
    caches: Vec<LruCache>,
    task_datasets: HashMap<u64, cgsim_data::DatasetId>,
    // Monitoring.
    collector: MonitoringCollector,
}

impl GridModel {
    fn new(
        platform: Platform,
        trace: &Trace,
        policy: Box<dyn AllocationPolicy>,
        data_policy: Box<dyn DataMovementPolicy>,
        execution: ExecutionConfig,
    ) -> Self {
        let mut fluid = FluidModel::new();
        let link_resources: Vec<ResourceId> = platform
            .links()
            .iter()
            .map(|l| fluid.add_resource(l.bandwidth_bps.max(1.0)))
            .collect();
        let cpu_resources: Vec<ResourceId> = platform
            .sites()
            .iter()
            .map(|s| {
                let capacity = (s.total_cores as f64 * platform.effective_speed(s.id)).max(1.0);
                fluid.add_resource(capacity)
            })
            .collect();
        let sites = platform
            .sites()
            .iter()
            .map(|s| SiteState {
                available_cores: s.total_cores,
                queue: VecDeque::new(),
                running: Vec::new(),
            })
            .collect();
        let caches = platform
            .sites()
            .iter()
            .map(|s| LruCache::new((s.storage_tb * 0.1 * 1e12) as u64))
            .collect();
        let site_names = platform.sites().iter().map(|s| s.name.clone()).collect();
        let collector = MonitoringCollector::new(site_names, execution.monitoring.clone());

        let jobs = trace
            .jobs
            .iter()
            .map(|record| JobRuntime {
                record: record.clone(),
                state: JobState::Pending,
                site: None,
                retries: 0,
                submit_time: record.submit_time,
                assign_time: 0.0,
                start_time: 0.0,
                end_time: 0.0,
                staged_bytes: 0,
            })
            .collect();

        GridModel {
            rng: Rng::new(execution.seed),
            platform,
            execution,
            policy,
            data_policy,
            jobs,
            sites,
            pending: VecDeque::new(),
            fluid,
            link_resources,
            cpu_resources,
            activity_map: HashMap::new(),
            last_fluid_sync: SimTime::ZERO,
            fluid_event: None,
            catalog: ReplicaCatalog::new(),
            caches,
            task_datasets: HashMap::new(),
            collector,
        }
    }

    // ----- monitoring helpers -------------------------------------------------

    fn record(&mut self, now: SimTime, idx: usize, state: JobState) {
        let job_id = self.jobs[idx].record.id;
        let (site_index, avail, queued) = match self.jobs[idx].site {
            Some(site) => (
                Some(site.index()),
                self.sites[site.index()].available_cores,
                self.sites[site.index()].queue.len() as u64,
            ),
            None => (None, 0, self.pending.len() as u64),
        };
        self.collector
            .record_transition(now.as_secs(), job_id, state, site_index, avail, queued);
    }

    // ----- data management helpers --------------------------------------------

    fn task_dataset(&mut self, idx: usize) -> cgsim_data::DatasetId {
        let record = &self.jobs[idx].record;
        let task = record.task_id.0;
        let files = record.input_files;
        let bytes = record.input_bytes;
        if let Some(&ds) = self.task_datasets.get(&task) {
            return ds;
        }
        let ds = self
            .catalog
            .register(&format!("task-{task}-input"), files, bytes, NodeId::MainServer);
        self.task_datasets.insert(task, ds);
        ds
    }

    // ----- fluid model helpers -------------------------------------------------

    /// Advances the fluid model to `now` and returns the (job, phase) pairs
    /// whose activity completed.
    fn advance_fluid(&mut self, now: SimTime) -> Vec<(usize, Phase)> {
        let dt = now.saturating_sub(self.last_fluid_sync);
        self.last_fluid_sync = now;
        let finished = self.fluid.advance(dt);
        finished
            .into_iter()
            .filter_map(|aid| self.activity_map.remove(&aid))
            .collect()
    }

    /// (Re)schedules the next fluid completion event.
    fn reschedule_fluid(&mut self, ctx: &mut Context<'_, GridEvent>) {
        if let Some(key) = self.fluid_event.take() {
            ctx.cancel(key);
        }
        if let Some(dt) = self.fluid.time_to_next_completion() {
            self.fluid_event = Some(ctx.schedule_in(dt, GridEvent::FluidAdvance));
        }
    }

    fn route_resources(&self, from: NodeId, to: NodeId) -> Vec<ResourceId> {
        self.platform
            .route(from, to)
            .links
            .iter()
            .map(|l| self.link_resources[l.index()])
            .collect()
    }

    // ----- dispatch (main server / sender actor) -------------------------------

    fn grid_view(&mut self, now: SimTime, idx: usize) -> GridView {
        let dataset = self.task_dataset(idx);
        let sites = self
            .platform
            .sites()
            .iter()
            .map(|s| {
                let state = &self.sites[s.id.index()];
                let has_replica = self.catalog.has_replica(dataset, NodeId::Site(s.id))
                    || self.caches[s.id.index()].contains(dataset);
                SiteLoad {
                    site: s.id,
                    available_cores: state.available_cores,
                    queued_jobs: state.queue.len() as u64,
                    running_jobs: state.running.len() as u64,
                    finished_jobs: self.collector.site_counters(s.id.index()).finished,
                    has_input_replica: has_replica,
                }
            })
            .collect();
        GridView {
            now_s: now.as_secs(),
            sites,
            pending_jobs: self.pending.len() as u64,
        }
    }

    /// Asks the allocation policy for a site; dispatches or parks the job.
    fn dispatch(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        let view = self.grid_view(now, idx);
        let decision = self.policy.assign_job(&self.jobs[idx].record, &view);
        match decision {
            Some(site) if site.index() < self.sites.len() => {
                self.jobs[idx].site = Some(site);
                self.jobs[idx].assign_time = now.as_secs();
                self.jobs[idx].state = JobState::Assigned;
                self.record(now, idx, JobState::Assigned);
                self.sites[site.index()].queue.push_back(idx);
                self.try_start_site(site, ctx);
            }
            _ => {
                self.jobs[idx].site = None;
                self.jobs[idx].state = JobState::Pending;
                self.record(now, idx, JobState::Pending);
                self.pending.push_back(idx);
            }
        }
    }

    /// Re-examines the pending list (called whenever resources free up).
    fn drain_pending(&mut self, ctx: &mut Context<'_, GridEvent>) {
        if self.pending.is_empty() {
            return;
        }
        let waiting: Vec<usize> = self.pending.drain(..).collect();
        for idx in waiting {
            self.dispatch(idx, ctx);
        }
    }

    // ----- site receiver actor --------------------------------------------------

    /// Starts queued jobs at `site` while cores are available (FIFO). Each
    /// picked job first pays the site's scheduling/pilot overhead (the
    /// queue-time model of §4.2) with its cores already reserved, then begins
    /// staging its input.
    fn try_start_site(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        loop {
            let Some(&front) = self.sites[site.index()].queue.front() else {
                break;
            };
            let needed = self.jobs[front].record.cores as u64;
            if self.sites[site.index()].available_cores < needed {
                break;
            }
            self.sites[site.index()].queue.pop_front();
            self.sites[site.index()].available_cores -= needed;
            self.sites[site.index()].running.push(front);

            let total_cores = self.platform.site(site).total_cores.max(1);
            let busy_fraction =
                1.0 - self.sites[site.index()].available_cores as f64 / total_cores as f64;
            let delay = self.execution.queue_model.dispatch_delay(
                self.sites[site.index()].queue.len() as u64,
                busy_fraction,
            );
            if delay > 0.0 {
                ctx.schedule_in(SimTime::from_secs(delay), GridEvent::PilotStart(front));
            } else {
                self.start_staging(front, site, ctx);
            }
        }
    }

    /// Begins input staging for a job whose cores were just allocated.
    fn start_staging(&mut self, idx: usize, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        self.jobs[idx].start_time = now.as_secs();
        let dataset = self.task_dataset(idx);
        let destination = NodeId::Site(site);

        // Cache lookup counts as a hit even when the catalog also knows about
        // the replica, keeping cache statistics meaningful.
        let cache_hit = self.caches[site.index()].lookup(dataset);
        if cache_hit || self.catalog.has_replica(dataset, destination) {
            self.begin_execution(idx, site, ctx);
            return;
        }

        // The data-movement policy may override the replica source; otherwise
        // the configured source-selection strategy plans the transfer.
        let candidates: Vec<NodeId> = self.catalog.replicas(dataset).collect();
        let source = match self
            .data_policy
            .select_source(&self.jobs[idx].record, site, &candidates)
        {
            Some(chosen) if chosen == destination => {
                self.begin_execution(idx, site, ctx);
                return;
            }
            Some(chosen) => chosen,
            None => {
                let plan = plan_staging(
                    &[dataset],
                    destination,
                    &self.catalog,
                    &self.platform,
                    self.execution.source_selection,
                );
                if plan.is_local() {
                    self.begin_execution(idx, site, ctx);
                    return;
                }
                plan.transfers[0].from
            }
        };

        self.jobs[idx].state = JobState::Staging;
        self.record(now, idx, JobState::Staging);
        let bytes = self.jobs[idx].record.input_bytes;
        self.jobs[idx].staged_bytes += bytes;
        let resources = self.route_resources(source, destination);
        // Latency is added as a constant amount of "extra bytes" at the
        // bottleneck rate; for WAN transfers of GB-scale inputs it is
        // negligible, which matches the fluid approximation of SimGrid.
        let completed = self.advance_fluid(now);
        let activity = self.fluid.add_activity(bytes as f64, &resources);
        self.activity_map.insert(activity, (idx, Phase::Input));
        self.handle_completed_activities(completed, ctx);
        self.reschedule_fluid(ctx);
    }

    /// Starts the execution phase (cores already held).
    fn begin_execution(&mut self, idx: usize, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        self.jobs[idx].state = JobState::Running;
        self.record(now, idx, JobState::Running);

        // Cache / replicate the input at the execution site for later jobs of
        // the same task, subject to the data-movement policy's admission
        // decision.
        if self.execution.cache_datasets
            && self
                .data_policy
                .cache_decision(&self.jobs[idx].record, site)
                == CachePolicy::CacheAtSite
        {
            let dataset = self.task_dataset(idx);
            let bytes = self.catalog.dataset(dataset).bytes;
            self.caches[site.index()].insert(dataset, bytes);
            self.catalog.add_replica(dataset, NodeId::Site(site));
        }

        let record = &self.jobs[idx].record;
        match self.execution.compute_mode {
            ComputeMode::DedicatedCores => {
                let speed = self.platform.effective_speed(site);
                let walltime = ideal_walltime(record.work_hs23, record.cores, speed);
                ctx.schedule_in(SimTime::from_secs(walltime), GridEvent::ExecutionDone(idx));
            }
            ComputeMode::TimeShared => {
                let resource = self.cpu_resources[site.index()];
                let weight = record.cores as f64;
                let amount =
                    record.work_hs23 / cgsim_workload::parallel_efficiency(record.cores);
                let now_t = ctx.now();
                let completed = self.advance_fluid(now_t);
                let activity = self
                    .fluid
                    .add_weighted_activity(amount, &[resource], weight);
                self.activity_map.insert(activity, (idx, Phase::Execute));
                self.handle_completed_activities(completed, ctx);
                self.reschedule_fluid(ctx);
            }
        }
    }

    /// Handles the end of the execution phase (failure draw, output stage-out).
    fn finish_execution(&mut self, idx: usize, ctx: &mut Context<'_, GridEvent>) {
        let site = self.jobs[idx].site.expect("running job has a site");
        let failed = self.rng.chance(self.execution.failure_probability);
        if failed {
            if self.jobs[idx].retries < self.execution.max_retries {
                // Release resources and resubmit to the main server.
                self.jobs[idx].retries += 1;
                self.release_cores(idx, site);
                let now = ctx.now();
                self.jobs[idx].site = None;
                self.jobs[idx].state = JobState::Pending;
                self.record(now, idx, JobState::Pending);
                self.dispatch(idx, ctx);
                self.after_release(site, ctx);
                return;
            }
            self.finalize(idx, JobState::Failed, ctx);
            return;
        }
        let record = &self.jobs[idx].record;
        if self.execution.enable_output_transfers && record.output_bytes > 0 {
            let bytes = record.output_bytes;
            let destination = NodeId::MainServer;
            let source = NodeId::Site(site);
            let resources = self.route_resources(source, destination);
            let now = ctx.now();
            let completed = self.advance_fluid(now);
            let activity = self.fluid.add_activity(bytes as f64, &resources);
            self.activity_map.insert(activity, (idx, Phase::Output));
            self.handle_completed_activities(completed, ctx);
            self.reschedule_fluid(ctx);
        } else {
            self.finalize(idx, JobState::Finished, ctx);
        }
    }

    fn release_cores(&mut self, idx: usize, site: SiteId) {
        let cores = self.jobs[idx].record.cores as u64;
        let state = &mut self.sites[site.index()];
        state.available_cores += cores;
        state.running.retain(|&j| j != idx);
    }

    /// Records the terminal state, outcome, and frees resources.
    fn finalize(&mut self, idx: usize, state: JobState, ctx: &mut Context<'_, GridEvent>) {
        let now = ctx.now();
        let site = self.jobs[idx].site.expect("terminal job has a site");
        self.release_cores(idx, site);
        self.jobs[idx].state = state;
        self.jobs[idx].end_time = now.as_secs();
        self.record(now, idx, state);

        let job = &self.jobs[idx];
        let site_name = self.platform.site(site).name.clone();
        let outcome = JobOutcome {
            id: job.record.id,
            kind: job.record.kind,
            cores: job.record.cores,
            work_hs23: job.record.work_hs23,
            site: site_name,
            submit_time: job.submit_time,
            assign_time: job.assign_time,
            start_time: job.start_time,
            end_time: job.end_time,
            final_state: state,
            staged_bytes: job.staged_bytes,
            walltime: job.end_time - job.start_time,
            queue_time: job.start_time - job.submit_time,
            hist_walltime: job.record.hist_walltime,
            hist_queue_time: job.record.hist_queue_time,
        };
        self.collector.record_outcome(outcome);

        let view = self.grid_view(now, idx);
        let record = self.jobs[idx].record.clone();
        self.policy.on_job_completed(&record, site, &view);

        self.after_release(site, ctx);
    }

    /// Called after any resource release: start queued work and reconsider
    /// the pending list (paper §3.2).
    fn after_release(&mut self, site: SiteId, ctx: &mut Context<'_, GridEvent>) {
        self.try_start_site(site, ctx);
        self.drain_pending(ctx);
    }

    fn handle_completed_activities(
        &mut self,
        completed: Vec<(usize, Phase)>,
        ctx: &mut Context<'_, GridEvent>,
    ) {
        for (idx, phase) in completed {
            match phase {
                Phase::Input => {
                    let site = self.jobs[idx].site.expect("staging job has a site");
                    self.begin_execution(idx, site, ctx);
                }
                Phase::Execute => {
                    self.finish_execution(idx, ctx);
                }
                Phase::Output => {
                    self.finalize(idx, JobState::Finished, ctx);
                }
            }
        }
    }

    /// Builds the final per-site dashboard panels.
    fn site_panels(&self) -> Vec<SitePanel> {
        self.platform
            .sites()
            .iter()
            .map(|s| {
                let state = &self.sites[s.id.index()];
                let counters = self.collector.site_counters(s.id.index());
                SitePanel {
                    site: s.name.clone(),
                    total_cores: s.total_cores,
                    busy_cores: s.total_cores - state.available_cores,
                    queued_jobs: state.queue.len() as u64,
                    running_jobs: state.running.len() as u64,
                    finished_jobs: counters.finished,
                    running_sample: state
                        .running
                        .iter()
                        .take(10)
                        .map(|&j| (self.jobs[j].record.id.0, self.jobs[j].record.cores))
                        .collect(),
                }
            })
            .collect()
    }
}

impl EventHandler<GridEvent> for GridModel {
    fn handle(&mut self, ctx: &mut Context<'_, GridEvent>, event: GridEvent) {
        match event {
            GridEvent::Submit(idx) => {
                let now = ctx.now();
                self.jobs[idx].submit_time = now.as_secs();
                self.record(now, idx, JobState::Pending);
                self.dispatch(idx, ctx);
            }
            GridEvent::FluidAdvance => {
                self.fluid_event = None;
                let now = ctx.now();
                let completed = self.advance_fluid(now);
                self.handle_completed_activities(completed, ctx);
                self.reschedule_fluid(ctx);
            }
            GridEvent::ExecutionDone(idx) => {
                self.finish_execution(idx, ctx);
            }
            GridEvent::PilotStart(idx) => {
                let site = self.jobs[idx]
                    .site
                    .expect("job waiting for its pilot has a site");
                self.start_staging(idx, site, ctx);
            }
        }
    }
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder {
    platform: Option<Platform>,
    trace: Option<Trace>,
    policy: Option<Box<dyn AllocationPolicy>>,
    policy_name: Option<String>,
    registry: PolicyRegistry,
    data_policy: Option<Box<dyn DataMovementPolicy>>,
    data_registry: DataPolicyRegistry,
    execution: ExecutionConfig,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            platform: None,
            trace: None,
            policy: None,
            policy_name: None,
            registry: PolicyRegistry::with_builtins(),
            data_policy: None,
            data_registry: DataPolicyRegistry::with_builtins(),
            execution: ExecutionConfig::default(),
        }
    }
}

impl SimulationBuilder {
    /// Uses an already-built platform.
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Builds the platform from a specification.
    pub fn platform_spec(mut self, spec: &PlatformSpec) -> Result<Self, SimulationError> {
        let platform =
            Platform::build(spec).map_err(|e| SimulationError::Platform(e.to_string()))?;
        self.platform = Some(platform);
        Ok(self)
    }

    /// Sets the workload trace.
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Uses a custom allocation-policy instance (a "plugin").
    pub fn policy(mut self, policy: Box<dyn AllocationPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Selects an allocation policy by registry name (overrides the name in
    /// the execution config).
    pub fn policy_name(mut self, name: impl Into<String>) -> Self {
        self.policy_name = Some(name.into());
        self
    }

    /// Replaces the policy registry (to expose user-registered plugins).
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Uses a custom data-movement policy instance (replica-source selection
    /// and cache admission).
    pub fn data_policy(mut self, policy: Box<dyn DataMovementPolicy>) -> Self {
        self.data_policy = Some(policy);
        self
    }

    /// Replaces the data-movement policy registry (to expose user-registered
    /// data plugins referenced by name in the execution configuration).
    pub fn data_registry(mut self, registry: DataPolicyRegistry) -> Self {
        self.data_registry = registry;
        self
    }

    /// Sets the execution configuration.
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Result<Simulation, SimulationError> {
        let platform = self
            .platform
            .ok_or(SimulationError::MissingComponent("platform"))?;
        let trace = self
            .trace
            .ok_or(SimulationError::MissingComponent("trace"))?;
        let policy = match self.policy {
            Some(p) => p,
            None => {
                let name = self
                    .policy_name
                    .clone()
                    .unwrap_or_else(|| self.execution.allocation_policy.clone());
                self.registry
                    .create(&name, self.execution.seed)
                    .ok_or(SimulationError::UnknownPolicy(name))?
            }
        };
        let data_policy = match self.data_policy {
            Some(p) => p,
            None => {
                let name = self.execution.data_movement_policy.clone();
                self.data_registry
                    .create(&name, self.execution.seed)
                    .ok_or(SimulationError::UnknownDataPolicy(name))?
            }
        };
        Ok(Simulation {
            platform,
            trace,
            policy,
            data_policy,
            execution: self.execution,
        })
    }

    /// Builds and immediately runs the simulation.
    pub fn run(self) -> Result<SimulationResults, SimulationError> {
        Ok(self.build()?.run())
    }
}

/// A fully configured simulation, ready to run.
pub struct Simulation {
    platform: Platform,
    trace: Trace,
    policy: Box<dyn AllocationPolicy>,
    data_policy: Box<dyn DataMovementPolicy>,
    execution: ExecutionConfig,
}

impl Simulation {
    /// Starts building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Executes the simulation to completion and returns the results.
    pub fn run(mut self) -> SimulationResults {
        let started = std::time::Instant::now();
        let policy_name = self.policy.name().to_string();

        // Hand the static grid description to the policy (the paper's
        // getResourceInformation hook).
        let info = GridInfo::from_platform(&self.platform);
        self.policy.get_resource_information(&info);

        let mut engine: Engine<GridEvent> = Engine::new();
        if let Some(horizon) = self.execution.horizon_s {
            engine = engine.with_horizon(SimTime::from_secs(horizon));
        }
        for (idx, job) in self.trace.jobs.iter().enumerate() {
            engine.schedule_at(SimTime::from_secs(job.submit_time), GridEvent::Submit(idx));
        }

        let mut model = GridModel::new(
            self.platform,
            &self.trace,
            self.policy,
            self.data_policy,
            self.execution,
        );
        let report = engine.run(&mut model);

        let site_panels = model.site_panels();
        let (events, outcomes) = model.collector.into_parts();
        let metrics = MetricsReport::from_outcomes(&outcomes);
        SimulationResults {
            outcomes,
            events,
            metrics,
            makespan_s: report.end_time.as_secs(),
            engine_events: report.events_processed,
            wall_clock_s: started.elapsed().as_secs_f64(),
            site_panels,
            policy: policy_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::{example_platform, single_site_platform};
    use cgsim_workload::{JobKind, TraceConfig, TraceGenerator};

    fn run_with(policy: &str, jobs: usize, seed: u64) -> SimulationResults {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(jobs, seed)).generate(&platform);
        Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name(policy)
            .execution(ExecutionConfig::default())
            .run()
            .unwrap()
    }

    #[test]
    fn all_jobs_reach_a_terminal_state() {
        let results = run_with("least-loaded", 200, 11);
        assert_eq!(results.outcomes.len(), 200);
        assert!(results.outcomes.iter().all(|o| o.final_state.is_terminal()));
        assert_eq!(results.metrics.total_jobs, 200);
        assert_eq!(results.metrics.failed_jobs, 0);
        assert!(results.makespan_s > 0.0);
        assert!(results.engine_events >= 200);
    }

    #[test]
    fn timing_invariants_hold_for_every_job() {
        let results = run_with("least-loaded", 150, 3);
        for o in &results.outcomes {
            assert!(o.assign_time >= o.submit_time - 1e-9, "{o:?}");
            assert!(o.start_time >= o.assign_time - 1e-9, "{o:?}");
            assert!(o.end_time >= o.start_time, "{o:?}");
            assert!(o.walltime > 0.0);
            assert!(o.queue_time >= 0.0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_with("least-loaded", 100, 7);
        let b = run_with("least-loaded", 100, 7);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.site, y.site);
            assert!((x.walltime - y.walltime).abs() < 1e-9);
            assert!((x.end_time - y.end_time).abs() < 1e-9);
        }
        assert_eq!(a.engine_events, b.engine_events);
    }

    #[test]
    fn different_policies_produce_different_schedules() {
        let a = run_with("least-loaded", 300, 5);
        let b = run_with("round-robin", 300, 5);
        let sites_a: Vec<_> = a.outcomes.iter().map(|o| o.site.clone()).collect();
        let sites_b: Vec<_> = b.outcomes.iter().map(|o| o.site.clone()).collect();
        assert_ne!(sites_a, sites_b);
        assert_eq!(a.policy, "least-loaded");
        assert_eq!(b.policy, "round-robin");
    }

    #[test]
    fn historical_policy_respects_trace_assignments() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(120, 2)).generate(&platform);
        let expected: Vec<_> = trace.jobs.iter().map(|j| j.hist_site.clone()).collect();
        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("historical-panda")
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        // Outcomes are not necessarily in submit order; join by job id.
        let by_id: std::collections::HashMap<_, _> = results
            .outcomes
            .iter()
            .map(|o| (o.id, o.site.clone()))
            .collect();
        let platform_trace =
            TraceGenerator::new(TraceConfig::with_jobs(120, 2)).generate(&platform);
        for (job, hist) in platform_trace.jobs.iter().zip(expected) {
            assert_eq!(by_id[&job.id], hist);
        }
    }

    #[test]
    fn event_dataset_has_table1_shape() {
        let results = run_with("least-loaded", 50, 13);
        assert!(!results.events.is_empty());
        // Every terminal job produced a finished event with its site set.
        let finished_events = results
            .events
            .iter()
            .filter(|e| e.state == JobState::Finished)
            .count();
        assert_eq!(finished_events, 50);
        for e in &results.events {
            if e.state == JobState::Finished {
                assert!(!e.site.is_empty());
                assert!(e.assigned_jobs >= e.finished_jobs);
            }
        }
    }

    #[test]
    fn failure_injection_and_retries() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(200, 21)).generate(&platform);
        let mut exec = ExecutionConfig::default();
        exec.failure_probability = 0.3;
        exec.max_retries = 0;
        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("least-loaded")
            .execution(exec)
            .run()
            .unwrap();
        assert!(results.metrics.failed_jobs > 20);
        assert!(results.metrics.failure_rate > 0.1);
        assert!(results.metrics.failure_rate < 0.6);
        // With retries allowed, the failure rate drops substantially.
        let platform2 = example_platform();
        let trace2 = TraceGenerator::new(TraceConfig::with_jobs(200, 21)).generate(&platform2);
        let mut exec2 = ExecutionConfig::default();
        exec2.failure_probability = 0.3;
        exec2.max_retries = 3;
        let retried = Simulation::builder()
            .platform_spec(&platform2)
            .unwrap()
            .trace(trace2)
            .policy_name("least-loaded")
            .execution(exec2)
            .run()
            .unwrap();
        assert!(retried.metrics.failure_rate < results.metrics.failure_rate);
        assert_eq!(retried.outcomes.len(), 200);
    }

    #[test]
    fn single_site_contention_causes_queueing() {
        // 40 cores, many concurrent single-core jobs -> some must queue.
        let platform = single_site_platform(40, 10.0);
        let mut cfg = TraceConfig::with_jobs(200, 4);
        cfg.submission_window_s = 0.0; // all at t=0
        cfg.multicore_fraction = 0.0;
        let trace = TraceGenerator::new(cfg).generate(&platform);
        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("least-loaded")
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        let queued = results
            .outcomes
            .iter()
            .filter(|o| o.queue_time > 1.0)
            .count();
        assert!(queued > 100, "expected significant queueing, got {queued}");
        // Utilisation of the single site should be high.
        assert!(results.metrics.cpu_utilisation(40) > 0.5);
    }

    #[test]
    fn dataset_caching_reduces_staged_bytes() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(150, 17)).generate(&platform);
        let mut cached_exec = ExecutionConfig::default();
        cached_exec.cache_datasets = true;
        let mut uncached_exec = ExecutionConfig::default();
        uncached_exec.cache_datasets = false;
        let cached = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace.clone())
            .policy_name("historical-panda")
            .execution(cached_exec)
            .run()
            .unwrap();
        let uncached = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("historical-panda")
            .execution(uncached_exec)
            .run()
            .unwrap();
        assert!(cached.metrics.staged_bytes < uncached.metrics.staged_bytes);
    }

    #[test]
    fn time_shared_mode_completes_all_jobs() {
        let platform = single_site_platform(64, 10.0);
        let mut cfg = TraceConfig::with_jobs(80, 6);
        cfg.multicore_fraction = 0.5;
        let trace = TraceGenerator::new(cfg).generate(&platform);
        let mut exec = ExecutionConfig::default();
        exec.compute_mode = ComputeMode::TimeShared;
        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("least-loaded")
            .execution(exec)
            .run()
            .unwrap();
        assert_eq!(results.outcomes.len(), 80);
        assert!(results.outcomes.iter().all(|o| o.succeeded()));
    }

    #[test]
    fn custom_plugin_policy_is_honoured() {
        struct PinToSite(SiteId);
        impl AllocationPolicy for PinToSite {
            fn name(&self) -> &str {
                "pin"
            }
            fn assign_job(&mut self, _job: &JobRecord, _view: &GridView) -> Option<SiteId> {
                Some(self.0)
            }
        }
        let platform_spec = example_platform();
        let platform = Platform::build(&platform_spec).unwrap();
        let bnl = platform.site_by_name("BNL").unwrap();
        let trace =
            TraceGenerator::new(TraceConfig::with_jobs(60, 19)).generate(&platform_spec);
        let results = Simulation::builder()
            .platform(platform)
            .trace(trace)
            .policy(Box::new(PinToSite(bnl)))
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        assert!(results.outcomes.iter().all(|o| o.site == "BNL"));
        assert_eq!(results.policy, "pin");
    }

    #[test]
    fn builder_reports_missing_components_and_unknown_policies() {
        let err = Simulation::builder().run().unwrap_err();
        assert!(matches!(err, SimulationError::MissingComponent("platform")));
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(5, 1)).generate(&platform);
        let err = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("does-not-exist")
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::UnknownPolicy(_)));
        assert!(err.to_string().contains("does-not-exist"));
    }

    #[test]
    fn horizon_truncates_the_run() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(200, 23)).generate(&platform);
        let mut exec = ExecutionConfig::default();
        exec.horizon_s = Some(60.0);
        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("least-loaded")
            .execution(exec)
            .run()
            .unwrap();
        assert!(results.outcomes.len() < 200);
        assert!(results.makespan_s <= 60.0 + 1e-6);
    }

    #[test]
    fn monitoring_can_be_disabled() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(40, 29)).generate(&platform);
        let mut exec = ExecutionConfig::default();
        exec.monitoring = cgsim_monitor::MonitoringConfig::disabled();
        let results = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("least-loaded")
            .execution(exec)
            .run()
            .unwrap();
        assert!(results.events.is_empty());
        assert_eq!(results.outcomes.len(), 40);
    }

    #[test]
    fn queue_model_overhead_delays_job_starts() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(120, 37)).generate(&platform);
        let baseline = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace.clone())
            .policy_name("least-loaded")
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        let mut exec = ExecutionConfig::default();
        exec.queue_model = crate::queue_model::QueueModel::constant(300.0);
        let delayed = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("least-loaded")
            .execution(exec)
            .run()
            .unwrap();
        let mean = |r: &SimulationResults| {
            r.metrics.queue_time.as_ref().map(|s| s.mean).unwrap_or(0.0)
        };
        // Every job pays the 300 s pilot overhead on top of whatever core
        // contention it already saw.
        assert!(
            mean(&delayed) >= mean(&baseline) + 299.0,
            "queue model ignored: baseline {} vs delayed {}",
            mean(&baseline),
            mean(&delayed)
        );
        assert_eq!(delayed.outcomes.len(), 120);
        assert!(delayed.outcomes.iter().all(|o| o.final_state.is_terminal()));
    }

    #[test]
    fn never_cache_data_policy_stages_more_bytes() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(150, 43)).generate(&platform);
        let mut never_exec = ExecutionConfig::default();
        never_exec.data_movement_policy = "never-cache".to_string();
        let never = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace.clone())
            .policy_name("historical-panda")
            .execution(never_exec)
            .run()
            .unwrap();
        let default = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("historical-panda")
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        // Without cache admission every job of a task re-stages its input.
        assert!(
            never.metrics.staged_bytes > default.metrics.staged_bytes,
            "never-cache {} vs default {}",
            never.metrics.staged_bytes,
            default.metrics.staged_bytes
        );
    }

    #[test]
    fn unknown_data_policy_is_reported() {
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(5, 3)).generate(&platform);
        let mut exec = ExecutionConfig::default();
        exec.data_movement_policy = "no-such-data-policy".to_string();
        let err = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .execution(exec)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimulationError::UnknownDataPolicy(_)));
        assert!(err.to_string().contains("no-such-data-policy"));
    }

    #[test]
    fn custom_data_policy_instance_is_honoured() {
        use cgsim_policies::{CachePolicy, DataMovementPolicy};
        struct NoCache;
        impl DataMovementPolicy for NoCache {
            fn name(&self) -> &str {
                "test-no-cache"
            }
            fn cache_decision(&mut self, _job: &JobRecord, _site: SiteId) -> CachePolicy {
                CachePolicy::NoCache
            }
        }
        let platform = example_platform();
        let trace = TraceGenerator::new(TraceConfig::with_jobs(100, 47)).generate(&platform);
        let custom = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace.clone())
            .policy_name("historical-panda")
            .data_policy(Box::new(NoCache))
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        let default = Simulation::builder()
            .platform_spec(&platform)
            .unwrap()
            .trace(trace)
            .policy_name("historical-panda")
            .execution(ExecutionConfig::default())
            .run()
            .unwrap();
        assert!(custom.metrics.staged_bytes >= default.metrics.staged_bytes);
    }

    #[test]
    fn multicore_jobs_use_more_cores_of_the_site() {
        let results = run_with("least-loaded", 100, 31);
        assert!(results
            .outcomes
            .iter()
            .any(|o| o.kind == JobKind::MultiCore && o.cores == 8));
        // Dashboard panels reflect the platform.
        assert_eq!(results.site_panels.len(), 4);
        assert!(results.site_panels.iter().all(|p| p.busy_cores == 0));
    }
}
