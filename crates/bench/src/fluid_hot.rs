//! Fluid-solver hot-path scenarios shared by `benches/fluid.rs` and the CI
//! perf-gate binary (`src/bin/fluid_perf_gate.rs`).
//!
//! Three topologies probe the three regimes of the incremental max-min
//! solver:
//!
//! * **Contended** — 32 shared links with every activity crossing two of
//!   them: the whole graph is one connected component with *no* single
//!   bottleneck (no link is crossed by every activity), so every churn step
//!   re-runs a full progressive-filling pass. This is the dense control: it
//!   measures the slow path plus the incremental machinery's overhead, and
//!   must stay within noise of the committed `BENCH_fluid.json` baseline.
//! * **Sparse** — many independent two-link "islands" of
//!   [`ISLAND_ACTS`] activities each: one churn step dirties a single
//!   island, so the per-recompute cost is ~component-sized and independent
//!   of the total concurrency N. This is the common production shape (one
//!   transfer finishes, one starts, most of the grid untouched) and the case
//!   the ≥5× @5k speedup target in ISSUE 4 refers to.
//! * **Single-bottleneck** — 32 fat uplinks all feeding one thin backbone
//!   link crossed by every activity (the checkpoint-burst / correlated-storm
//!   shape). The component is as dense as the contended one, but the
//!   backbone is a provable single bottleneck, so the total-work fast path
//!   solves it in O(log n) per churn step: equal-weight churn keeps the
//!   backbone's fair share bitwise-stable and `ensure_shares` only rates the
//!   freshly admitted slot — no per-slot filling at all. The contrast
//!   between `dense contended` and `single_bottleneck_churn` rows in
//!   `BENCH_fluid.json` is exactly the win of that classification.
//!
//! Keeping the builders here (not in the bench file) means the CI gate times
//! exactly the scenario the committed baseline numbers describe.

use cgsim_des::fluid::{ActivityId, FluidModel, ResourceId};

/// Number of shared links in the contended topology. Every activity crosses
/// two of them, so each link carries ~2N/32 concurrent flows and progressive
/// filling needs several freezing rounds per recomputation.
pub const CONTENDED_LINKS: usize = 32;

/// Activities per independent island in the sparse topology.
pub const ISLAND_ACTS: usize = 4;

/// Route of contended activity `i`: two (occasionally one) of the 32 links.
pub fn contended_route(links: &[ResourceId], i: usize) -> Vec<ResourceId> {
    let a = links[i % CONTENDED_LINKS];
    let b = links[(i * 7 + 3) % CONTENDED_LINKS];
    if a == b {
        vec![a]
    } else {
        vec![a, b]
    }
}

/// Builds the contended topology pre-populated with `n` activities.
pub fn build_contended(n: usize) -> (FluidModel, Vec<ResourceId>, Vec<ActivityId>) {
    let mut m = FluidModel::new();
    let links: Vec<ResourceId> = (0..CONTENDED_LINKS)
        .map(|i| m.add_resource(1e9 + (i as f64) * 1e7))
        .collect();
    let ids: Vec<ActivityId> = (0..n)
        .map(|i| m.add_activity(1e12, &contended_route(&links, i)))
        .collect();
    (m, links, ids)
}

/// `steps` retire/admit/recompute cycles at steady concurrency on the
/// contended topology. `step_base` carries the admission counter across
/// iterations to keep the route mix rotating. Returns an accumulator so the
/// work cannot be optimised away.
pub fn contended_churn(
    m: &mut FluidModel,
    links: &[ResourceId],
    ids: &mut [ActivityId],
    step_base: &mut usize,
    steps: usize,
) -> f64 {
    let mut acc = 0.0;
    for _ in 0..steps {
        let step = *step_base;
        *step_base += 1;
        let slot = step % ids.len();
        m.remove_activity(ids[slot]);
        ids[slot] = m.add_activity(1e12, &contended_route(links, ids.len() + step));
        // Forces a share recomputation + completion query, as the event loop
        // does on every admit.
        acc += m.time_to_next_completion().map_or(0.0, |t| t.as_secs());
    }
    acc
}

/// Route of a sparse-island activity: one of the island's two links, or both.
pub fn sparse_route(links: &[ResourceId], island: usize, variant: usize) -> Vec<ResourceId> {
    let l0 = links[2 * island];
    let l1 = links[2 * island + 1];
    match variant % 3 {
        0 => vec![l0],
        1 => vec![l1],
        _ => vec![l0, l1],
    }
}

/// Builds the sparse topology: `n / ISLAND_ACTS` disjoint two-link islands
/// holding `n` activities in total.
pub fn build_sparse(n: usize) -> (FluidModel, Vec<ResourceId>, Vec<ActivityId>) {
    let islands = (n / ISLAND_ACTS).max(1);
    let mut m = FluidModel::new();
    let links: Vec<ResourceId> = (0..2 * islands)
        .map(|i| m.add_resource(1e9 + (i as f64) * 1e6))
        .collect();
    let ids: Vec<ActivityId> = (0..n)
        .map(|j| {
            let island = j % islands;
            m.add_activity(1e12, &sparse_route(&links, island, j / islands))
        })
        .collect();
    (m, links, ids)
}

/// `steps` sparse churn cycles: each step retires and re-admits one activity
/// inside a single island (1 change per recompute), leaving every other
/// component untouched — the incremental solver's sweet spot.
pub fn sparse_churn(
    m: &mut FluidModel,
    links: &[ResourceId],
    ids: &mut [ActivityId],
    step_base: &mut usize,
    steps: usize,
) -> f64 {
    let n = ids.len();
    let islands = links.len() / 2;
    let mut acc = 0.0;
    for _ in 0..steps {
        let step = *step_base;
        *step_base += 1;
        let victim = step % n;
        let island = victim % islands;
        m.remove_activity(ids[victim]);
        ids[victim] = m.add_activity(
            1e12,
            &sparse_route(links, island, step / n + victim / islands),
        );
        acc += m.time_to_next_completion().map_or(0.0, |t| t.as_secs());
    }
    acc
}

/// Number of fat uplinks feeding the backbone in the single-bottleneck
/// topology.
pub const BOTTLENECK_UPLINKS: usize = 32;

/// Route of single-bottleneck activity `i`: one fat uplink plus the shared
/// thin backbone (`links[0]`) every activity crosses.
pub fn single_bottleneck_route(links: &[ResourceId], i: usize) -> Vec<ResourceId> {
    vec![links[1 + i % BOTTLENECK_UPLINKS], links[0]]
}

/// Builds the single-bottleneck topology pre-populated with `n` activities:
/// `links[0]` is the thin backbone (the provable bottleneck), the rest are
/// fat uplinks that never saturate.
pub fn build_single_bottleneck(n: usize) -> (FluidModel, Vec<ResourceId>, Vec<ActivityId>) {
    let mut m = FluidModel::new();
    let mut links = vec![m.add_resource(1e9)];
    links.extend((0..BOTTLENECK_UPLINKS).map(|i| m.add_resource(1e12 + (i as f64) * 1e9)));
    let ids: Vec<ActivityId> = (0..n)
        .map(|i| m.add_activity(1e12, &single_bottleneck_route(&links, i)))
        .collect();
    (m, links, ids)
}

/// `steps` retire/admit/recompute cycles at steady concurrency on the
/// single-bottleneck topology. Equal-weight churn keeps the backbone's
/// weight sum — and therefore its fair share — bitwise-stable, so each
/// recompute takes the fast path's rate-only-the-fresh-slot branch.
pub fn single_bottleneck_churn(
    m: &mut FluidModel,
    links: &[ResourceId],
    ids: &mut [ActivityId],
    step_base: &mut usize,
    steps: usize,
) -> f64 {
    let mut acc = 0.0;
    for _ in 0..steps {
        let step = *step_base;
        *step_base += 1;
        let slot = step % ids.len();
        m.remove_activity(ids[slot]);
        ids[slot] = m.add_activity(1e12, &single_bottleneck_route(links, ids.len() + step));
        acc += m.time_to_next_completion().map_or(0.0, |t| t.as_secs());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bottleneck_churn_stays_on_the_fast_path() {
        let (mut m, links, mut ids) = build_single_bottleneck(256);
        let _ = m.time_to_next_completion();
        let (_, slow_before) = m.solver_stats();
        let mut step = 0;
        single_bottleneck_churn(&mut m, &links, &mut ids, &mut step, 200);
        assert_eq!(m.activity_count(), 256);
        let (fast, slow) = m.solver_stats();
        assert!(fast >= 200, "churn must be served by the fast path: {fast}");
        assert_eq!(slow, slow_before, "churn must never fall back to slow");
    }

    #[test]
    fn sparse_topology_is_island_disjoint() {
        let (mut m, links, ids) = build_sparse(64);
        assert_eq!(links.len(), 2 * (64 / ISLAND_ACTS));
        assert_eq!(ids.len(), 64);
        assert_eq!(m.activity_count(), 64);
        let _ = m.time_to_next_completion();
    }

    #[test]
    fn churn_keeps_concurrency_steady() {
        let (mut m, links, mut ids) = build_sparse(32);
        let mut step = 0;
        sparse_churn(&mut m, &links, &mut ids, &mut step, 100);
        assert_eq!(m.activity_count(), 32);

        let (mut m, links, mut ids) = build_contended(50);
        let mut step = 0;
        contended_churn(&mut m, &links, &mut ids, &mut step, 100);
        assert_eq!(m.activity_count(), 50);
    }
}
