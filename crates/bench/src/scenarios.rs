//! Experiment scenario definitions (workloads + parameter sweeps).

use cgsim_baseline::{BaselineResults, BaselineSimulator};
use cgsim_calibrate::{CalibrationReport, Calibrator, OptimizerKind};
use cgsim_core::{ExecutionConfig, Simulation, SimulationResults};
use cgsim_monitor::MonitoringConfig;
use cgsim_platform::presets::{single_site_platform, wlcg_platform};
use cgsim_platform::PlatformSpec;
use cgsim_workload::{Trace, TraceConfig, TraceGenerator};

/// Default seed used by every experiment (overridable per call).
pub const DEFAULT_SEED: u64 = 0x5C25;

/// Generates the trace used by the scalability experiments: PanDA-like jobs
/// with modest input sizes so runs stay compute-dominated (as in production).
pub fn scaling_trace(platform: &PlatformSpec, jobs: usize, seed: u64) -> Trace {
    let mut cfg = TraceConfig::with_jobs(jobs, seed);
    cfg.mean_file_bytes = 5e8;
    cfg.submission_window_s = 3600.0;
    TraceGenerator::new(cfg).generate(platform)
}

/// Runs one simulation with the given policy and monitoring setting.
pub fn run_simulation(
    platform: &PlatformSpec,
    trace: Trace,
    policy: &str,
    monitoring: bool,
) -> SimulationResults {
    let mut execution = ExecutionConfig::with_policy(policy);
    execution.monitoring = if monitoring {
        MonitoringConfig::default()
    } else {
        MonitoringConfig::disabled()
    };
    Simulation::builder()
        .platform_spec(platform)
        .expect("experiment platform is valid")
        .trace(trace)
        .policy_name(policy)
        .execution(execution)
        .run()
        .expect("experiment simulation is well-formed")
}

/// One point of the Fig. 4(a) job-scaling curve: a single site with the given
/// core count processing `jobs` jobs. Returns the full results (the caller
/// reads `wall_clock_s`).
pub fn job_scaling_point(jobs: usize, cores: u32, seed: u64) -> SimulationResults {
    let platform = single_site_platform(cores, 10.0);
    let trace = scaling_trace(&platform, jobs, seed);
    run_simulation(&platform, trace, "least-loaded", true)
}

/// One point of the Fig. 4(b) multi-site scaling curve: `sites` WLCG-like
/// sites with `jobs_per_site` jobs each. Dispatch follows PanDA's
/// capacity-proportional behaviour so every site participates, as in the
/// paper's multi-site scaling runs.
pub fn multisite_scaling_point(sites: usize, jobs_per_site: usize, seed: u64) -> SimulationResults {
    let platform = wlcg_platform(sites, seed);
    let trace = scaling_trace(&platform, sites * jobs_per_site, seed ^ 0xABCD);
    run_simulation(&platform, trace, "capacity-proportional", true)
}

/// Builds a platform of `sites` identical Tier-2-like sites (used by the
/// distributed-vs-single-site experiment so capacity scales exactly with the
/// site count).
pub fn uniform_platform(sites: usize, cores_per_site: u32) -> PlatformSpec {
    use cgsim_platform::spec::{LinkSpec, SiteSpec, Tier, MAIN_SERVER};
    let mut spec = PlatformSpec::new(format!("uniform-{sites}-sites"));
    for i in 0..sites {
        let name = format!("SITE-{i:02}");
        spec.sites
            .push(SiteSpec::uniform(&name, Tier::Tier2, cores_per_site, 10.0));
        spec.network
            .links
            .push(LinkSpec::new(name, MAIN_SERVER, 40.0, 20.0));
    }
    spec
}

/// Distributed-vs-single-site experiment (the abstract's 6× claim): a bursty
/// workload (all jobs submitted at t = 0) executed on a single site versus
/// spread across `sites` identical sites of the same size.
/// Returns `(single_site_makespan, distributed_makespan)`.
pub fn distributed_speedup(sites: usize, jobs: usize, seed: u64) -> (f64, f64) {
    // Modest per-site capacity and a moderate work spread so the makespan is
    // dominated by the backlog (which distribution removes) rather than by a
    // single extreme-tail job (which no amount of distribution can shorten).
    let cores_per_site = 200;
    let make_trace = |platform: &PlatformSpec| {
        let mut cfg = TraceConfig::with_jobs(jobs, seed ^ 0x77);
        cfg.mean_file_bytes = 2e8;
        cfg.submission_window_s = 0.0; // burst: the backlog dominates
        cfg.work_cv = 0.4;
        TraceGenerator::new(cfg).generate(platform)
    };

    let single_platform = uniform_platform(1, cores_per_site);
    let single = run_simulation(
        &single_platform,
        make_trace(&single_platform),
        "least-loaded",
        false,
    );

    let distributed_platform = uniform_platform(sites, cores_per_site);
    let distributed = run_simulation(
        &distributed_platform,
        make_trace(&distributed_platform),
        "least-loaded",
        false,
    );
    (single.metrics.makespan_s, distributed.metrics.makespan_s)
}

/// The Fig. 3 calibration experiment: calibrate per-site CPU speed on a
/// WLCG-like platform with `sites` sites and `jobs` historical jobs.
pub fn calibration_experiment(
    sites: usize,
    jobs: usize,
    optimizer: OptimizerKind,
    budget_per_site: usize,
    seed: u64,
) -> CalibrationReport {
    let platform = wlcg_platform(sites, seed);
    let mut cfg = TraceConfig::with_jobs(jobs, seed ^ 0xF1);
    cfg.mean_file_bytes = 1e8;
    let trace = TraceGenerator::new(cfg).generate(&platform);
    let calibrator = Calibrator {
        optimizer,
        budget_per_site,
        seed,
        parallel: true,
        ..Calibrator::default()
    };
    calibrator.calibrate(&platform, &trace)
}

/// Table 1: run a 4-site simulation and return the results whose event log is
/// sampled for the representative monitoring rows.
pub fn event_snapshot_run(jobs: usize, seed: u64) -> SimulationResults {
    let platform = cgsim_platform::presets::example_platform();
    let trace = scaling_trace(&platform, jobs, seed);
    run_simulation(&platform, trace, "least-loaded", true)
}

/// Fidelity ablation: the same trace through the coarse-grained baseline and
/// through CGSim. Returns `(baseline, cgsim)` results.
pub fn baseline_comparison(jobs: usize, seed: u64) -> (BaselineResults, SimulationResults) {
    let platform = wlcg_platform(10, seed);
    let mut cfg = TraceConfig::with_jobs(jobs, seed ^ 0x3C);
    cfg.mean_file_bytes = 1e8;
    let trace = TraceGenerator::new(cfg).generate(&platform);
    let baseline = BaselineSimulator::new().run(&platform, &trace);
    let cgsim = run_simulation(&platform, trace, "historical-panda", false);
    (baseline, cgsim)
}

/// Reads an experiment scale factor from the `CGSIM_SCALE` environment
/// variable (`small`, `default` or `full`), used by the figure binaries to
/// trade runtime for resolution.
pub fn scale_from_env() -> f64 {
    match std::env::var("CGSIM_SCALE").as_deref() {
        Ok("small") => 0.2,
        Ok("full") => 1.0,
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_scaling_point_completes_all_jobs() {
        let results = job_scaling_point(200, 500, 1);
        assert_eq!(results.outcomes.len(), 200);
        assert!(results.wall_clock_s >= 0.0);
    }

    #[test]
    fn multisite_point_uses_all_sites() {
        // Enough jobs per site that the least-loaded policy has to spill
        // beyond the largest site.
        let results = multisite_scaling_point(5, 200, 2);
        assert_eq!(results.outcomes.len(), 1_000);
        let sites: std::collections::HashSet<_> =
            results.outcomes.iter().map(|o| o.site.clone()).collect();
        assert!(sites.len() >= 4, "expected most sites used, got {sites:?}");
    }

    #[test]
    fn distributed_is_faster_than_single_site() {
        let (single, distributed) = distributed_speedup(8, 1_000, 3);
        assert!(
            single > distributed,
            "single={single} distributed={distributed}"
        );
        assert!(
            single / distributed > 2.5,
            "speedup only {:.2}x (single {single}, distributed {distributed})",
            single / distributed
        );
    }

    #[test]
    fn event_snapshot_produces_finished_rows() {
        let results = event_snapshot_run(60, 4);
        assert!(results
            .events
            .iter()
            .any(|e| e.state == cgsim_workload::JobState::Finished));
    }

    #[test]
    fn baseline_comparison_runs_both_simulators() {
        let (baseline, cgsim) = baseline_comparison(120, 5);
        assert_eq!(baseline.outcomes.len(), 120);
        assert_eq!(cgsim.outcomes.len(), 120);
    }
}
