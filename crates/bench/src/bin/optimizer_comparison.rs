//! Regenerates the §4.2 optimiser comparison: brute-force grid search, random
//! sampling, Bayesian optimisation and CMA-ES at an equal per-site budget.
//! The paper finds random search achieves the lowest average error.

use cgsim_bench::scenarios::{calibration_experiment, scale_from_env};
use cgsim_calibrate::OptimizerKind;

fn main() {
    let scale = scale_from_env();
    let sites = ((20.0 * scale) as usize).max(4);
    let jobs = sites * 40;
    let budget = 20;

    println!("# §4.2 — calibration optimiser comparison ({sites} sites, budget {budget}/site)");
    println!(
        "{:<16} {:>18} {:>18} {:>14}",
        "method", "geomean_before_%", "geomean_after_%", "improvement"
    );
    let mut rows = Vec::new();
    for kind in OptimizerKind::all() {
        let report = calibration_experiment(sites, jobs, kind, budget, 13);
        println!(
            "{:<16} {:>18.1} {:>18.1} {:>13.1}x",
            kind.label(),
            report.geometric_mean_before * 100.0,
            report.geometric_mean_after * 100.0,
            report.improvement_factor()
        );
        rows.push((kind.label(), report.geometric_mean_after));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!(
        "\nbest method at this budget: {} (paper: random search wins on this landscape)",
        rows[0].0
    );
}
