//! CI perf gate for the fluid solver's hot paths.
//!
//! Re-times the `fluid_sparse_churn` @1k scenario (the incremental solver's
//! component-sized sweet spot) and the `fluid_single_bottleneck_churn` @1k
//! scenario (the total-work fast path's O(log n) dense case) — the exact
//! topologies the benches measure, shared via `cgsim_bench::fluid_hot` — at
//! reduced iterations and compares each per-recompute cost against the
//! committed baseline in `BENCH_fluid.json`. Exits non-zero when either
//! measured cost exceeds 2× its committed value — a deliberately coarse
//! threshold that survives CI-runner noise while still catching an
//! accidental return to O(N) global recomputation on the sparse case (~40×)
//! or a loss of the single-bottleneck classification on the dense case
//! (~20×, which would re-run full progressive filling per churn step).
//!
//! Run as: `cargo run --release -p cgsim-bench --bin fluid_perf_gate`

use std::time::Instant;

use cgsim_bench::fluid_hot::{
    build_single_bottleneck, build_sparse, single_bottleneck_churn, sparse_churn,
};
use cgsim_des::fluid::{ActivityId, FluidModel, ResourceId};

/// Concurrency of the gated scenarios (must match committed entries).
const N: usize = 1_000;
/// Churn steps per timed repetition (bounded so the gate stays in CI noise
/// territory of milliseconds, not minutes).
const STEPS: usize = 5_000;
/// Repetitions; the best (least-noisy) one is compared.
const REPS: usize = 3;
/// Allowed regression factor over the committed per-recompute cost.
const MAX_REGRESSION: f64 = 2.0;

fn committed_us(json: &str, case: &str) -> Option<f64> {
    let value: serde_json::Value = serde_json::from_str(json).ok()?;
    value
        .get("results")?
        .as_array()?
        .iter()
        .find(|entry| {
            entry.get("case").and_then(|c| c.as_str()) == Some(case)
                && entry
                    .get("concurrent_activities")
                    .and_then(|n| n.as_f64())
                    .map(|n| n as usize)
                    == Some(N)
        })?
        .get("per_recompute_us")?
        .as_f64()
}

/// Best-of-[`REPS`] per-recompute time of one churn scenario, in µs.
fn measure(
    build: impl Fn(usize) -> (FluidModel, Vec<ResourceId>, Vec<ActivityId>),
    churn: impl Fn(&mut FluidModel, &[ResourceId], &mut [ActivityId], &mut usize, usize) -> f64,
) -> f64 {
    let mut best_us = f64::INFINITY;
    for _ in 0..REPS {
        let (mut m, links, mut ids) = build(N);
        let mut step_base = 0usize;
        // Warm up: populate the completion heap and solve every component
        // once so the timed region measures steady-state churn only.
        let _ = m.time_to_next_completion();
        let start = Instant::now();
        let acc = churn(&mut m, &links, &mut ids, &mut step_base, STEPS);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        best_us = best_us.min(elapsed / STEPS as f64 * 1e6);
    }
    best_us
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fluid.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));

    let mut failed = false;
    let gates: [(&str, f64); 2] = [
        ("sparse_churn", measure(build_sparse, sparse_churn)),
        (
            "single_bottleneck_churn",
            measure(build_single_bottleneck, single_bottleneck_churn),
        ),
    ];
    for (case, best_us) in gates {
        let committed = committed_us(&text, case).unwrap_or_else(|| {
            panic!("BENCH_fluid.json has no {case} entry at {N} concurrent activities")
        });
        let limit = committed * MAX_REGRESSION;
        println!(
            "fluid perf gate: {case}@{N} measured {best_us:.3} µs/recompute \
             (committed {committed:.3} µs, limit {limit:.3} µs)"
        );
        if best_us > limit {
            eprintln!(
                "fluid perf gate FAILED: {case} per-recompute cost regressed \
                 more than {MAX_REGRESSION}x over the committed BENCH_fluid.json baseline"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("fluid perf gate: OK");
}
