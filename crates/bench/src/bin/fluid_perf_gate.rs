//! CI perf gate for the fluid solver's sparse-churn hot path.
//!
//! Re-times the `fluid_sparse_churn` @1k scenario (the exact topology the
//! bench measures, shared via `cgsim_bench::fluid_hot`) at reduced
//! iterations and compares the per-recompute cost against the committed
//! baseline in `BENCH_fluid.json`. Exits non-zero when the measured cost
//! exceeds 2× the committed value — a deliberately coarse threshold that
//! survives CI-runner noise while still catching an accidental return to
//! O(N) global recomputation (which would be ~40× at this concurrency).
//!
//! Run as: `cargo run --release -p cgsim-bench --bin fluid_perf_gate`

use std::time::Instant;

use cgsim_bench::fluid_hot::{build_sparse, sparse_churn};

/// Concurrency of the gated scenario (must match a committed entry).
const N: usize = 1_000;
/// Churn steps per timed repetition (bounded so the gate stays in CI noise
/// territory of milliseconds, not minutes).
const STEPS: usize = 5_000;
/// Repetitions; the best (least-noisy) one is compared.
const REPS: usize = 3;
/// Allowed regression factor over the committed per-recompute cost.
const MAX_REGRESSION: f64 = 2.0;

fn committed_sparse_us(json: &str) -> Option<f64> {
    let value: serde_json::Value = serde_json::from_str(json).ok()?;
    value
        .get("results")?
        .as_array()?
        .iter()
        .find(|entry| {
            entry.get("case").and_then(|c| c.as_str()) == Some("sparse_churn")
                && entry
                    .get("concurrent_activities")
                    .and_then(|n| n.as_f64())
                    .map(|n| n as usize)
                    == Some(N)
        })?
        .get("per_recompute_us")?
        .as_f64()
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fluid.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    let committed = committed_sparse_us(&text).unwrap_or_else(|| {
        panic!("BENCH_fluid.json has no sparse_churn entry at {N} concurrent activities")
    });

    let mut best_us = f64::INFINITY;
    for _ in 0..REPS {
        let (mut m, links, mut ids) = build_sparse(N);
        let mut step_base = 0usize;
        // Warm up: populate the completion heap and solve every component
        // once so the timed region measures steady-state churn only.
        let _ = m.time_to_next_completion();
        let start = Instant::now();
        let acc = sparse_churn(&mut m, &links, &mut ids, &mut step_base, STEPS);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        best_us = best_us.min(elapsed / STEPS as f64 * 1e6);
    }

    let limit = committed * MAX_REGRESSION;
    println!(
        "fluid perf gate: sparse_churn@{N} measured {best_us:.3} µs/recompute \
         (committed {committed:.3} µs, limit {limit:.3} µs)"
    );
    if best_us > limit {
        eprintln!(
            "fluid perf gate FAILED: sparse-churn per-recompute cost regressed \
             more than {MAX_REGRESSION}x over the committed BENCH_fluid.json baseline"
        );
        std::process::exit(1);
    }
    println!("fluid perf gate: OK");
}
