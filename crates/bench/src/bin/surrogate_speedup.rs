//! ML-surrogate experiment: train the four surrogate families on the
//! event-level dataset of one simulation run and report held-out accuracy and
//! the speed-up of surrogate inference over re-running the simulator — the
//! "fast surrogates for performance prediction" use case that motivates
//! CGSim's automatic dataset generation (§1, future work).

use std::time::Instant;

use cgsim_bench::scenarios::{run_simulation, scale_from_env, scaling_trace};
use cgsim_monitor::mldataset::build_examples;
use cgsim_platform::presets::wlcg_platform;
use cgsim_surrogate::{train_and_evaluate, SurrogateKind, Target, TrainConfig};

fn main() {
    let scale = scale_from_env();
    let jobs = ((4_000.0 * scale) as usize).max(800);
    let sites = 12;

    println!("# Surrogate modeling on CGSim event-level data ({jobs} jobs, {sites} sites)");
    let platform = wlcg_platform(sites, 5);
    let trace = scaling_trace(&platform, jobs, 17);
    let sim_started = Instant::now();
    let results = run_simulation(&platform, trace, "least-loaded", true);
    let sim_elapsed = sim_started.elapsed().as_secs_f64();
    let examples = build_examples(&results.outcomes, &results.events);
    println!(
        "simulation: {:.2}s wall-clock for {} jobs -> {} training examples\n",
        sim_elapsed,
        jobs,
        examples.len()
    );

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "model", "train_s", "predict_ms", "test_r2", "rel_mae", "jobs/s(sim)", "jobs/s(ml)"
    );
    let test_rows = (examples.len() / 5).max(1);
    for kind in SurrogateKind::ALL {
        let train_started = Instant::now();
        let (model, report) = train_and_evaluate(
            &examples,
            Target::Walltime,
            kind,
            &TrainConfig::default(),
            0.8,
            7,
        );
        let train_elapsed = train_started.elapsed().as_secs_f64();

        let dataset = cgsim_surrogate::Dataset::from_examples(&examples, Target::Walltime);
        let (_, test) = dataset.split(0.8, 7);
        let predict_started = Instant::now();
        let _ = model.predict(&test);
        let predict_elapsed = predict_started.elapsed().as_secs_f64();

        let sim_rate = jobs as f64 / sim_elapsed.max(1e-9);
        let ml_rate = test_rows as f64 / predict_elapsed.max(1e-9);
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>10.3} {:>10.3} {:>12.0} {:>12.0}",
            kind.label(),
            train_elapsed,
            predict_elapsed * 1e3,
            report.test_metrics.r2,
            report.test_metrics.relative_mae,
            sim_rate,
            ml_rate
        );
    }
    println!("\nexpectation: tree-based surrogates reach R² well above the mean predictor and");
    println!("predict orders of magnitude more jobs per second than the discrete-event core.");
}
