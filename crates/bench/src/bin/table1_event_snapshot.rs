//! Regenerates Table 1: a representative sample of the event-level monitoring
//! dataset (event id, job id, state, site, available cores, pending /
//! assigned / finished job counts).

use cgsim_bench::scenarios::event_snapshot_run;
use cgsim_workload::JobState;

fn main() {
    let results = event_snapshot_run(400, 42);

    println!("# Table 1 — representative event-level monitoring rows");
    println!(
        "{:>8} {:>14} {:>10} {:<10} {:>12} {:>12} {:>13} {:>13}",
        "Event ID", "Job ID", "State", "Site", "Avail.Cores", "Pending", "Assigned", "Finished"
    );
    // The paper samples finished events from the middle of the run.
    let finished: Vec<_> = results
        .events
        .iter()
        .filter(|e| e.state == JobState::Finished)
        .collect();
    let start = finished.len() / 2;
    for e in finished.iter().skip(start).take(6) {
        println!(
            "{:>8} {:>14} {:>10} {:<10} {:>12} {:>12} {:>13} {:>13}",
            e.event_id,
            e.job_id.0,
            e.state.label(),
            e.site,
            e.available_cores,
            e.pending_jobs,
            e.assigned_jobs,
            e.finished_jobs
        );
    }
    println!(
        "\n(total event records captured: {}, jobs simulated: {})",
        results.events.len(),
        results.outcomes.len()
    );
}
