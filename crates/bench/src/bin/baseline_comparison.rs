//! Regenerates the §2 fidelity argument: a coarse-grained GridSim/CloudSim
//! style simulator is faster but substantially less accurate than the
//! fluid-model CGSim core on the same PanDA-like trace.

use cgsim_bench::scenarios::{baseline_comparison, scale_from_env};

fn main() {
    let scale = scale_from_env();
    let jobs = ((2_000.0 * scale) as usize).max(300);
    let (baseline, cgsim) = baseline_comparison(jobs, 11);

    let cgsim_error = cgsim.geometric_mean_walltime_error().unwrap_or(0.0);
    println!("# Fidelity ablation — coarse-grained baseline vs CGSim core ({jobs} jobs, 10 sites)");
    println!(
        "{:<26} {:>16} {:>24}",
        "simulator", "wall_clock_s", "walltime rel. error"
    );
    println!(
        "{:<26} {:>16.3} {:>23.1}%",
        "coarse-grained baseline",
        baseline.wall_clock_s,
        baseline.relative_walltime_error() * 100.0
    );
    println!(
        "{:<26} {:>16.3} {:>23.1}%",
        "cgsim (uncalibrated)",
        cgsim.wall_clock_s,
        cgsim_error * 100.0
    );
    println!("\nnote: both are uncalibrated here; after calibration (see fig3_calibration)");
    println!("the CGSim error drops to the paper's ~17% regime, which the coarse model");
    println!("cannot reach because it has no per-site speed or contention model to tune.");
}
