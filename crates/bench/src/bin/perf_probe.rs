//! Low-noise measurement probe (not part of CI): times each churn scenario
//! gate-style — long step runs, best of several reps — which is far less
//! noisy than the 100-step criterion iterations on burst-clocked machines.
//! Used for the same-day control re-measurements recorded in
//! `BENCH_fluid.json`'s note when criterion numbers drift with runner clocks.
//!
//! Run as: `cargo run --release -p cgsim-bench --bin perf_probe`

use std::time::Instant;

use cgsim_bench::fluid_hot::*;
use cgsim_des::fluid::{ActivityId, FluidModel, ResourceId};

const REPS: usize = 5;

fn measure(
    name: &str,
    n: usize,
    steps: usize,
    build: impl Fn(usize) -> (FluidModel, Vec<ResourceId>, Vec<ActivityId>),
    churn: impl Fn(&mut FluidModel, &[ResourceId], &mut [ActivityId], &mut usize, usize) -> f64,
) {
    let mut best_us = f64::INFINITY;
    for _ in 0..REPS {
        let (mut m, links, mut ids) = build(n);
        let mut step_base = 0usize;
        let _ = m.time_to_next_completion();
        let start = Instant::now();
        let acc = churn(&mut m, &links, &mut ids, &mut step_base, steps);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        best_us = best_us.min(elapsed / steps as f64 * 1e6);
    }
    println!("{name}@{n}: {best_us:.4} us/recompute (best of {REPS})");
}

fn main() {
    for &n in &[100usize, 1000, 5000, 20000] {
        measure("contended", n, 2000, build_contended, contended_churn);
    }
    for &n in &[1000usize, 5000, 20000] {
        measure("sparse", n, 5000, build_sparse, sparse_churn);
    }
    for &n in &[1000usize, 5000, 20000] {
        measure(
            "single_bottleneck",
            n,
            5000,
            build_single_bottleneck,
            single_bottleneck_churn,
        );
    }
}
