//! Scale-campaign probe: one streamed churn scenario per **subprocess**,
//! recording wall-clock and peak RSS. The rows land in `BENCH_scale.json`.
//!
//! Each case re-executes this binary with `--case <jobs>` so the peak-RSS
//! reading (`VmHWM` in `/proc/self/status`, the kernel's high-water mark)
//! belongs to that case alone — a shared process would report the maximum
//! across cases. The scenario is the scale-campaign configuration the README
//! documents: streamed generation (no materialised trace), site churn with
//! WAN degradation and job kills, asynchronous incremental checkpoints, and
//! bounded monitoring (`max_events` ring + windowed aggregator).
//!
//! Run all rows:  `cargo run --release -p cgsim-bench --bin scale_probe`
//! Run one row:   `cargo run --release -p cgsim-bench --bin scale_probe -- --case 100000`

use std::time::Instant;

use cgsim_core::{CheckpointConfig, CheckpointTarget, ExecutionConfig, Simulation};
use cgsim_faults::{parse_fault_spec, FaultPlan, FaultTopology};
use cgsim_monitor::MonitoringConfig;
use cgsim_platform::presets::wlcg_platform;
use cgsim_platform::{Platform, PlatformSpec};
use cgsim_workload::{TraceConfig, TraceGenerator};

const SITES: usize = 12;
const CASES: [usize; 2] = [100_000, 1_000_000];

fn churn_plan(spec: &PlatformSpec, jobs: usize) -> FaultPlan {
    let config = parse_fault_spec(
        "outage:site=all,mttf=2h,mttr=20m;degrade:link=all,factor=0.3,mttf=4h,mttr=30m;kill:rate=2",
    )
    .expect("spec parses");
    let platform = Platform::build(spec).expect("platform builds");
    FaultPlan::generate(&config, &FaultTopology::for_platform(&platform, jobs), 7)
}

fn scale_exec() -> ExecutionConfig {
    ExecutionConfig {
        checkpoint: CheckpointConfig {
            interval_s: 1_200.0,
            base_bytes: 1_000_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::MainServer,
            overlap: true,
            delta_bytes_per_s: 10_000_000,
        },
        monitoring: MonitoringConfig {
            enabled: true,
            sample_stride: 100,
            max_events: 10_000,
            window_s: 3_600.0,
            max_windows: 512,
        },
        ..ExecutionConfig::default()
    }
}

/// Peak resident set of this process in MB (`VmHWM`), 0.0 when `/proc` is
/// unavailable (non-Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.split_whitespace().next())
        .and_then(|kb| kb.parse::<f64>().ok())
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// Runs one case in-process and prints its row as a single JSON line.
fn run_case(jobs: usize) {
    let spec = wlcg_platform(SITES, 42);
    let generator = TraceGenerator::new(TraceConfig::with_jobs(jobs, 42));
    let plan = churn_plan(&spec, jobs);
    let started = Instant::now();
    let results = Simulation::builder()
        .platform_spec(&spec)
        .expect("platform builds")
        .trace_stream(generator.stream(&spec))
        .policy_name("least-loaded")
        .execution(scale_exec())
        .fault_plan(plan)
        .run()
        .expect("simulation runs");
    let wall_s = started.elapsed().as_secs_f64();
    assert_eq!(results.outcomes.len(), jobs, "every job must account");
    let label = if jobs.is_multiple_of(1_000_000) {
        format!("{}m", jobs / 1_000_000)
    } else {
        format!("{}k", jobs / 1_000)
    };
    println!(
        "{{\"case\": \"{label}_jobs_churn_streamed\", \"jobs\": {}, \"wall_clock_s\": {:.3}, \
         \"peak_rss_mb\": {:.1}, \"engine_events\": {}, \"makespan_s\": {:.1}}}",
        jobs,
        wall_s,
        peak_rss_mb(),
        results.engine_events,
        results.makespan_s,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--case") {
        let jobs: usize = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .expect("--case takes a job count");
        run_case(jobs);
        return;
    }

    // Orchestrator: one subprocess per case so each VmHWM is case-local.
    let exe = std::env::current_exe().expect("own path");
    let mut rows = Vec::new();
    for jobs in CASES {
        eprintln!("scale_probe: running {jobs} jobs…");
        let out = std::process::Command::new(&exe)
            .args(["--case", &jobs.to_string()])
            .output()
            .expect("subprocess runs");
        assert!(out.status.success(), "case {jobs} failed");
        let line = String::from_utf8(out.stdout).expect("utf-8 row");
        let row = line.trim().to_string();
        eprintln!("  {row}");
        rows.push(row);
    }
    println!("[\n  {}\n]", rows.join(",\n  "));
}
