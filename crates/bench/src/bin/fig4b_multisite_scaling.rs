//! Regenerates Fig. 4(b): simulator runtime versus number of sites at a fixed
//! density of 200 jobs per site (1–50 sites in the paper, near-linear growth).

use cgsim_bench::scenarios::{multisite_scaling_point, scale_from_env};
use cgsim_des::stats::scaling_exponent;

fn main() {
    let scale = scale_from_env();
    let site_counts: Vec<usize> = [1usize, 5, 10, 20, 30, 40, 50]
        .iter()
        .map(|&s| ((s as f64 * scale).ceil() as usize).max(1))
        .collect();
    let jobs_per_site = 200usize;

    println!("# Fig. 4(b) — multi-site scaling (200 jobs per site)");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>12}",
        "sites", "jobs", "wall_clock_s", "sim_makespan_h", "events"
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &sites in &site_counts {
        let results = multisite_scaling_point(sites, jobs_per_site, 42);
        println!(
            "{:>8} {:>10} {:>14.3} {:>14.2} {:>12}",
            sites,
            sites * jobs_per_site,
            results.wall_clock_s,
            results.makespan_s / 3600.0,
            results.engine_events
        );
        if sites > 0 {
            xs.push(sites as f64);
            ys.push(results.wall_clock_s.max(1e-6));
        }
    }
    let exponent = scaling_exponent(&xs, &ys);
    println!("\nscaling exponent (runtime ~ sites^k): k = {exponent:.2}");
    println!("paper expectation: near-linear (k ≈ 1)");
}
