//! Regenerates the abstract's headline claim: "distributed workloads
//! achieving 6× better performance compared to single-site execution" —
//! a fixed workload executed on one site versus spread over N sites.

use cgsim_bench::scenarios::{distributed_speedup, scale_from_env};

fn main() {
    let scale = scale_from_env();
    let jobs = ((4_000.0 * scale) as usize).max(400);

    println!("# Distributed vs single-site execution ({jobs} jobs)");
    println!(
        "{:>8} {:>22} {:>22} {:>10}",
        "sites", "single_makespan_h", "distributed_makespan_h", "speedup"
    );
    for &sites in &[2usize, 4, 8, 16] {
        let (single, distributed) = distributed_speedup(sites, jobs, 7);
        println!(
            "{:>8} {:>22.2} {:>22.2} {:>9.1}x",
            sites,
            single / 3600.0,
            distributed / 3600.0,
            single / distributed
        );
    }
    println!("\npaper expectation: distributing the workload yields ~6x better performance");
}
