//! Regenerates Fig. 3: per-site relative mean absolute error of job walltime
//! before and after random-search calibration of the per-site CPU speed.
//! The paper improves the geometric mean from 76 % to 17 % over 50 sites.

use cgsim_bench::scenarios::{calibration_experiment, scale_from_env};
use cgsim_calibrate::OptimizerKind;

fn main() {
    let scale = scale_from_env();
    let sites = ((50.0 * scale) as usize).max(5);
    let jobs = sites * 40;
    let budget = 25;

    println!("# Fig. 3 — walltime calibration across {sites} WLCG-like sites");
    println!("(random-search calibration, {budget} evaluations per site, {jobs} historical jobs)");
    let report = calibration_experiment(sites, jobs, OptimizerKind::Random, budget, 7);

    println!(
        "\n{:<16} {:>6} {:>16} {:>18} {:>12}",
        "site", "jobs", "error_before_%", "error_after_%", "multiplier"
    );
    // Fig. 3 plots 10 sites "for brevity"; print the first 10 then summarise.
    for cal in report.sites.iter().take(10) {
        println!(
            "{:<16} {:>6} {:>16.1} {:>18.1} {:>12.3}",
            cal.site,
            cal.jobs,
            cal.nominal_error * 100.0,
            cal.calibrated_error * 100.0,
            cal.best_multiplier
        );
    }
    if report.sites.len() > 10 {
        println!("... ({} more sites)", report.sites.len() - 10);
    }
    println!(
        "\ngeometric mean relative MAE: before = {:.1}%  after = {:.1}%  (improvement {:.1}x)",
        report.geometric_mean_before * 100.0,
        report.geometric_mean_after * 100.0,
        report.improvement_factor()
    );
    println!("paper: 76% -> 17% over 50 sites (≈4.5x improvement)");
}
