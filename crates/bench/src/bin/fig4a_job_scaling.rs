//! Regenerates Fig. 4(a): simulator runtime versus number of jobs on a single
//! site. The paper reports sub-quadratic growth (<100 s at 1,000 jobs to
//! ~2,500 s at 10,000 jobs on the authors' machine); absolute numbers differ
//! on other hardware, the scaling exponent is what must hold.

use cgsim_bench::scenarios::{job_scaling_point, scale_from_env};
use cgsim_des::stats::scaling_exponent;

fn main() {
    let scale = scale_from_env();
    let job_counts: Vec<usize> = [1_000usize, 2_000, 4_000, 6_000, 8_000, 10_000]
        .iter()
        .map(|&j| ((j as f64 * scale) as usize).max(200))
        .collect();

    println!("# Fig. 4(a) — job scaling (single site, 1000 cores)");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "jobs", "wall_clock_s", "sim_makespan_h", "events"
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &jobs in &job_counts {
        let results = job_scaling_point(jobs, 1_000, 42);
        println!(
            "{:>10} {:>14.3} {:>14.2} {:>12}",
            jobs,
            results.wall_clock_s,
            results.makespan_s / 3600.0,
            results.engine_events
        );
        xs.push(jobs as f64);
        ys.push(results.wall_clock_s.max(1e-6));
    }
    let exponent = scaling_exponent(&xs, &ys);
    println!("\nscaling exponent (runtime ~ jobs^k): k = {exponent:.2}");
    println!("paper expectation: sub-quadratic (k < 2); near-linear is better");
}
