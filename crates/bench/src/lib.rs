//! # cgsim-bench — experiment scenarios shared by benches and binaries
//!
//! Every table and figure of the paper's evaluation section has (a) a binary
//! under `src/bin/` that regenerates the numbers and prints the same rows or
//! series the paper reports, and (b) a Criterion bench measuring the
//! corresponding simulator cost. Both are thin wrappers around the scenario
//! functions in [`scenarios`], so the workload definitions cannot drift
//! between the two.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fluid_hot;
pub mod scenarios;
