//! Fault-injection overhead: 1k jobs under site churn.
//!
//! Measures a full 6-site, 1 000-job simulation in three regimes:
//!
//! * `clean` — no fault plan attached (the baseline every other scenario in
//!   the suite runs in),
//! * `empty_plan` — a zero-event plan attached; must cost the same as
//!   `clean` (the fault hooks on the hot path are a branch on empty state),
//! * `site_churn` — every site bouncing with a 2 h MTTF / 20 min MTTR plus
//!   WAN-wide degradation, exercising kill/resubmit, staged-data
//!   invalidation and fluid re-rating,
//! * `site_churn_repair` — the same churn plus per-site disk losses, with
//!   the self-healing layer fully on: fault-aware re-replication (target
//!   factor 2) and asynchronous incremental checkpoints every 20 min, so
//!   repair transfers and overlapped writes contend on the same WAN.
//!
//! The committed baseline lives in `BENCH_faults.json` at the repository
//! root; the fault-free hot-path guarantee is additionally covered by
//! re-running `--bench fluid` against `BENCH_fluid.json`.

use cgsim_core::{CheckpointConfig, CheckpointTarget, ExecutionConfig, RepairConfig, Simulation};
use cgsim_faults::{parse_fault_spec, FaultPlan, FaultTopology};
use cgsim_platform::presets::wlcg_platform;
use cgsim_platform::{Platform, PlatformSpec};
use cgsim_workload::{Trace, TraceConfig, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};

const SITES: usize = 6;
const JOBS: usize = 1_000;

fn scenario() -> (PlatformSpec, Trace) {
    let platform = wlcg_platform(SITES, 42);
    let trace = TraceGenerator::new(TraceConfig::with_jobs(JOBS, 42)).generate(&platform);
    (platform, trace)
}

fn churn_plan(platform_spec: &PlatformSpec, jobs: usize) -> FaultPlan {
    let config = parse_fault_spec(
        "outage:site=all,mttf=2h,mttr=20m;degrade:link=all,factor=0.3,mttf=4h,mttr=30m;kill:rate=2",
    )
    .expect("spec parses");
    let platform = Platform::build(platform_spec).expect("platform builds");
    FaultPlan::generate(&config, &FaultTopology::for_platform(&platform, jobs), 7)
}

fn repair_churn_plan(platform_spec: &PlatformSpec, jobs: usize) -> FaultPlan {
    let config =
        parse_fault_spec("outage:site=all,mttf=2h,mttr=20m;diskloss:site=all,mttf=90m;kill:rate=2")
            .expect("spec parses");
    let platform = Platform::build(platform_spec).expect("platform builds");
    FaultPlan::generate(&config, &FaultTopology::for_platform(&platform, jobs), 7)
}

/// Execution config with the self-healing layer on: repair to 2 replicas,
/// asynchronous incremental checkpoints every 20 minutes.
fn self_healing_exec() -> ExecutionConfig {
    ExecutionConfig {
        checkpoint: CheckpointConfig {
            interval_s: 1_200.0,
            base_bytes: 1_000_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::MainServer,
            overlap: true,
            delta_bytes_per_s: 10_000_000,
        },
        repair: RepairConfig {
            enabled: true,
            ..RepairConfig::default()
        },
        ..ExecutionConfig::default()
    }
}

fn run(platform: &PlatformSpec, trace: &Trace, plan: Option<&FaultPlan>) -> f64 {
    run_with(platform, trace, plan, ExecutionConfig::default())
}

fn run_with(
    platform: &PlatformSpec,
    trace: &Trace,
    plan: Option<&FaultPlan>,
    execution: ExecutionConfig,
) -> f64 {
    let mut builder = Simulation::builder()
        .platform_spec(platform)
        .expect("platform builds")
        .trace(trace.clone())
        .policy_name("least-loaded")
        .execution(execution);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan.clone());
    }
    let results = builder.run().expect("simulation runs");
    results.makespan_s
}

fn bench_faults(c: &mut Criterion) {
    let (platform, trace) = scenario();
    let plan = churn_plan(&platform, trace.len());
    let empty = FaultPlan::empty();

    let mut group = c.benchmark_group("faults_1k_jobs");
    group.sample_size(10);
    group.bench_function("clean", |b| b.iter(|| run(&platform, &trace, None)));
    group.bench_function("empty_plan", |b| {
        b.iter(|| run(&platform, &trace, Some(&empty)))
    });
    group.bench_function("site_churn", |b| {
        b.iter(|| run(&platform, &trace, Some(&plan)))
    });
    let repair_plan = repair_churn_plan(&platform, trace.len());
    group.bench_function("site_churn_repair", |b| {
        b.iter(|| run_with(&platform, &trace, Some(&repair_plan), self_healing_exec()))
    });
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
