//! Sweep-parallelism ablation: the calibration and scalability experiments
//! run many independent simulations; this bench measures the wall-clock gain
//! of fanning a sweep out over worker threads versus running it serially.

use cgsim_bench::scenarios::scaling_trace;
use cgsim_core::{run_sweep, ExecutionConfig, SweepPoint};
use cgsim_platform::presets::wlcg_platform;
use cgsim_policies::PolicyRegistry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn sweep_points(points: usize) -> Vec<SweepPoint> {
    (0..points)
        .map(|i| {
            let platform = wlcg_platform(6, i as u64);
            let trace = scaling_trace(&platform, 300, 100 + i as u64);
            SweepPoint::new(
                format!("point-{i}"),
                platform,
                trace,
                ExecutionConfig::default(),
            )
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let registry = PolicyRegistry::with_builtins();
    let mut group = c.benchmark_group("sweep_parallelism");
    group.sample_size(10);
    for &parallel in &[false, true] {
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &parallel,
            |b, &parallel| {
                b.iter(|| run_sweep(sweep_points(8), parallel, &registry).expect("sweep runs"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
