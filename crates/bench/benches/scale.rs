//! Scale campaign: 100k and 1M jobs under site churn, streamed, with
//! bounded monitoring — the configuration million-job runs must use.
//!
//! Each iteration is a full end-to-end run: streamed workload generation
//! (no materialised trace), the fault-bench churn spec (every site bouncing
//! at 2 h MTTF / 20 min MTTR, WAN-wide degradation, 2 kills per simulated
//! hour), asynchronous incremental checkpoints, and the bounded monitoring
//! knobs (`max_events` ring, 1 h windowed aggregator, stride-100 sampling).
//!
//! Wall-clock rows live in `BENCH_scale.json` at the repository root, next
//! to peak-RSS figures measured by the `scale_probe` binary (criterion
//! cannot see another case's high-water mark, so RSS is probed with one
//! subprocess per case).

use cgsim_core::{CheckpointConfig, CheckpointTarget, ExecutionConfig, Simulation};
use cgsim_faults::{parse_fault_spec, FaultPlan, FaultTopology};
use cgsim_monitor::MonitoringConfig;
use cgsim_platform::presets::wlcg_platform;
use cgsim_platform::{Platform, PlatformSpec};
use cgsim_workload::{TraceConfig, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};

const SITES: usize = 12;

fn churn_plan(spec: &PlatformSpec, jobs: usize) -> FaultPlan {
    let config = parse_fault_spec(
        "outage:site=all,mttf=2h,mttr=20m;degrade:link=all,factor=0.3,mttf=4h,mttr=30m;kill:rate=2",
    )
    .expect("spec parses");
    let platform = Platform::build(spec).expect("platform builds");
    FaultPlan::generate(&config, &FaultTopology::for_platform(&platform, jobs), 7)
}

fn scale_exec() -> ExecutionConfig {
    ExecutionConfig {
        checkpoint: CheckpointConfig {
            interval_s: 1_200.0,
            base_bytes: 1_000_000_000,
            bytes_per_core: 0,
            target: CheckpointTarget::MainServer,
            overlap: true,
            delta_bytes_per_s: 10_000_000,
        },
        monitoring: MonitoringConfig {
            enabled: true,
            sample_stride: 100,
            max_events: 10_000,
            window_s: 3_600.0,
            max_windows: 512,
        },
        ..ExecutionConfig::default()
    }
}

fn run_streamed(spec: &PlatformSpec, jobs: usize, plan: &FaultPlan) -> f64 {
    let generator = TraceGenerator::new(TraceConfig::with_jobs(jobs, 42));
    let results = Simulation::builder()
        .platform_spec(spec)
        .expect("platform builds")
        .trace_stream(generator.stream(spec))
        .policy_name("least-loaded")
        .execution(scale_exec())
        .fault_plan(plan.clone())
        .run()
        .expect("simulation runs");
    results.makespan_s
}

fn bench_scale(c: &mut Criterion) {
    let spec = wlcg_platform(SITES, 42);

    let mut group = c.benchmark_group("scale_churn_streamed");
    // Full end-to-end runs: seconds to tens of seconds per iteration, so the
    // sample counts stay minimal (the offline shim clamps to [1, 10]).
    let plan_100k = churn_plan(&spec, 100_000);
    group.sample_size(3);
    group.bench_function("100k_jobs", |b| {
        b.iter(|| run_streamed(&spec, 100_000, &plan_100k))
    });
    let plan_1m = churn_plan(&spec, 1_000_000);
    group.sample_size(1);
    group.bench_function("1m_jobs", |b| {
        b.iter(|| run_streamed(&spec, 1_000_000, &plan_1m))
    });
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
