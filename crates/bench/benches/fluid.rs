//! Fluid-model hot path: max-min share recomputation under contention.
//!
//! The fluid model recomputes the progressive-filling allocation every time
//! an activity starts or finishes — it is the hottest path of the whole
//! simulator once traces carry real staging traffic. Three groups measure
//! the three regimes of the incremental solver (see `cgsim_bench::fluid_hot`
//! for the topologies):
//!
//! * `fluid_contended_churn` — one giant *multi-constrained* component (no
//!   single bottleneck); the dense control that pays a full
//!   progressive-filling pass per recompute and must stay within noise of
//!   the pre-incremental baseline.
//! * `fluid_sparse_churn` — one island dirtied per recompute; the sparse
//!   common case whose per-recompute cost should be ~component-sized,
//!   independent of N.
//! * `fluid_single_bottleneck_churn` — one giant component that *is*
//!   single-bottleneck (every activity crosses the thin backbone), served by
//!   the total-work fast path in O(log n) per churn step. Same density as
//!   the contended control; the gap between the two rows is the fast path's
//!   win.
//!
//! The committed baseline for these numbers lives in `BENCH_fluid.json` at
//! the repository root; future perf PRs compare against it, and CI runs the
//! sparse @1k case as a regression gate (`fluid_perf_gate`).

use cgsim_bench::fluid_hot::{
    build_contended, build_single_bottleneck, build_sparse, contended_churn,
    single_bottleneck_churn, sparse_churn,
};
use cgsim_des::SimTime;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Churn steps (activity completions + admissions) measured per iteration.
const CHURN_STEPS: usize = 100;

fn bench_fluid_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_contended_churn");
    group.sample_size(10);
    for &n in &[100usize, 1_000, 5_000, 20_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mut m, links, mut ids) = build_contended(n);
            let mut step_base = 0usize;
            b.iter(|| contended_churn(&mut m, &links, &mut ids, &mut step_base, CHURN_STEPS));
            // Exercise the reuse-buffer APIs outside the timed region and
            // keep the final state observable.
            let mut rates = Vec::new();
            m.rates_into(&mut rates);
            let mut done = Vec::new();
            m.advance_into(SimTime::ZERO, &mut done);
            black_box((rates.len(), done.len()));
        });
    }
    group.finish();
}

fn bench_fluid_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_sparse_churn");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mut m, links, mut ids) = build_sparse(n);
            let mut step_base = 0usize;
            b.iter(|| sparse_churn(&mut m, &links, &mut ids, &mut step_base, CHURN_STEPS));
            let mut rates = Vec::new();
            m.rates_into(&mut rates);
            black_box(rates.len());
        });
    }
    group.finish();
}

fn bench_fluid_single_bottleneck(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_single_bottleneck_churn");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mut m, links, mut ids) = build_single_bottleneck(n);
            let mut step_base = 0usize;
            b.iter(|| {
                single_bottleneck_churn(&mut m, &links, &mut ids, &mut step_base, CHURN_STEPS)
            });
            let mut rates = Vec::new();
            m.rates_into(&mut rates);
            black_box(rates.len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fluid_contended,
    bench_fluid_sparse,
    bench_fluid_single_bottleneck
);
criterion_main!(benches);
