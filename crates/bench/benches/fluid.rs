//! Fluid-model hot path: max-min share recomputation under contention.
//!
//! The fluid model recomputes the progressive-filling allocation every time
//! an activity starts or finishes — it is the hottest path of the whole
//! simulator once traces carry real staging traffic. This bench measures the
//! per-event pattern directly: a slab pre-populated with N concurrent
//! activities over a contended multi-link topology, then a fixed number of
//! churn steps (retire one activity, admit a replacement, recompute). The
//! committed baseline for these numbers lives in `BENCH_fluid.json` at the
//! repository root; future perf PRs compare against it.

use cgsim_des::fluid::{ActivityId, FluidModel, ResourceId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Number of shared links in the synthetic topology. Every activity crosses
/// two of them, so each link carries ~2N/32 concurrent flows and progressive
/// filling needs several freezing rounds per recomputation.
const LINKS: usize = 32;

/// Churn steps (activity completions + admissions) measured per iteration.
const CHURN_STEPS: usize = 100;

fn route(links: &[ResourceId], i: usize) -> Vec<ResourceId> {
    let a = links[i % LINKS];
    let b = links[(i * 7 + 3) % LINKS];
    if a == b {
        vec![a]
    } else {
        vec![a, b]
    }
}

fn build_contended(n: usize) -> (FluidModel, Vec<ResourceId>, Vec<ActivityId>) {
    let mut m = FluidModel::new();
    let links: Vec<ResourceId> = (0..LINKS)
        .map(|i| m.add_resource(1e9 + (i as f64) * 1e7))
        .collect();
    let ids: Vec<ActivityId> = (0..n)
        .map(|i| m.add_activity(1e12, &route(&links, i)))
        .collect();
    (m, links, ids)
}

/// One measured iteration: `CHURN_STEPS` retire/admit/recompute cycles at a
/// steady concurrency of `ids.len()` activities on a long-lived model (the
/// model is built *outside* the timed region, so only the churn hot path is
/// measured). `step_base` carries the admission counter across iterations to
/// keep the route mix rotating. Returns an accumulator so the work cannot be
/// optimised away.
fn churn(
    m: &mut FluidModel,
    links: &[ResourceId],
    ids: &mut [ActivityId],
    step_base: &mut usize,
) -> f64 {
    let mut acc = 0.0;
    for _ in 0..CHURN_STEPS {
        let step = *step_base;
        *step_base += 1;
        let slot = step % ids.len();
        m.remove_activity(ids[slot]);
        ids[slot] = m.add_activity(1e12, &route(links, ids.len() + step));
        // Forces a full share recomputation, as the event loop does.
        acc += m.time_to_next_completion().map_or(0.0, |t| t.as_secs());
    }
    acc
}

fn bench_fluid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_contended_churn");
    group.sample_size(10);
    for &n in &[100usize, 1_000, 5_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let (mut m, links, mut ids) = build_contended(n);
            let mut step_base = 0usize;
            b.iter(|| churn(&mut m, &links, &mut ids, &mut step_base));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fluid);
criterion_main!(benches);
