//! Fig. 3: cost of the per-site random-search calibration pipeline.

use cgsim_bench::scenarios::calibration_experiment;
use cgsim_calibrate::OptimizerKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_calibration");
    group.sample_size(10);
    for &sites in &[2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, &sites| {
            b.iter(|| calibration_experiment(sites, 60 * sites, OptimizerKind::Random, 8, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_calibration);
criterion_main!(benches);
