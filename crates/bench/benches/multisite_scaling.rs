//! Fig. 4(b): simulator wall-clock cost as the number of sites grows
//! (200 jobs per site, as in the paper).

use cgsim_bench::scenarios::multisite_scaling_point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_multisite_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_multisite_scaling");
    group.sample_size(10);
    for &sites in &[1usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(sites), &sites, |b, &sites| {
            b.iter(|| multisite_scaling_point(sites, 200, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multisite_scaling);
criterion_main!(benches);
