//! Table 1 / §4.3.2: cost of event-level monitoring — the same run with the
//! collector enabled versus disabled.

use cgsim_bench::scenarios::{run_simulation, scaling_trace};
use cgsim_platform::presets::example_platform;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_monitoring_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitoring_overhead");
    group.sample_size(10);
    let platform = example_platform();
    for &(label, enabled) in &[("enabled", true), ("disabled", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let trace = scaling_trace(&platform, 500, 21);
                run_simulation(&platform, trace, "least-loaded", enabled)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitoring_overhead);
criterion_main!(benches);
