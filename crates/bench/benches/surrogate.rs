//! Surrogate-model ablation: how expensive is training an ML surrogate on the
//! event-level dataset, and how much faster is surrogate inference than
//! re-running the discrete-event simulation (the paper's ML-assisted
//! simulation motivation, §1)?

use cgsim_bench::scenarios::{run_simulation, scaling_trace};
use cgsim_monitor::mldataset::build_examples;
use cgsim_platform::presets::wlcg_platform;
use cgsim_surrogate::{Dataset, SurrogateKind, SurrogateModel, Target, TrainConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn training_examples() -> Vec<cgsim_monitor::mldataset::MlExample> {
    let platform = wlcg_platform(10, 11);
    let trace = scaling_trace(&platform, 1_500, 23);
    let results = run_simulation(&platform, trace, "least-loaded", true);
    build_examples(&results.outcomes, &results.events)
}

fn bench_surrogate_training(c: &mut Criterion) {
    let examples = training_examples();
    let dataset = Dataset::from_examples(&examples, Target::Walltime);
    let mut group = c.benchmark_group("surrogate_training");
    group.sample_size(10);
    for kind in SurrogateKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| SurrogateModel::train(kind, &dataset, &TrainConfig::default()));
            },
        );
    }
    group.finish();
}

fn bench_surrogate_vs_simulation(c: &mut Criterion) {
    let examples = training_examples();
    let dataset = Dataset::from_examples(&examples, Target::Walltime);
    let (train, test) = dataset.split(0.8, 7);
    let model = SurrogateModel::train(SurrogateKind::Gbdt, &train, &TrainConfig::default());
    let platform = wlcg_platform(10, 11);

    let mut group = c.benchmark_group("surrogate_vs_simulation");
    group.sample_size(10);
    group.bench_function("surrogate_predict_300_jobs", |b| {
        b.iter(|| model.predict(&test));
    });
    group.bench_function("simulate_300_jobs", |b| {
        b.iter(|| {
            let trace = scaling_trace(&platform, 300, 31);
            run_simulation(&platform, trace, "least-loaded", false)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_surrogate_training,
    bench_surrogate_vs_simulation
);
criterion_main!(benches);
