//! Plugin-policy ablation: simulator cost under each built-in allocation
//! policy (the plugin mechanism of §3.3 adds no measurable overhead).

use cgsim_bench::scenarios::{run_simulation, scaling_trace};
use cgsim_platform::presets::wlcg_platform;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_policies");
    group.sample_size(10);
    let platform = wlcg_platform(10, 5);
    for policy in [
        "least-loaded",
        "round-robin",
        "random",
        "fastest-available",
        "data-aware",
        "historical-panda",
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let trace = scaling_trace(&platform, 500, 33);
                    run_simulation(&platform, trace, policy, false)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
