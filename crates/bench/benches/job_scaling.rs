//! Fig. 4(a): simulator wall-clock cost as the per-site job count grows.

use cgsim_bench::scenarios::job_scaling_point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_job_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_job_scaling");
    group.sample_size(10);
    for &jobs in &[250usize, 500, 1_000, 2_000] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| job_scaling_point(jobs, 1_000, 42));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_job_scaling);
criterion_main!(benches);
