//! §2 fidelity ablation: coarse-grained GridSim/CloudSim-style baseline versus
//! the CGSim fluid-model core on the same trace (speed side of the trade-off;
//! the accuracy side is printed by the `baseline_comparison` binary).

use cgsim_baseline::BaselineSimulator;
use cgsim_bench::scenarios::{run_simulation, scaling_trace};
use cgsim_platform::presets::wlcg_platform;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_baseline_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_cgsim");
    group.sample_size(10);
    let platform = wlcg_platform(10, 9);
    group.bench_function("coarse_grained_baseline", |b| {
        b.iter(|| {
            let trace = scaling_trace(&platform, 500, 13);
            BaselineSimulator::new().run(&platform, &trace)
        });
    });
    group.bench_function("cgsim_core", |b| {
        b.iter(|| {
            let trace = scaling_trace(&platform, 500, 13);
            run_simulation(&platform, trace, "historical-panda", false)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_comparison);
criterion_main!(benches);
