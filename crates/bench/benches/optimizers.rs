//! §4.2 optimiser comparison: cost of one per-site calibration with each of
//! the four methods (brute force, random, Bayesian, CMA-ES) at equal budget.

use cgsim_bench::scenarios::calibration_experiment;
use cgsim_calibrate::OptimizerKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_comparison");
    group.sample_size(10);
    for kind in OptimizerKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| calibration_experiment(2, 100, kind, 8, 11));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
