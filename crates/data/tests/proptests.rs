//! Property-based tests for the data-management substrate.

use cgsim_data::catalog::DatasetId;
use cgsim_data::{LruCache, StorageElement};
use proptest::prelude::*;

proptest! {
    /// The LRU cache never exceeds its capacity and its statistics stay
    /// consistent, under arbitrary interleavings of inserts and lookups.
    #[test]
    fn lru_cache_invariants(
        capacity in 1u64..10_000,
        ops in prop::collection::vec((0usize..50, 1u64..5_000, any::<bool>()), 0..200),
    ) {
        let mut cache = LruCache::new(capacity);
        for (id, bytes, is_insert) in ops {
            let ds = DatasetId::new(id);
            if is_insert {
                cache.insert(ds, bytes);
            } else {
                cache.lookup(ds);
            }
            prop_assert!(cache.used_bytes() <= cache.capacity_bytes());
            let stats = cache.stats();
            prop_assert!(stats.hit_rate() >= 0.0 && stats.hit_rate() <= 1.0);
        }
    }

    /// Storage accounting never goes negative and never exceeds capacity.
    #[test]
    fn storage_element_accounting(
        capacity in 0u64..1_000_000,
        ops in prop::collection::vec((0u64..100_000, any::<bool>()), 0..200),
    ) {
        let mut se = StorageElement::new("prop", capacity);
        for (bytes, reserve) in ops {
            if reserve {
                let ok = se.reserve(bytes);
                if ok {
                    prop_assert!(se.used_bytes <= capacity);
                }
            } else {
                se.release(bytes);
            }
            prop_assert!(se.used_bytes <= capacity);
            prop_assert!(se.utilization() >= 0.0 && se.utilization() <= 1.0);
        }
    }
}
