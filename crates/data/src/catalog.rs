//! Datasets, replicas and the replica catalog.

use std::collections::{BTreeSet, HashMap};

use cgsim_des::define_id;
use cgsim_platform::{NodeId, Platform};
use serde::{Deserialize, Serialize};

define_id!(
    /// Identifier of a dataset.
    DatasetId,
    "dataset"
);

/// A logical dataset (a collection of files moved and replicated as a unit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset identifier.
    pub id: DatasetId,
    /// Dataset name (e.g. `task-42-input`).
    pub name: String,
    /// Number of files.
    pub files: u32,
    /// Total size in bytes.
    pub bytes: u64,
}

/// How a source replica is chosen when a dataset must be staged to a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SourceSelection {
    /// Always pull from the main server (the paper's default architecture,
    /// where the main server distributes workloads and their inputs).
    MainServer,
    /// Prefer a replica already at the destination, otherwise the replica
    /// with the lowest route latency to the destination.
    #[default]
    LowestLatency,
    /// Prefer the replica with the highest bottleneck bandwidth.
    HighestBandwidth,
}

/// The replica catalog: which endpoints hold a copy of which dataset.
#[derive(Debug, Clone, Default)]
pub struct ReplicaCatalog {
    datasets: Vec<Dataset>,
    names: HashMap<String, DatasetId>,
    /// Replica locations per dataset (BTreeSet keeps iteration deterministic).
    replicas: Vec<BTreeSet<NodeId>>,
}

impl ReplicaCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset (idempotent by name) and returns its id. The
    /// initial replica is placed at `origin`.
    pub fn register(&mut self, name: &str, files: u32, bytes: u64, origin: NodeId) -> DatasetId {
        if let Some(&id) = self.names.get(name) {
            self.replicas[id.index()].insert(origin);
            return id;
        }
        let id = DatasetId::new(self.datasets.len());
        self.datasets.push(Dataset {
            id,
            name: name.to_string(),
            files,
            bytes,
        });
        self.names.insert(name.to_string(), id);
        let mut locations = BTreeSet::new();
        locations.insert(origin);
        self.replicas.push(locations);
        id
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True when no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Looks up a dataset by name.
    pub fn by_name(&self, name: &str) -> Option<DatasetId> {
        self.names.get(name).copied()
    }

    /// Dataset metadata.
    pub fn dataset(&self, id: DatasetId) -> &Dataset {
        &self.datasets[id.index()]
    }

    /// Adds a replica of `dataset` at `location`.
    pub fn add_replica(&mut self, dataset: DatasetId, location: NodeId) {
        self.replicas[dataset.index()].insert(location);
    }

    /// Removes the replica of `dataset` at `location`; returns whether it existed.
    pub fn remove_replica(&mut self, dataset: DatasetId, location: NodeId) -> bool {
        self.replicas[dataset.index()].remove(&location)
    }

    /// Removes every replica held at `location` (a site outage invalidates
    /// all data staged there). Returns the number of replicas dropped.
    /// Datasets whose only replica lived at `location` keep their catalog
    /// entry but become sourceless until re-replicated.
    pub fn evict_node(&mut self, location: NodeId) -> usize {
        self.replicas
            .iter_mut()
            .map(|locations| locations.remove(&location) as usize)
            .sum()
    }

    /// Like [`evict_node`](Self::evict_node), but also reports *which*
    /// datasets lost a replica (in dataset-id order) so a repair planner can
    /// inspect the resulting replication-factor deficits.
    pub fn evict_node_reporting(&mut self, location: NodeId) -> Vec<DatasetId> {
        let mut affected = Vec::new();
        for (index, locations) in self.replicas.iter_mut().enumerate() {
            if locations.remove(&location) {
                affected.push(DatasetId::new(index));
            }
        }
        affected
    }

    /// Number of replicas a single dataset currently has.
    pub fn replicas_of(&self, dataset: DatasetId) -> usize {
        self.replicas[dataset.index()].len()
    }

    /// True if `location` holds a replica of `dataset`.
    pub fn has_replica(&self, dataset: DatasetId, location: NodeId) -> bool {
        self.replicas[dataset.index()].contains(&location)
    }

    /// All replica locations of a dataset.
    pub fn replicas(&self, dataset: DatasetId) -> impl Iterator<Item = NodeId> + '_ {
        self.replicas[dataset.index()].iter().copied()
    }

    /// Total number of replicas across all datasets.
    pub fn replica_count(&self) -> usize {
        self.replicas.iter().map(|r| r.len()).sum()
    }

    /// Chooses the source replica for staging `dataset` to `destination`
    /// following the given selection strategy. Returns `None` if the dataset
    /// has no replicas at all.
    pub fn select_source(
        &self,
        dataset: DatasetId,
        destination: NodeId,
        platform: &Platform,
        strategy: SourceSelection,
    ) -> Option<NodeId> {
        let locations = &self.replicas[dataset.index()];
        if locations.is_empty() {
            return None;
        }
        if locations.contains(&destination) {
            return Some(destination);
        }
        match strategy {
            SourceSelection::MainServer => {
                if locations.contains(&NodeId::MainServer) {
                    Some(NodeId::MainServer)
                } else {
                    locations.iter().next().copied()
                }
            }
            SourceSelection::LowestLatency => locations.iter().copied().min_by(|&a, &b| {
                let la = platform.route(a, destination).latency_s;
                let lb = platform.route(b, destination).latency_s;
                la.partial_cmp(&lb).expect("latencies are finite")
            }),
            SourceSelection::HighestBandwidth => locations.iter().copied().max_by(|&a, &b| {
                let ba = platform.route(a, destination).bottleneck_bps;
                let bb = platform.route(b, destination).bottleneck_bps;
                ba.partial_cmp(&bb).expect("bandwidths are finite")
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;
    use cgsim_platform::Platform;

    fn platform() -> Platform {
        Platform::build(&example_platform()).unwrap()
    }

    #[test]
    fn register_is_idempotent_by_name() {
        let mut cat = ReplicaCatalog::new();
        let a = cat.register("ds-1", 3, 1_000, NodeId::MainServer);
        let b = cat.register("ds-1", 3, 1_000, NodeId::MainServer);
        assert_eq!(a, b);
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
        assert_eq!(cat.by_name("ds-1"), Some(a));
        assert_eq!(cat.by_name("nope"), None);
        assert_eq!(cat.dataset(a).files, 3);
    }

    #[test]
    fn replicas_are_tracked() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap());
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register("ds", 1, 10, NodeId::MainServer);
        assert!(cat.has_replica(ds, NodeId::MainServer));
        assert!(!cat.has_replica(ds, cern));
        cat.add_replica(ds, cern);
        assert!(cat.has_replica(ds, cern));
        assert_eq!(cat.replicas(ds).count(), 2);
        assert_eq!(cat.replica_count(), 2);
        assert!(cat.remove_replica(ds, cern));
        assert!(!cat.remove_replica(ds, cern));
    }

    #[test]
    fn evict_node_drops_all_replicas_at_that_node() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap());
        let mut cat = ReplicaCatalog::new();
        let a = cat.register("a", 1, 10, NodeId::MainServer);
        let b = cat.register("b", 1, 10, NodeId::MainServer);
        cat.add_replica(a, cern);
        cat.add_replica(b, cern);
        assert_eq!(cat.evict_node(cern), 2);
        assert!(!cat.has_replica(a, cern));
        assert!(!cat.has_replica(b, cern));
        // Main-server copies survive; re-evicting is a no-op.
        assert!(cat.has_replica(a, NodeId::MainServer));
        assert_eq!(cat.evict_node(cern), 0);
    }

    #[test]
    fn evict_node_reporting_names_the_affected_datasets() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap());
        let bnl = NodeId::Site(p.site_by_name("BNL").unwrap());
        let mut cat = ReplicaCatalog::new();
        let a = cat.register("a", 1, 10, NodeId::MainServer);
        let b = cat.register("b", 1, 10, NodeId::MainServer);
        let c = cat.register("c", 1, 10, NodeId::MainServer);
        cat.add_replica(a, cern);
        cat.add_replica(c, cern);
        cat.add_replica(b, bnl);
        assert_eq!(cat.replicas_of(a), 2);
        let affected = cat.evict_node_reporting(cern);
        assert_eq!(affected, vec![a, c]);
        assert_eq!(cat.replicas_of(a), 1);
        assert_eq!(cat.replicas_of(c), 1);
        assert_eq!(cat.replicas_of(b), 2);
        assert!(cat.evict_node_reporting(cern).is_empty());
    }

    #[test]
    fn select_source_prefers_local_replica() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap());
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register("ds", 1, 10, NodeId::MainServer);
        cat.add_replica(ds, cern);
        let src = cat
            .select_source(ds, cern, &p, SourceSelection::LowestLatency)
            .unwrap();
        assert_eq!(src, cern);
    }

    #[test]
    fn lowest_latency_picks_nearest_remote_replica() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap());
        let bnl = NodeId::Site(p.site_by_name("BNL").unwrap());
        let desy = NodeId::Site(p.site_by_name("DESY-ZN").unwrap());
        let mut cat = ReplicaCatalog::new();
        // Replicas at CERN (2 ms to server) and BNL (45 ms), destination DESY.
        let ds = cat.register("ds", 1, 10, cern);
        cat.add_replica(ds, bnl);
        let src = cat
            .select_source(ds, desy, &p, SourceSelection::LowestLatency)
            .unwrap();
        // CERN is much closer to DESY (via the main-server star) than BNL.
        assert_eq!(src, cern);
    }

    #[test]
    fn main_server_strategy_falls_back_to_any_replica() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap());
        let bnl = NodeId::Site(p.site_by_name("BNL").unwrap());
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register("ds", 1, 10, cern);
        let src = cat
            .select_source(ds, bnl, &p, SourceSelection::MainServer)
            .unwrap();
        assert_eq!(src, cern);
        cat.add_replica(ds, NodeId::MainServer);
        let src = cat
            .select_source(ds, bnl, &p, SourceSelection::MainServer)
            .unwrap();
        assert_eq!(src, NodeId::MainServer);
    }

    #[test]
    fn highest_bandwidth_prefers_fat_pipes() {
        let p = platform();
        let cern = NodeId::Site(p.site_by_name("CERN").unwrap()); // 200 Gbps uplink
        let lrz = NodeId::Site(p.site_by_name("LRZ-LMU").unwrap()); // 20 Gbps uplink
        let desy = NodeId::Site(p.site_by_name("DESY-ZN").unwrap());
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register("ds", 1, 10, lrz);
        cat.add_replica(ds, cern);
        let src = cat
            .select_source(ds, desy, &p, SourceSelection::HighestBandwidth)
            .unwrap();
        assert_eq!(src, cern);
    }
}
