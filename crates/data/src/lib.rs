//! # cgsim-data — Rucio-like data management substrate
//!
//! The ATLAS distributed-analysis ecosystem relies on two systems: PanDA for
//! workload management and **Rucio** for data management (paper §4.1). CGSim
//! models the data side of the grid — where dataset replicas live, how job
//! input is staged to the execution site, and how site-local caches
//! (XRootD-style, as in DCSim) reduce repeated wide-area transfers.
//!
//! This crate provides that substrate:
//!
//! * [`catalog`] — datasets, replicas and the replica catalog (which sites
//!   hold a copy of which dataset), plus source-selection strategies,
//! * [`storage`] — per-site storage elements with capacity accounting,
//! * [`cache`] — an LRU dataset cache with hit/miss statistics,
//! * [`transfer`] — staging plans: which bytes must move over which route for
//!   a job to run at a given site.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod catalog;
pub mod storage;
pub mod transfer;

pub use cache::{CacheStats, LruCache};
pub use catalog::{Dataset, DatasetId, ReplicaCatalog, SourceSelection};
pub use storage::StorageElement;
pub use transfer::{StagingPlan, TransferRequest};
