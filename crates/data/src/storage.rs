//! Per-site storage elements with capacity accounting.

use serde::{Deserialize, Serialize};

/// A storage element (the disk/tape endpoint of a site).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageElement {
    /// Site (or endpoint) name this storage belongs to.
    pub name: String,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently in use.
    pub used_bytes: u64,
    /// Number of successful reservations.
    pub reservations: u64,
    /// Number of reservations rejected for lack of space.
    pub rejections: u64,
}

impl StorageElement {
    /// Creates an empty storage element with the given capacity.
    pub fn new(name: impl Into<String>, capacity_bytes: u64) -> Self {
        StorageElement {
            name: name.into(),
            capacity_bytes,
            used_bytes: 0,
            reservations: 0,
            rejections: 0,
        }
    }

    /// Remaining free space.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes)
    }

    /// Fraction of capacity in use (0 for a zero-capacity element).
    pub fn utilization(&self) -> f64 {
        if self.capacity_bytes == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.capacity_bytes as f64
        }
    }

    /// Attempts to reserve `bytes`; returns whether the reservation fit.
    pub fn reserve(&mut self, bytes: u64) -> bool {
        if bytes <= self.free_bytes() {
            self.used_bytes += bytes;
            self.reservations += 1;
            true
        } else {
            self.rejections += 1;
            false
        }
    }

    /// Releases `bytes` (saturating at zero).
    pub fn release(&mut self, bytes: u64) {
        self.used_bytes = self.used_bytes.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_accounting() {
        let mut se = StorageElement::new("BNL-DATADISK", 1_000);
        assert!(se.reserve(400));
        assert!(se.reserve(600));
        assert_eq!(se.free_bytes(), 0);
        assert!(!se.reserve(1));
        assert_eq!(se.rejections, 1);
        assert_eq!(se.reservations, 2);
        se.release(500);
        assert_eq!(se.used_bytes, 500);
        assert!((se.utilization() - 0.5).abs() < 1e-12);
        se.release(10_000);
        assert_eq!(se.used_bytes, 0);
    }

    #[test]
    fn zero_capacity_is_safe() {
        let mut se = StorageElement::new("empty", 0);
        assert_eq!(se.utilization(), 0.0);
        assert!(!se.reserve(1));
        assert!(se.reserve(0));
    }
}
