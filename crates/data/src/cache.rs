//! XRootD-style LRU dataset cache.
//!
//! DCSim (the closest prior HEP simulator) models XRootD-like data caching;
//! CGSim-RS provides the same capability so data-movement policies can trade
//! wide-area transfers for site-local cache hits. The cache is a byte-bounded
//! LRU keyed by dataset.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::catalog::DatasetId;

/// Hit/miss statistics of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups that found the dataset cached.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of datasets evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when the cache was never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sentinel for "no node" in the intrusive recency list.
const NIL: usize = usize::MAX;

/// One slab slot of the recency list.
#[derive(Debug, Clone)]
struct Node {
    dataset: DatasetId,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// A byte-bounded LRU cache of datasets.
///
/// Implemented as a slab-backed intrusive doubly-linked recency list plus a
/// `DatasetId → slot` index, so `contains`/`lookup`/`insert` are all O(1).
/// (The first cut was a `VecDeque` scanned linearly per operation; the
/// broker's `grid_view` probes every site cache on every dispatch, which at
/// 10⁶ jobs with ~20k live datasets turned the whole simulation quadratic.)
/// The index is used for point lookups only — never iterated — so the cache
/// stays deterministic.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: HashMap<DatasetId, usize>,
    /// Least recently used (eviction victim).
    head: usize,
    /// Most recently used.
    tail: usize,
    stats: CacheStats,
}

impl LruCache {
    /// Creates an empty cache with the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached datasets.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Unlinks `slot` from the recency list (the slot itself stays allocated).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links `slot` at the tail (most recently used).
    fn link_tail(&mut self, slot: usize) {
        self.nodes[slot].prev = self.tail;
        self.nodes[slot].next = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.nodes[self.tail].next = slot;
        }
        self.tail = slot;
    }

    /// Looks up a dataset, recording a hit or miss and refreshing recency on
    /// a hit.
    pub fn lookup(&mut self, dataset: DatasetId) -> bool {
        if let Some(&slot) = self.index.get(&dataset) {
            if self.tail != slot {
                self.unlink(slot);
                self.link_tail(slot);
            }
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// True if the dataset is cached, without touching recency or statistics.
    pub fn contains(&self, dataset: DatasetId) -> bool {
        self.index.contains_key(&dataset)
    }

    /// Drops every cached dataset (a site outage wipes the site cache);
    /// statistics are preserved, evictions are not counted. Returns the
    /// number of datasets dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.index.len();
        self.nodes.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_bytes = 0;
        dropped
    }

    /// Inserts a dataset of the given size, evicting least-recently-used
    /// entries as needed. Datasets larger than the whole cache are not
    /// admitted. Returns the evicted datasets.
    pub fn insert(&mut self, dataset: DatasetId, bytes: u64) -> Vec<DatasetId> {
        let mut evicted = Vec::new();
        if bytes > self.capacity_bytes {
            return evicted;
        }
        if self.contains(dataset) {
            return evicted;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = self.head;
            if victim == NIL {
                break;
            }
            self.unlink(victim);
            let node = &self.nodes[victim];
            self.used_bytes -= node.bytes;
            self.index.remove(&node.dataset);
            self.stats.evictions += 1;
            evicted.push(node.dataset);
            self.free.push(victim);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Node {
                    dataset,
                    bytes,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.nodes.push(Node {
                    dataset,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.link_tail(slot);
        self.index.insert(dataset, slot);
        self.used_bytes += bytes;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(i: usize) -> DatasetId {
        DatasetId::new(i)
    }

    #[test]
    fn hit_miss_accounting() {
        let mut cache = LruCache::new(100);
        assert!(!cache.lookup(ds(1)));
        cache.insert(ds(1), 40);
        assert!(cache.lookup(ds(1)));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(100);
        cache.insert(ds(1), 40);
        cache.insert(ds(2), 40);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(ds(1)));
        let evicted = cache.insert(ds(3), 40);
        assert_eq!(evicted, vec![ds(2)]);
        assert!(cache.contains(ds(1)));
        assert!(cache.contains(ds(3)));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn oversized_datasets_are_not_admitted() {
        let mut cache = LruCache::new(10);
        let evicted = cache.insert(ds(1), 100);
        assert!(evicted.is_empty());
        assert!(cache.is_empty());
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut cache = LruCache::new(100);
        cache.insert(ds(1), 40);
        cache.insert(ds(1), 40);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), 40);
    }

    #[test]
    fn clear_drops_everything_but_keeps_stats() {
        let mut cache = LruCache::new(100);
        cache.insert(ds(1), 40);
        cache.insert(ds(2), 40);
        assert!(cache.lookup(ds(1)));
        assert_eq!(cache.clear(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        assert!(!cache.contains(ds(1)));
        assert_eq!(cache.stats().hits, 1);
        // The cache keeps working after a wipe.
        cache.insert(ds(3), 10);
        assert!(cache.contains(ds(3)));
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let cache = LruCache::new(10);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
