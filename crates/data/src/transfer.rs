//! Staging plans: which bytes must move where for a job to run at a site.
//!
//! Plans are pure descriptions — the simulation core executes each
//! [`TransferRequest`] as an activity of the deterministic slab-indexed
//! fluid model (`cgsim_des::fluid`), so planning here stays independent of
//! activity handles and needs no knowledge of slot/generation semantics.

use cgsim_platform::{NodeId, Platform};
use serde::{Deserialize, Serialize};

use crate::catalog::{DatasetId, ReplicaCatalog, SourceSelection};

/// A single transfer needed by a staging plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferRequest {
    /// Dataset being moved.
    pub dataset: DatasetId,
    /// Source endpoint.
    pub from: NodeId,
    /// Destination endpoint.
    pub to: NodeId,
    /// Bytes to move.
    pub bytes: u64,
}

/// The set of transfers required to stage a job's inputs to a site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StagingPlan {
    /// Transfers that must complete before the job can start.
    pub transfers: Vec<TransferRequest>,
    /// Bytes already present at the destination (replica or cache hits).
    pub local_bytes: u64,
}

impl StagingPlan {
    /// Total number of bytes that must cross the network.
    pub fn remote_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// True when nothing needs to move.
    pub fn is_local(&self) -> bool {
        self.transfers.is_empty()
    }
}

/// Builds the staging plan for a set of input datasets destined for `site`.
///
/// Datasets already replicated at the destination contribute to
/// `local_bytes`; every other dataset generates one transfer from the source
/// chosen by `strategy`.
pub fn plan_staging(
    datasets: &[DatasetId],
    destination: NodeId,
    catalog: &ReplicaCatalog,
    platform: &Platform,
    strategy: SourceSelection,
) -> StagingPlan {
    let mut plan = StagingPlan::default();
    for &ds in datasets {
        let meta = catalog.dataset(ds);
        if catalog.has_replica(ds, destination) {
            plan.local_bytes += meta.bytes;
            continue;
        }
        let source = catalog
            .select_source(ds, destination, platform, strategy)
            .unwrap_or(NodeId::MainServer);
        plan.transfers.push(TransferRequest {
            dataset: ds,
            from: source,
            to: destination,
            bytes: meta.bytes,
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgsim_platform::presets::example_platform;

    #[test]
    fn plan_splits_local_and_remote_datasets() {
        let platform = Platform::build(&example_platform()).unwrap();
        let bnl = NodeId::Site(platform.site_by_name("BNL").unwrap());
        let mut catalog = ReplicaCatalog::new();
        let local = catalog.register("local", 1, 500, bnl);
        let remote = catalog.register("remote", 2, 1_000, NodeId::MainServer);

        let plan = plan_staging(
            &[local, remote],
            bnl,
            &catalog,
            &platform,
            SourceSelection::LowestLatency,
        );
        assert_eq!(plan.local_bytes, 500);
        assert_eq!(plan.remote_bytes(), 1_000);
        assert_eq!(plan.transfers.len(), 1);
        assert_eq!(plan.transfers[0].from, NodeId::MainServer);
        assert_eq!(plan.transfers[0].to, bnl);
        assert!(!plan.is_local());
    }

    #[test]
    fn fully_local_plan_has_no_transfers() {
        let platform = Platform::build(&example_platform()).unwrap();
        let cern = NodeId::Site(platform.site_by_name("CERN").unwrap());
        let mut catalog = ReplicaCatalog::new();
        let ds = catalog.register("ds", 1, 100, cern);
        let plan = plan_staging(
            &[ds],
            cern,
            &catalog,
            &platform,
            SourceSelection::LowestLatency,
        );
        assert!(plan.is_local());
        assert_eq!(plan.local_bytes, 100);
        assert_eq!(plan.remote_bytes(), 0);
    }

    #[test]
    fn empty_dataset_list_yields_empty_plan() {
        let platform = Platform::build(&example_platform()).unwrap();
        let cern = NodeId::Site(platform.site_by_name("CERN").unwrap());
        let catalog = ReplicaCatalog::new();
        let plan = plan_staging(&[], cern, &catalog, &platform, SourceSelection::MainServer);
        assert!(plan.is_local());
        assert_eq!(plan.local_bytes, 0);
    }
}
