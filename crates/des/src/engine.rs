//! The discrete-event engine driving an [`EventHandler`].
//!
//! The engine owns the virtual clock and the event queue. A simulation model
//! (in CGSim-RS: the grid simulation in `cgsim-core`) implements
//! [`EventHandler`] and receives each event together with a [`Context`] that
//! lets it schedule follow-up events, cancel pending ones, and request an
//! early stop.
//!
//! This mirrors the structure of SimGrid's engine loop: the model never
//! blocks, it only reacts to events and posts new ones, so the loop is a plain
//! `while let Some(event) = queue.pop()`.

use crate::event::{EventKey, EventQueue};
use crate::time::SimTime;

/// Trait implemented by simulation models.
pub trait EventHandler<E> {
    /// Handles a single event at the context's current time.
    fn handle(&mut self, ctx: &mut Context<'_, E>, event: E);
}

/// Why an [`Engine::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    QueueExhausted,
    /// The handler called [`Context::request_stop`].
    StopRequested,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured event budget was exhausted.
    EventBudgetExhausted,
}

/// Summary of a completed engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Number of events delivered to the handler.
    pub events_processed: u64,
    /// Virtual time at which the run ended.
    pub end_time: SimTime,
    /// Why the run ended.
    pub stop_reason: StopReason,
}

/// Scheduling facade handed to the event handler for each event.
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: bool,
}

impl<'a, E> Context<'a, E> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event `delay` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventKey {
        self.queue.schedule(self.now + delay, event)
    }

    /// Schedules an event at an absolute time (clamped to now if in the past).
    #[inline]
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventKey {
        self.queue.schedule(time.max(self.now), event)
    }

    /// Cancels a pending event.
    #[inline]
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key)
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Requests that the engine stop after the current event.
    #[inline]
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }
}

/// The discrete-event engine: virtual clock + event queue + run loop.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    horizon: Option<SimTime>,
    event_budget: Option<u64>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates a fresh engine with the clock at zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            horizon: None,
            event_budget: None,
        }
    }

    /// Sets a virtual-time horizon; the run stops before delivering any event
    /// scheduled strictly after the horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Sets a maximum number of events to process in a single `run` call.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Direct access to the queue (used by setup code before `run`).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Schedules an event at an absolute virtual time.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventKey {
        self.queue.schedule(time, event)
    }

    /// Schedules an event relative to the current virtual time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventKey {
        self.queue.schedule(self.now + delay, event)
    }

    /// Number of live events pending in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Delivers a single event to `handler`. Returns `None` when the queue is
    /// empty, otherwise whether the handler requested a stop.
    pub fn step<H: EventHandler<E>>(&mut self, handler: &mut H) -> Option<bool> {
        let scheduled = self.queue.pop()?;
        debug_assert!(
            scheduled.time >= self.now,
            "event queue produced an event in the past"
        );
        self.now = scheduled.time.max(self.now);
        self.processed += 1;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: false,
        };
        handler.handle(&mut ctx, scheduled.event);
        Some(ctx.stop_requested)
    }

    /// Runs until the queue drains, the handler requests a stop, or a
    /// configured horizon / event budget is hit.
    pub fn run<H: EventHandler<E>>(&mut self, handler: &mut H) -> RunReport {
        let start_processed = self.processed;
        let stop_reason = loop {
            if let Some(budget) = self.event_budget {
                if self.processed - start_processed >= budget {
                    break StopReason::EventBudgetExhausted;
                }
            }
            if let Some(horizon) = self.horizon {
                match self.queue.peek_time() {
                    Some(t) if t > horizon => break StopReason::HorizonReached,
                    None => break StopReason::QueueExhausted,
                    _ => {}
                }
            }
            match self.step(handler) {
                None => break StopReason::QueueExhausted,
                Some(true) => break StopReason::StopRequested,
                Some(false) => {}
            }
        };
        RunReport {
            events_processed: self.processed - start_processed,
            end_time: self.now,
            stop_reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Ev {
        Tick,
        Chain(u32),
        Stop,
    }

    #[derive(Default)]
    struct Recorder {
        times: Vec<f64>,
        chains: u32,
    }

    impl EventHandler<Ev> for Recorder {
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
            self.times.push(ctx.now().as_secs());
            match event {
                Ev::Tick => {}
                Ev::Chain(n) => {
                    self.chains += 1;
                    if n > 0 {
                        ctx.schedule_in(SimTime::from_secs(2.0), Ev::Chain(n - 1));
                    }
                }
                Ev::Stop => ctx.request_stop(),
            }
        }
    }

    #[test]
    fn runs_until_queue_exhausted() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Tick);
        engine.schedule_at(SimTime::from_secs(5.0), Ev::Tick);
        let mut rec = Recorder::default();
        let report = engine.run(&mut rec);
        assert_eq!(report.stop_reason, StopReason::QueueExhausted);
        assert_eq!(report.events_processed, 2);
        assert_eq!(rec.times, vec![1.0, 5.0]);
        assert_eq!(engine.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Chain(3));
        let mut rec = Recorder::default();
        engine.run(&mut rec);
        assert_eq!(rec.chains, 4);
        assert_eq!(engine.now(), SimTime::from_secs(6.0));
    }

    #[test]
    fn stop_request_halts_run() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Stop);
        engine.schedule_at(SimTime::from_secs(2.0), Ev::Tick);
        let mut rec = Recorder::default();
        let report = engine.run(&mut rec);
        assert_eq!(report.stop_reason, StopReason::StopRequested);
        assert_eq!(report.events_processed, 1);
        assert_eq!(engine.pending_events(), 1);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let mut engine = Engine::new().with_horizon(SimTime::from_secs(3.0));
        engine.schedule_at(SimTime::from_secs(1.0), Ev::Tick);
        engine.schedule_at(SimTime::from_secs(10.0), Ev::Tick);
        let mut rec = Recorder::default();
        let report = engine.run(&mut rec);
        assert_eq!(report.stop_reason, StopReason::HorizonReached);
        assert_eq!(rec.times, vec![1.0]);
    }

    #[test]
    fn event_budget_is_respected() {
        let mut engine = Engine::new().with_event_budget(2);
        for i in 0..5 {
            engine.schedule_at(SimTime::from_secs(i as f64), Ev::Tick);
        }
        let mut rec = Recorder::default();
        let report = engine.run(&mut rec);
        assert_eq!(report.stop_reason, StopReason::EventBudgetExhausted);
        assert_eq!(report.events_processed, 2);
    }

    #[test]
    fn step_returns_none_on_empty_queue() {
        let mut engine: Engine<Ev> = Engine::new();
        let mut rec = Recorder::default();
        assert!(engine.step(&mut rec).is_none());
    }
}
