//! Fluid resource-sharing model with progressive-filling max-min fairness.
//!
//! SimGrid's accuracy advantage over coarse-grained simulators comes from its
//! *fluid* models: concurrent activities (network transfers, time-shared
//! computations) continuously share resource capacity, and the share of every
//! activity is recomputed whenever an activity starts or finishes. CGSim-RS
//! uses this model for wide-area network transfers (a transfer traverses a
//! multi-link route and is bottlenecked by the most contended link) and,
//! optionally, for time-shared CPU execution.
//!
//! The sharing discipline implemented here is weighted max-min fairness via
//! the classic *progressive filling* algorithm:
//!
//! 1. all unfrozen activities grow their rate at the same speed (scaled by
//!    their weight),
//! 2. the first resource to saturate freezes every activity that crosses it
//!    at the current rate,
//! 3. repeat with the remaining capacity and activities until all activities
//!    are frozen.
//!
//! The result is the unique max-min fair allocation. The model then knows the
//! rate of every activity, so the next completion time is simply
//! `min(remaining_i / rate_i)` — this is what the discrete-event loop uses to
//! schedule the next "transfer finished" event.

use std::collections::HashMap;

use crate::define_id;
use crate::time::SimTime;

define_id!(
    /// Identifier of a shared resource (a link, or a time-shared CPU pool).
    ResourceId,
    "resource"
);

/// Identifier of a fluid activity (e.g. one file transfer).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ActivityId(pub u64);

impl std::fmt::Display for ActivityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "activity#{}", self.0)
    }
}

/// Numerical tolerance used when comparing work/capacity quantities.
pub const EPSILON: f64 = 1e-9;

/// Virtual-time resolution of the fluid model, in seconds. Any activity whose
/// remaining work would finish within this much time at its current rate is
/// considered complete. Without this, floating-point residue after an
/// `advance` (remaining ≈ 10⁻⁷ bytes on a multi-GB transfer) produces a next
/// completion time far below the representable increment of the simulation
/// clock, and the discrete-event loop degenerates into an endless stream of
/// zero-length `FluidAdvance` events at the same timestamp. One microsecond is
/// far below anything the grid model resolves (WAN latencies are milliseconds,
/// walltimes are minutes to hours).
pub const TIME_RESOLUTION_S: f64 = 1e-6;

#[derive(Debug, Clone)]
struct ResourceState {
    capacity: f64,
    /// Activities currently demanding this resource.
    users: Vec<ActivityId>,
}

#[derive(Debug, Clone)]
struct ActivityState {
    remaining: f64,
    weight: f64,
    resources: Vec<ResourceId>,
    rate: f64,
}

/// The fluid sharing model: a bipartite graph of resources and activities.
#[derive(Debug, Clone, Default)]
pub struct FluidModel {
    resources: Vec<ResourceState>,
    activities: HashMap<ActivityId, ActivityState>,
    next_activity: u64,
    shares_valid: bool,
}

impl FluidModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with the given capacity (e.g. link bandwidth in
    /// bytes/s, or host flops/s for a time-shared CPU pool).
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId::new(self.resources.len());
        self.resources.push(ResourceState {
            capacity,
            users: Vec::new(),
        });
        id
    }

    /// Changes the capacity of an existing resource (used to model degraded
    /// links or dynamically resized CPU pools).
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.resources[id.index()].capacity = capacity;
        self.shares_valid = false;
    }

    /// Returns the capacity of a resource.
    pub fn capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.index()].capacity
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of in-flight activities.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Starts an activity requiring `amount` units of work across the listed
    /// resources with weight 1.
    pub fn add_activity(&mut self, amount: f64, resources: &[ResourceId]) -> ActivityId {
        self.add_weighted_activity(amount, resources, 1.0)
    }

    /// Starts an activity with an explicit fairness weight (a weight of 2
    /// receives twice the rate of a weight-1 activity on a shared bottleneck).
    pub fn add_weighted_activity(
        &mut self,
        amount: f64,
        resources: &[ResourceId],
        weight: f64,
    ) -> ActivityId {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "activity amount must be non-negative, got {amount}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "activity weight must be positive, got {weight}"
        );
        assert!(
            !resources.is_empty(),
            "an activity must use at least one resource"
        );
        let id = ActivityId(self.next_activity);
        self.next_activity += 1;
        for &r in resources {
            self.resources[r.index()].users.push(id);
        }
        self.activities.insert(
            id,
            ActivityState {
                remaining: amount,
                weight,
                resources: resources.to_vec(),
                rate: 0.0,
            },
        );
        self.shares_valid = false;
        id
    }

    /// Removes an activity regardless of remaining work (e.g. a cancelled
    /// transfer). Returns the remaining amount, if the activity existed.
    pub fn remove_activity(&mut self, id: ActivityId) -> Option<f64> {
        let state = self.activities.remove(&id)?;
        for r in &state.resources {
            self.resources[r.index()].users.retain(|&a| a != id);
        }
        self.shares_valid = false;
        Some(state.remaining)
    }

    /// Remaining work of an activity.
    pub fn remaining(&self, id: ActivityId) -> Option<f64> {
        self.activities.get(&id).map(|a| a.remaining)
    }

    /// Current max-min fair rate of an activity (0 until shares are computed).
    pub fn rate(&mut self, id: ActivityId) -> Option<f64> {
        self.ensure_shares();
        self.activities.get(&id).map(|a| a.rate)
    }

    /// Recomputes the max-min fair allocation if anything changed.
    fn ensure_shares(&mut self) {
        if self.shares_valid {
            return;
        }
        self.recompute_shares();
        self.shares_valid = true;
    }

    /// Progressive-filling max-min fairness.
    fn recompute_shares(&mut self) {
        // Residual capacity per resource and per-resource unfrozen weight sum.
        let n_res = self.resources.len();
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut frozen: HashMap<ActivityId, bool> =
            self.activities.keys().map(|&id| (id, false)).collect();
        // Activities with zero remaining work finish "instantly"; give them a
        // nominal rate so next_completion returns 0 for them.
        for (_, act) in self.activities.iter_mut() {
            act.rate = 0.0;
        }

        let mut unfrozen_count = self.activities.len();
        // Each iteration freezes at least one activity, so at most n iterations.
        while unfrozen_count > 0 {
            // Weight of unfrozen activities crossing each resource.
            let mut weight_sum = vec![0.0f64; n_res];
            for (id, act) in &self.activities {
                if frozen[id] {
                    continue;
                }
                for r in &act.resources {
                    weight_sum[r.index()] += act.weight;
                }
            }
            // Fair share increment per unit weight = min over used resources of
            // residual / weight_sum.
            let mut bottleneck: Option<(usize, f64)> = None;
            for (idx, &w) in weight_sum.iter().enumerate() {
                if w > EPSILON {
                    let share = residual[idx] / w;
                    match bottleneck {
                        Some((_, best)) if share >= best => {}
                        _ => bottleneck = Some((idx, share)),
                    }
                }
            }
            let Some((bottleneck_idx, fair_rate_per_weight)) = bottleneck else {
                // No unfrozen activity uses any resource with positive weight;
                // they all must have zero-length resource lists (impossible by
                // construction) — just freeze them at zero rate.
                break;
            };

            // Freeze every unfrozen activity crossing the bottleneck resource.
            let mut froze_any = false;
            let to_freeze: Vec<ActivityId> = self
                .activities
                .iter()
                .filter(|(id, act)| {
                    !frozen[*id] && act.resources.iter().any(|r| r.index() == bottleneck_idx)
                })
                .map(|(&id, _)| id)
                .collect();
            for id in to_freeze {
                let act = self.activities.get_mut(&id).expect("activity exists");
                act.rate = fair_rate_per_weight * act.weight;
                for r in &act.resources {
                    residual[r.index()] = (residual[r.index()] - act.rate).max(0.0);
                }
                *frozen.get_mut(&id).expect("tracked") = true;
                unfrozen_count -= 1;
                froze_any = true;
            }
            if !froze_any {
                break;
            }
        }
    }

    /// Time until the next activity completes at current rates, if any
    /// activity is in flight. Zero-work activities complete immediately.
    pub fn time_to_next_completion(&mut self) -> Option<SimTime> {
        self.ensure_shares();
        let mut best: Option<f64> = None;
        for act in self.activities.values() {
            let t = if act.remaining <= EPSILON
                || (act.rate > EPSILON && act.remaining <= act.rate * TIME_RESOLUTION_S)
            {
                0.0
            } else if act.rate > EPSILON {
                act.remaining / act.rate
            } else {
                continue;
            };
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best.map(SimTime::from_secs)
    }

    /// Advances every in-flight activity by `dt` of virtual time and returns
    /// the activities that completed (remaining work reached zero), removing
    /// them from the model.
    pub fn advance(&mut self, dt: SimTime) -> Vec<ActivityId> {
        self.ensure_shares();
        let dt = dt.as_secs();
        let mut finished = Vec::new();
        for (id, act) in self.activities.iter_mut() {
            act.remaining -= act.rate * dt;
            // An activity is done when its remaining work is gone *or* would
            // be gone within the fluid model's time resolution — the latter
            // absorbs floating-point residue that would otherwise stall the
            // event loop on sub-resolvable completion times.
            if act.remaining <= EPSILON || act.remaining <= act.rate * TIME_RESOLUTION_S {
                act.remaining = 0.0;
                finished.push(*id);
            }
        }
        // Deterministic order for downstream event scheduling.
        finished.sort();
        for id in &finished {
            let state = self.activities.remove(id).expect("present");
            for r in &state.resources {
                self.resources[r.index()].users.retain(|a| a != id);
            }
        }
        if !finished.is_empty() {
            self.shares_valid = false;
        }
        finished
    }

    /// Total allocated rate on a resource (diagnostics / tests).
    pub fn allocated_on(&mut self, resource: ResourceId) -> f64 {
        self.ensure_shares();
        self.activities
            .values()
            .filter(|a| a.resources.contains(&resource))
            .map(|a| a.rate)
            .sum()
    }

    /// Current rates of all activities (diagnostics / tests), sorted by id.
    pub fn rates(&mut self) -> Vec<(ActivityId, f64)> {
        self.ensure_shares();
        let mut v: Vec<_> = self
            .activities
            .iter()
            .map(|(&id, a)| (id, a.rate))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_activity_gets_full_capacity() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1000.0, &[link]);
        assert!((m.rate(a).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(
            m.time_to_next_completion().unwrap(),
            SimTime::from_secs(10.0)
        );
    }

    #[test]
    fn two_activities_share_equally() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(500.0, &[link]);
        let b = m.add_activity(1000.0, &[link]);
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        // a completes first after 10s.
        let dt = m.time_to_next_completion().unwrap();
        assert!((dt.as_secs() - 10.0).abs() < 1e-9);
        let done = m.advance(dt);
        assert_eq!(done, vec![a]);
        // b now gets the full link.
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_share() {
        let mut m = FluidModel::new();
        let link = m.add_resource(90.0);
        let heavy = m.add_weighted_activity(1e9, &[link], 2.0);
        let light = m.add_weighted_activity(1e9, &[link], 1.0);
        assert!((m.rate(heavy).unwrap() - 60.0).abs() < 1e-9);
        assert!((m.rate(light).unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn multi_link_route_bottlenecked_by_slowest() {
        let mut m = FluidModel::new();
        let fast = m.add_resource(1000.0);
        let slow = m.add_resource(10.0);
        let a = m.add_activity(100.0, &[fast, slow]);
        assert!((m.rate(a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn classic_max_min_three_flows() {
        // Two links of capacity 10; flow A uses link1, flow B uses link2,
        // flow C uses both. Max-min allocation: all get 5, then A and B grow
        // to 5 more? No: progressive filling gives C=5, A=5, B=5; residual on
        // each link is 0 after freezing at the shared bottleneck... Actually
        // both links saturate simultaneously at rate 5, so A=B=C=5.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(10.0);
        let a = m.add_activity(1e9, &[l1]);
        let b = m.add_activity(1e9, &[l2]);
        let c = m.add_activity(1e9, &[l1, l2]);
        let ra = m.rate(a).unwrap();
        let rb = m.rate(b).unwrap();
        let rc = m.rate(c).unwrap();
        assert!((ra - 5.0).abs() < 1e-9, "ra={ra}");
        assert!((rb - 5.0).abs() < 1e-9, "rb={rb}");
        assert!((rc - 5.0).abs() < 1e-9, "rc={rc}");
    }

    #[test]
    fn asymmetric_max_min() {
        // link1 cap 10 shared by A and C; link2 cap 100 used by B and C.
        // Progressive filling: bottleneck link1 at rate 5 freezes A and C;
        // B then grows to 95 on link2.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(100.0);
        let a = m.add_activity(1e9, &[l1]);
        let b = m.add_activity(1e9, &[l2]);
        let c = m.add_activity(1e9, &[l1, l2]);
        assert!((m.rate(a).unwrap() - 5.0).abs() < 1e-9);
        assert!((m.rate(c).unwrap() - 5.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut m = FluidModel::new();
        let links: Vec<_> = (0..5)
            .map(|i| m.add_resource(10.0 * (i + 1) as f64))
            .collect();
        for i in 0..20 {
            let r1 = links[i % 5];
            let r2 = links[(i * 3 + 1) % 5];
            let route = if r1 == r2 { vec![r1] } else { vec![r1, r2] };
            m.add_activity(1e6, &route);
        }
        for (idx, &l) in links.iter().enumerate() {
            let alloc = m.allocated_on(l);
            let cap = 10.0 * (idx + 1) as f64;
            assert!(
                alloc <= cap + 1e-6,
                "resource {idx} over-allocated: {alloc} > {cap}"
            );
        }
    }

    #[test]
    fn removing_activity_restores_capacity() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        let b = m.add_activity(1e6, &[link]);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        let remaining = m.remove_activity(a).unwrap();
        assert!(remaining > 0.0);
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
        assert!(m.remove_activity(a).is_none());
    }

    #[test]
    fn zero_work_activity_completes_immediately() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(0.0, &[link]);
        assert_eq!(m.time_to_next_completion().unwrap(), SimTime::ZERO);
        let done = m.advance(SimTime::ZERO);
        assert_eq!(done, vec![a]);
    }

    #[test]
    fn set_capacity_changes_rates() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        assert!((m.rate(a).unwrap() - 100.0).abs() < 1e-9);
        m.set_capacity(link, 10.0);
        assert!((m.rate(a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sub_resolution_remnant_completes_with_the_advance_that_produced_it() {
        let mut m = FluidModel::new();
        let link = m.add_resource(1e9);
        let a = m.add_activity(1e9, &[link]);
        // Stop 500 ns short of the analytic completion time: the ~500 bytes
        // left are below the model's time resolution and must complete with
        // this advance rather than generate a separate sub-microsecond event
        // (which the engine could not resolve against the current timestamp).
        let done = m.advance(SimTime::from_secs(1.0 - 5e-7));
        assert_eq!(done, vec![a]);
        assert_eq!(m.activity_count(), 0);
    }

    #[test]
    fn completion_loop_converges_despite_floating_point_residue() {
        // Awkward, non-round capacities and amounts so that remaining work
        // accumulates floating-point residue; the advance-to-next-completion
        // loop must still terminate in a bounded number of steps.
        let mut m = FluidModel::new();
        let shared = m.add_resource(1.234_567_89e9);
        let uplink = m.add_resource(9.871_234_5e8);
        let mut ids = Vec::new();
        for i in 0..13 {
            let amount = 1.0e9 + (i as f64) * 0.123_456_7;
            let route = if i % 2 == 0 {
                vec![shared]
            } else {
                vec![shared, uplink]
            };
            ids.push(m.add_activity(amount, &route));
        }
        let mut steps = 0usize;
        let mut completed = 0usize;
        while let Some(dt) = m.time_to_next_completion() {
            completed += m.advance(dt).len();
            steps += 1;
            assert!(steps < 1_000, "completion loop did not converge");
            if m.activity_count() == 0 {
                break;
            }
        }
        assert_eq!(completed, ids.len());
        assert!(steps <= 2 * ids.len(), "too many advance steps: {steps}");
    }

    #[test]
    fn advance_until_empty_conserves_work() {
        let mut m = FluidModel::new();
        let link = m.add_resource(50.0);
        let work = [100.0, 200.0, 300.0];
        let mut ids = Vec::new();
        for w in work {
            ids.push(m.add_activity(w, &[link]));
        }
        let mut elapsed = 0.0;
        let mut completed = 0;
        while let Some(dt) = m.time_to_next_completion() {
            elapsed += dt.as_secs();
            completed += m.advance(dt).len();
            if completed == work.len() {
                break;
            }
        }
        assert_eq!(completed, 3);
        // Total work 600 through a 50-unit link, always saturated => 12s.
        assert!((elapsed - 12.0).abs() < 1e-6, "elapsed={elapsed}");
    }
}
