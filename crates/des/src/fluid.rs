//! Fluid resource-sharing model with progressive-filling max-min fairness.
//!
//! SimGrid's accuracy advantage over coarse-grained simulators comes from its
//! *fluid* models: concurrent activities (network transfers, time-shared
//! computations) continuously share resource capacity, and the share of every
//! activity is recomputed whenever an activity starts or finishes. CGSim-RS
//! uses this model for wide-area network transfers (a transfer traverses a
//! multi-link route and is bottlenecked by the most contended link) and,
//! optionally, for time-shared CPU execution.
//!
//! The sharing discipline implemented here is weighted max-min fairness via
//! the classic *progressive filling* algorithm:
//!
//! 1. all unfrozen activities grow their rate at the same speed (scaled by
//!    their weight),
//! 2. the first resource to saturate freezes every activity that crosses it
//!    at the current rate,
//! 3. repeat with the remaining capacity and activities until all activities
//!    are frozen.
//!
//! The result is the unique max-min fair allocation. The model then knows the
//! rate of every activity, so the next completion time is simply
//! `min(remaining_i / rate_i)` — this is what the discrete-event loop uses to
//! schedule the next "transfer finished" event.
//!
//! # Slab layout and determinism
//!
//! Activities live in a *slab*: a dense `Vec` of slots addressed by index,
//! with freed slots kept on a LIFO free list and reused. An [`ActivityId`] is
//! a `(slot, generation)` pair packed into a `u64`; every release bumps the
//! slot's generation, so a stale handle held after its activity finished (or
//! after the slot was recycled by a newer activity) is rejected by every
//! lookup instead of silently aliasing the new occupant.
//!
//! The layout exists for two reasons:
//!
//! * **Determinism.** Share recomputation iterates resources and slots in
//!   strictly ascending index order, and per-resource user lists are kept
//!   sorted by slot index. There is no hash map anywhere on the path, so
//!   floating-point accumulation order — and therefore every transfer rate,
//!   every completion time and ultimately whole simulations — is bit-for-bit
//!   identical between two runs of the same scenario. (A randomly seeded
//!   `HashMap` iteration order, as used before this layout, could legally
//!   reorder the additions and change the low bits of the allocation between
//!   runs of the same binary.)
//! * **Speed.** `recompute_shares` runs on every activity start/finish — the
//!   hottest path of the whole simulator. Slab indices make every per-round
//!   structure a flat `Vec` indexed by `usize`; the `weight_sum` / `residual`
//!   / `frozen` scratch buffers are owned by the model and reused across
//!   calls, so steady-state recomputation performs no allocation at all.

use crate::define_id;
use crate::time::SimTime;

define_id!(
    /// Identifier of a shared resource (a link, or a time-shared CPU pool).
    ResourceId,
    "resource"
);

/// Generation-tagged handle of a fluid activity (e.g. one file transfer).
///
/// Packs a slab slot index (low 32 bits) and the slot's generation at
/// creation time (high 32 bits). The generation lets the model reject stale
/// handles: once an activity completes or is removed, its slot's generation
/// is bumped, so every later lookup through the old id returns `None` even if
/// the slot has been recycled for a new activity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ActivityId(u64);

impl ActivityId {
    /// Packs a slot index and generation into an id.
    fn pack(slot: u32, generation: u32) -> Self {
        ActivityId((u64::from(generation) << 32) | u64::from(slot))
    }

    /// The slab slot this id points at.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The slot generation this id was created under.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Display for ActivityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "activity#{}@{}", self.slot(), self.generation())
    }
}

/// Numerical tolerance used when comparing work/capacity quantities.
pub const EPSILON: f64 = 1e-9;

/// Virtual-time resolution of the fluid model, in seconds. Any activity whose
/// remaining work would finish within this much time at its current rate is
/// considered complete. Without this, floating-point residue after an
/// `advance` (remaining ≈ 10⁻⁷ bytes on a multi-GB transfer) produces a next
/// completion time far below the representable increment of the simulation
/// clock, and the discrete-event loop degenerates into an endless stream of
/// zero-length `FluidAdvance` events at the same timestamp. One microsecond is
/// far below anything the grid model resolves (WAN latencies are milliseconds,
/// walltimes are minutes to hours).
pub const TIME_RESOLUTION_S: f64 = 1e-6;

#[derive(Debug, Clone)]
struct ResourceState {
    capacity: f64,
    /// Slots of the activities currently demanding this resource, kept sorted
    /// by slot index so iteration order is independent of insertion history.
    users: Vec<u32>,
}

/// One slab slot. Freed slots keep their `resources` allocation for reuse.
#[derive(Debug, Clone, Default)]
struct ActivitySlot {
    generation: u32,
    live: bool,
    remaining: f64,
    weight: f64,
    rate: f64,
    resources: Vec<ResourceId>,
}

/// The fluid sharing model: a bipartite graph of resources and activities.
#[derive(Debug, Clone, Default)]
pub struct FluidModel {
    resources: Vec<ResourceState>,
    slots: Vec<ActivitySlot>,
    /// LIFO free list of released slots (deterministic reuse order).
    free: Vec<u32>,
    live_count: usize,
    shares_valid: bool,
    // Reusable scratch buffers for `recompute_shares` (no steady-state
    // allocation on the hot path).
    scratch_residual: Vec<f64>,
    scratch_weight_sum: Vec<f64>,
    scratch_frozen: Vec<bool>,
}

impl FluidModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with the given capacity (e.g. link bandwidth in
    /// bytes/s, or host flops/s for a time-shared CPU pool).
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId::new(self.resources.len());
        self.resources.push(ResourceState {
            capacity,
            users: Vec::new(),
        });
        id
    }

    /// Changes the capacity of an existing resource (used to model degraded
    /// links or dynamically resized CPU pools).
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.resources[id.index()].capacity = capacity;
        self.shares_valid = false;
    }

    /// Returns the capacity of a resource.
    pub fn capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.index()].capacity
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of in-flight activities.
    pub fn activity_count(&self) -> usize {
        self.live_count
    }

    /// Starts an activity requiring `amount` units of work across the listed
    /// resources with weight 1.
    pub fn add_activity(&mut self, amount: f64, resources: &[ResourceId]) -> ActivityId {
        self.add_weighted_activity(amount, resources, 1.0)
    }

    /// Starts an activity with an explicit fairness weight (a weight of 2
    /// receives twice the rate of a weight-1 activity on a shared bottleneck).
    pub fn add_weighted_activity(
        &mut self,
        amount: f64,
        resources: &[ResourceId],
        weight: f64,
    ) -> ActivityId {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "activity amount must be non-negative, got {amount}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "activity weight must be positive, got {weight}"
        );
        assert!(
            !resources.is_empty(),
            "an activity must use at least one resource"
        );
        let slot_idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.slots.len();
                assert!(idx < u32::MAX as usize, "fluid slab exhausted");
                self.slots.push(ActivitySlot::default());
                idx as u32
            }
        };
        let slot = &mut self.slots[slot_idx as usize];
        slot.live = true;
        slot.remaining = amount;
        slot.weight = weight;
        slot.rate = 0.0;
        slot.resources.clear();
        slot.resources.extend_from_slice(resources);
        let generation = slot.generation;
        for r in resources {
            let users = &mut self.resources[r.index()].users;
            let pos = users.binary_search(&slot_idx).unwrap_or_else(|p| p);
            users.insert(pos, slot_idx);
        }
        self.live_count += 1;
        self.shares_valid = false;
        ActivityId::pack(slot_idx, generation)
    }

    /// Resolves an id to its slot index, rejecting stale generations.
    fn slot_of(&self, id: ActivityId) -> Option<usize> {
        let idx = id.slot() as usize;
        let slot = self.slots.get(idx)?;
        (slot.live && slot.generation == id.generation()).then_some(idx)
    }

    /// Unlinks a slot from its resources, bumps its generation (invalidating
    /// every outstanding id) and returns it to the free list.
    fn release_slot(&mut self, slot_idx: u32) {
        let resources = std::mem::take(&mut self.slots[slot_idx as usize].resources);
        for r in &resources {
            let users = &mut self.resources[r.index()].users;
            if let Ok(pos) = users.binary_search(&slot_idx) {
                users.remove(pos);
            }
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.resources = resources;
        slot.resources.clear();
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        slot.remaining = 0.0;
        slot.rate = 0.0;
        slot.weight = 0.0;
        self.free.push(slot_idx);
        self.live_count -= 1;
    }

    /// Removes an activity regardless of remaining work (e.g. a cancelled
    /// transfer). Returns the remaining amount, if the activity existed.
    pub fn remove_activity(&mut self, id: ActivityId) -> Option<f64> {
        let idx = self.slot_of(id)?;
        let remaining = self.slots[idx].remaining;
        self.release_slot(idx as u32);
        self.shares_valid = false;
        Some(remaining)
    }

    /// Remaining work of an activity (`None` for stale/unknown ids).
    pub fn remaining(&self, id: ActivityId) -> Option<f64> {
        self.slot_of(id).map(|idx| self.slots[idx].remaining)
    }

    /// Current max-min fair rate of an activity (`None` for stale ids).
    pub fn rate(&mut self, id: ActivityId) -> Option<f64> {
        self.ensure_shares();
        self.slot_of(id).map(|idx| self.slots[idx].rate)
    }

    /// Recomputes the max-min fair allocation if anything changed.
    fn ensure_shares(&mut self) {
        if self.shares_valid {
            return;
        }
        self.recompute_shares();
        self.shares_valid = true;
    }

    /// Progressive-filling max-min fairness.
    ///
    /// Every loop below walks a flat `Vec` in ascending index order, so the
    /// floating-point accumulation order is a pure function of the model's
    /// call history — the bit-for-bit reproducibility contract of the crate.
    fn recompute_shares(&mut self) {
        let n_res = self.resources.len();
        let mut residual = std::mem::take(&mut self.scratch_residual);
        let mut weight_sum = std::mem::take(&mut self.scratch_weight_sum);
        let mut frozen = std::mem::take(&mut self.scratch_frozen);
        residual.clear();
        residual.extend(self.resources.iter().map(|r| r.capacity));
        weight_sum.clear();
        weight_sum.resize(n_res, 0.0);
        frozen.clear();
        frozen.resize(self.slots.len(), false);

        let mut unfrozen = 0usize;
        for slot in self.slots.iter_mut().filter(|s| s.live) {
            slot.rate = 0.0;
            unfrozen += 1;
        }

        // Each iteration freezes at least one activity, so at most n rounds.
        while unfrozen > 0 {
            // Weight of unfrozen activities crossing each resource.
            for (idx, res) in self.resources.iter().enumerate() {
                let mut sum = 0.0;
                for &u in &res.users {
                    if !frozen[u as usize] {
                        sum += self.slots[u as usize].weight;
                    }
                }
                weight_sum[idx] = sum;
            }
            // Fair share increment per unit weight = min over used resources
            // of residual / weight_sum (first such resource on ties).
            let mut bottleneck: Option<(usize, f64)> = None;
            for (idx, &w) in weight_sum.iter().enumerate() {
                if w > EPSILON {
                    let share = residual[idx] / w;
                    match bottleneck {
                        Some((_, best)) if share >= best => {}
                        _ => bottleneck = Some((idx, share)),
                    }
                }
            }
            let Some((bottleneck_idx, fair_rate_per_weight)) = bottleneck else {
                // No unfrozen activity uses any resource with positive weight;
                // they all must have zero-length resource lists (impossible by
                // construction) — just freeze them at zero rate.
                break;
            };

            // Freeze every unfrozen activity crossing the bottleneck
            // resource, in ascending slot order.
            let mut froze_any = false;
            let mut cursor = 0;
            while cursor < self.resources[bottleneck_idx].users.len() {
                let slot_idx = self.resources[bottleneck_idx].users[cursor] as usize;
                cursor += 1;
                if frozen[slot_idx] {
                    continue;
                }
                let rate = fair_rate_per_weight * self.slots[slot_idx].weight;
                for r in &self.slots[slot_idx].resources {
                    residual[r.index()] = (residual[r.index()] - rate).max(0.0);
                }
                self.slots[slot_idx].rate = rate;
                frozen[slot_idx] = true;
                unfrozen -= 1;
                froze_any = true;
            }
            if !froze_any {
                break;
            }
        }

        self.scratch_residual = residual;
        self.scratch_weight_sum = weight_sum;
        self.scratch_frozen = frozen;
    }

    /// Time until the next activity completes at current rates, if any
    /// activity is in flight. Zero-work activities complete immediately.
    pub fn time_to_next_completion(&mut self) -> Option<SimTime> {
        self.ensure_shares();
        let mut best: Option<f64> = None;
        for slot in self.slots.iter().filter(|s| s.live) {
            let t = if slot.remaining <= EPSILON
                || (slot.rate > EPSILON && slot.remaining <= slot.rate * TIME_RESOLUTION_S)
            {
                0.0
            } else if slot.rate > EPSILON {
                slot.remaining / slot.rate
            } else {
                continue;
            };
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best.map(SimTime::from_secs)
    }

    /// Advances every in-flight activity by `dt` of virtual time and returns
    /// the activities that completed (remaining work reached zero), removing
    /// them from the model. The returned ids are in ascending slot order — a
    /// deterministic order for downstream event scheduling.
    pub fn advance(&mut self, dt: SimTime) -> Vec<ActivityId> {
        self.ensure_shares();
        let dt = dt.as_secs();
        let mut finished = Vec::new();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if !slot.live {
                continue;
            }
            slot.remaining -= slot.rate * dt;
            // An activity is done when its remaining work is gone *or* would
            // be gone within the fluid model's time resolution — the latter
            // absorbs floating-point residue that would otherwise stall the
            // event loop on sub-resolvable completion times.
            if slot.remaining <= EPSILON || slot.remaining <= slot.rate * TIME_RESOLUTION_S {
                slot.remaining = 0.0;
                finished.push(ActivityId::pack(idx as u32, slot.generation));
            }
        }
        for id in &finished {
            self.release_slot(id.slot());
        }
        if !finished.is_empty() {
            self.shares_valid = false;
        }
        finished
    }

    /// Total allocated rate on a resource (diagnostics / tests).
    pub fn allocated_on(&mut self, resource: ResourceId) -> f64 {
        self.ensure_shares();
        self.slots
            .iter()
            .filter(|s| s.live && s.resources.contains(&resource))
            .map(|s| s.rate)
            .sum()
    }

    /// Current rates of all activities (diagnostics / tests), in ascending
    /// slot order.
    pub fn rates(&mut self) -> Vec<(ActivityId, f64)> {
        self.ensure_shares();
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(idx, s)| (ActivityId::pack(idx as u32, s.generation), s.rate))
            .collect()
    }
}

/// A secondary map keyed by [`ActivityId`], slab-parallel to [`FluidModel`].
///
/// Stores one value per live activity in a dense `Vec` indexed by the id's
/// slot, with the generation recorded alongside so stale ids miss instead of
/// aliasing a recycled slot. This replaces `HashMap<ActivityId, T>` in
/// consumers (the simulation core keeps its per-activity `(job, phase)`
/// bookkeeping here): lookups are O(1) index arithmetic and iteration-free,
/// and no hashing ever happens on the per-event path.
#[derive(Debug, Clone)]
pub struct ActivityMap<T> {
    entries: Vec<Option<(u32, T)>>,
    len: usize,
}

impl<T> Default for ActivityMap<T> {
    fn default() -> Self {
        ActivityMap {
            entries: Vec::new(),
            len: 0,
        }
    }
}

impl<T> ActivityMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associates `value` with `id`, returning the previous value for the
    /// same id. A value left behind by a stale id on the same slot is
    /// discarded silently.
    pub fn insert(&mut self, id: ActivityId, value: T) -> Option<T> {
        let idx = id.slot() as usize;
        if idx >= self.entries.len() {
            self.entries.resize_with(idx + 1, || None);
        }
        let previous = self.entries[idx].take();
        self.entries[idx] = Some((id.generation(), value));
        match previous {
            Some((generation, old)) if generation == id.generation() => Some(old),
            Some(_) => None, // overwrote a stale entry; occupancy unchanged
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// The value associated with `id`, if current.
    pub fn get(&self, id: ActivityId) -> Option<&T> {
        match self.entries.get(id.slot() as usize)? {
            Some((generation, value)) if *generation == id.generation() => Some(value),
            _ => None,
        }
    }

    /// Removes and returns the value associated with `id`, if current.
    pub fn remove(&mut self, id: ActivityId) -> Option<T> {
        let entry = self.entries.get_mut(id.slot() as usize)?;
        match entry {
            Some((generation, _)) if *generation == id.generation() => {
                self.len -= 1;
                entry.take().map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_activity_gets_full_capacity() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1000.0, &[link]);
        assert!((m.rate(a).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(
            m.time_to_next_completion().unwrap(),
            SimTime::from_secs(10.0)
        );
    }

    #[test]
    fn two_activities_share_equally() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(500.0, &[link]);
        let b = m.add_activity(1000.0, &[link]);
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        // a completes first after 10s.
        let dt = m.time_to_next_completion().unwrap();
        assert!((dt.as_secs() - 10.0).abs() < 1e-9);
        let done = m.advance(dt);
        assert_eq!(done, vec![a]);
        // b now gets the full link.
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_share() {
        let mut m = FluidModel::new();
        let link = m.add_resource(90.0);
        let heavy = m.add_weighted_activity(1e9, &[link], 2.0);
        let light = m.add_weighted_activity(1e9, &[link], 1.0);
        assert!((m.rate(heavy).unwrap() - 60.0).abs() < 1e-9);
        assert!((m.rate(light).unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn multi_link_route_bottlenecked_by_slowest() {
        let mut m = FluidModel::new();
        let fast = m.add_resource(1000.0);
        let slow = m.add_resource(10.0);
        let a = m.add_activity(100.0, &[fast, slow]);
        assert!((m.rate(a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn classic_max_min_three_flows() {
        // Two links of capacity 10; flow A uses link1, flow B uses link2,
        // flow C uses both. Both links saturate simultaneously at rate 5, so
        // the max-min allocation is A=B=C=5.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(10.0);
        let a = m.add_activity(1e9, &[l1]);
        let b = m.add_activity(1e9, &[l2]);
        let c = m.add_activity(1e9, &[l1, l2]);
        let ra = m.rate(a).unwrap();
        let rb = m.rate(b).unwrap();
        let rc = m.rate(c).unwrap();
        assert!((ra - 5.0).abs() < 1e-9, "ra={ra}");
        assert!((rb - 5.0).abs() < 1e-9, "rb={rb}");
        assert!((rc - 5.0).abs() < 1e-9, "rc={rc}");
    }

    #[test]
    fn asymmetric_max_min() {
        // link1 cap 10 shared by A and C; link2 cap 100 used by B and C.
        // Progressive filling: bottleneck link1 at rate 5 freezes A and C;
        // B then grows to 95 on link2.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(100.0);
        let a = m.add_activity(1e9, &[l1]);
        let b = m.add_activity(1e9, &[l2]);
        let c = m.add_activity(1e9, &[l1, l2]);
        assert!((m.rate(a).unwrap() - 5.0).abs() < 1e-9);
        assert!((m.rate(c).unwrap() - 5.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut m = FluidModel::new();
        let links: Vec<_> = (0..5)
            .map(|i| m.add_resource(10.0 * (i + 1) as f64))
            .collect();
        for i in 0..20 {
            let r1 = links[i % 5];
            let r2 = links[(i * 3 + 1) % 5];
            let route = if r1 == r2 { vec![r1] } else { vec![r1, r2] };
            m.add_activity(1e6, &route);
        }
        for (idx, &l) in links.iter().enumerate() {
            let alloc = m.allocated_on(l);
            let cap = 10.0 * (idx + 1) as f64;
            assert!(
                alloc <= cap + 1e-6,
                "resource {idx} over-allocated: {alloc} > {cap}"
            );
        }
    }

    #[test]
    fn removing_activity_restores_capacity() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        let b = m.add_activity(1e6, &[link]);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        let remaining = m.remove_activity(a).unwrap();
        assert!(remaining > 0.0);
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
        assert!(m.remove_activity(a).is_none());
    }

    #[test]
    fn zero_work_activity_completes_immediately() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(0.0, &[link]);
        assert_eq!(m.time_to_next_completion().unwrap(), SimTime::ZERO);
        let done = m.advance(SimTime::ZERO);
        assert_eq!(done, vec![a]);
    }

    #[test]
    fn set_capacity_changes_rates() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        assert!((m.rate(a).unwrap() - 100.0).abs() < 1e-9);
        m.set_capacity(link, 10.0);
        assert!((m.rate(a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sub_resolution_remnant_completes_with_the_advance_that_produced_it() {
        let mut m = FluidModel::new();
        let link = m.add_resource(1e9);
        let a = m.add_activity(1e9, &[link]);
        // Stop 500 ns short of the analytic completion time: the ~500 bytes
        // left are below the model's time resolution and must complete with
        // this advance rather than generate a separate sub-microsecond event
        // (which the engine could not resolve against the current timestamp).
        let done = m.advance(SimTime::from_secs(1.0 - 5e-7));
        assert_eq!(done, vec![a]);
        assert_eq!(m.activity_count(), 0);
    }

    #[test]
    fn completion_loop_converges_despite_floating_point_residue() {
        // Awkward, non-round capacities and amounts so that remaining work
        // accumulates floating-point residue; the advance-to-next-completion
        // loop must still terminate in a bounded number of steps.
        let mut m = FluidModel::new();
        let shared = m.add_resource(1.234_567_89e9);
        let uplink = m.add_resource(9.871_234_5e8);
        let mut ids = Vec::new();
        for i in 0..13 {
            let amount = 1.0e9 + (i as f64) * 0.123_456_7;
            let route = if i % 2 == 0 {
                vec![shared]
            } else {
                vec![shared, uplink]
            };
            ids.push(m.add_activity(amount, &route));
        }
        let mut steps = 0usize;
        let mut completed = 0usize;
        while let Some(dt) = m.time_to_next_completion() {
            completed += m.advance(dt).len();
            steps += 1;
            assert!(steps < 1_000, "completion loop did not converge");
            if m.activity_count() == 0 {
                break;
            }
        }
        assert_eq!(completed, ids.len());
        assert!(steps <= 2 * ids.len(), "too many advance steps: {steps}");
    }

    #[test]
    fn advance_until_empty_conserves_work() {
        let mut m = FluidModel::new();
        let link = m.add_resource(50.0);
        let work = [100.0, 200.0, 300.0];
        let mut ids = Vec::new();
        for w in work {
            ids.push(m.add_activity(w, &[link]));
        }
        let mut elapsed = 0.0;
        let mut completed = 0;
        while let Some(dt) = m.time_to_next_completion() {
            elapsed += dt.as_secs();
            completed += m.advance(dt).len();
            if completed == work.len() {
                break;
            }
        }
        assert_eq!(completed, 3);
        // Total work 600 through a 50-unit link, always saturated => 12s.
        assert!((elapsed - 12.0).abs() < 1e-6, "elapsed={elapsed}");
    }

    #[test]
    fn slots_are_reused_and_stale_ids_rejected() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        assert_eq!(a.slot(), 0);
        assert_eq!(a.generation(), 0);
        m.remove_activity(a).unwrap();

        // The freed slot is recycled under a new generation.
        let b = m.add_activity(2e6, &[link]);
        assert_eq!(b.slot(), 0);
        assert_eq!(b.generation(), 1);
        assert_ne!(a, b);

        // The stale id misses every lookup instead of aliasing b.
        assert_eq!(m.remaining(a), None);
        assert_eq!(m.rate(a), None);
        assert_eq!(m.remove_activity(a), None);
        assert!((m.remaining(b).unwrap() - 2e6).abs() < 1e-9);
        assert_eq!(m.activity_count(), 1);
    }

    #[test]
    fn duplicate_resources_in_route_are_tolerated() {
        // A route listing the same resource twice inserts the slot twice into
        // that resource's user list; release must remove both copies (one per
        // occurrence in the activity's resource list), leaving no dangling
        // slot index behind.
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(100.0, &[link, link]);
        // The duplicated entry counts the weight twice, halving the rate —
        // same as the pre-slab behaviour.
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        m.remove_activity(a).unwrap();

        // The slot recycles cleanly: a fresh activity not crossing the
        // duplicated entry sees the full capacity, completes, and the model
        // drains to empty (a stale user entry would corrupt the weight sums
        // or panic the freezing loop).
        let b = m.add_activity(100.0, &[link]);
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
        let done = m.advance(SimTime::from_secs(1.0));
        assert_eq!(done, vec![b]);
        assert_eq!(m.activity_count(), 0);
        assert!(m.time_to_next_completion().is_none());
    }

    #[test]
    fn completed_activity_id_is_stale_after_advance() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(100.0, &[link]);
        let done = m.advance(SimTime::from_secs(1.0));
        assert_eq!(done, vec![a]);
        assert_eq!(m.remaining(a), None);
        assert_eq!(m.rate(a), None);
    }

    #[test]
    fn rates_are_identical_under_permuted_insertion_order() {
        // Exactly representable capacities and unit weights: the max-min
        // allocation is then order-independent *bit for bit*, so two models
        // holding the same activity set in different slots must agree.
        let build = |order: &[usize]| {
            let mut m = FluidModel::new();
            let l1 = m.add_resource(8.0);
            let l2 = m.add_resource(2.0);
            let l3 = m.add_resource(16.0);
            let routes: [Vec<ResourceId>; 4] = [vec![l1], vec![l1, l2], vec![l2, l3], vec![l3]];
            let mut ids = vec![None; routes.len()];
            for &k in order {
                ids[k] = Some(m.add_activity(1e6, &routes[k]));
            }
            let rates: Vec<f64> = ids
                .into_iter()
                .map(|id| m.rate(id.expect("all inserted")).unwrap())
                .collect();
            rates
        };
        let forward = build(&[0, 1, 2, 3]);
        let reversed = build(&[3, 2, 1, 0]);
        let shuffled = build(&[2, 0, 3, 1]);
        for (i, r) in forward.iter().enumerate() {
            assert_eq!(r.to_bits(), reversed[i].to_bits(), "activity {i}");
            assert_eq!(r.to_bits(), shuffled[i].to_bits(), "activity {i}");
        }
    }

    #[test]
    fn recompute_is_identical_across_independently_built_models() {
        // Same construction sequence → bit-identical rates, including after
        // churn (removals re-sorting the user lists and recycling slots).
        let build = || {
            let mut m = FluidModel::new();
            let links: Vec<_> = (0..6).map(|i| m.add_resource(10.0 + i as f64)).collect();
            let mut ids = Vec::new();
            for i in 0..40 {
                let route = vec![links[i % 6], links[(i * 5 + 2) % 6]];
                ids.push(m.add_activity(1e5 + i as f64, &route));
            }
            for i in (0..40).step_by(3) {
                m.remove_activity(ids[i]);
            }
            for i in 0..10 {
                m.add_activity(5e4 + i as f64, &[links[i % 6]]);
            }
            let rates: Vec<((u32, u32), u64)> = m
                .rates()
                .into_iter()
                .map(|(id, r)| ((id.slot(), id.generation()), r.to_bits()))
                .collect();
            rates
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn activity_map_tracks_generations() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let mut map: ActivityMap<&str> = ActivityMap::new();

        let a = m.add_activity(1e6, &[link]);
        assert_eq!(map.insert(a, "first"), None);
        assert_eq!(map.get(a), Some(&"first"));
        assert_eq!(map.len(), 1);

        m.remove_activity(a).unwrap();
        let b = m.add_activity(1e6, &[link]);
        assert_eq!(b.slot(), a.slot(), "slot is recycled");

        // The stale id no longer resolves; the new id takes over the slot.
        assert_eq!(map.insert(b, "second"), None);
        assert_eq!(map.len(), 1, "stale entry replaced, not accumulated");
        assert_eq!(map.get(a), None);
        assert_eq!(map.remove(a), None);
        assert_eq!(map.remove(b), Some("second"));
        assert!(map.is_empty());
    }

    #[test]
    fn activity_id_display_shows_slot_and_generation() {
        let mut m = FluidModel::new();
        let link = m.add_resource(1.0);
        let a = m.add_activity(1.0, &[link]);
        assert_eq!(format!("{a}"), "activity#0@0");
        m.remove_activity(a).unwrap();
        let b = m.add_activity(1.0, &[link]);
        assert_eq!(format!("{b}"), "activity#0@1");
    }
}
