//! # cgsim-des — discrete-event simulation engine
//!
//! This crate is the simulation substrate of CGSim-RS. The published CGSim is
//! built on top of SimGrid's validated discrete-event core; since no SimGrid
//! binding is available here, this crate re-implements the pieces of that core
//! that CGSim actually relies on:
//!
//! * a [`SimTime`] virtual clock and a deterministic [`EventQueue`],
//! * an [`Engine`] that drives an [`EventHandler`] state machine,
//! * a SimGrid-style *fluid* resource-sharing model ([`fluid::FluidModel`])
//!   with progressive-filling max-min fairness, used for network transfers
//!   (and optionally time-shared CPUs),
//! * a deterministic random number generator ([`rng::Rng`]) with the
//!   distributions needed by the synthetic PanDA workload generator,
//! * statistics helpers ([`stats`]) used by calibration and the benchmark
//!   harness (geometric means, relative mean absolute error, scaling-law
//!   fits, percentiles).
//!
//! The design goal is the same as SimGrid's: a simulation is a single-threaded
//! loop over a time-ordered event queue, with resource sharing recomputed only
//! when the set of concurrent activities changes. That keeps multi-site
//! simulations with tens of thousands of jobs comfortably within a laptop
//! budget, which is the scalability claim of the paper (Fig. 4).
//!
//! ## Quick example
//!
//! ```
//! use cgsim_des::{Engine, EventHandler, Context, SimTime};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Ev { Ping(u32), Stop }
//!
//! struct Counter { pings: u32 }
//!
//! impl EventHandler<Ev> for Counter {
//!     fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
//!         match event {
//!             Ev::Ping(n) if n < 3 => {
//!                 self.pings += 1;
//!                 ctx.schedule_in(SimTime::from_secs(1.0), Ev::Ping(n + 1));
//!             }
//!             Ev::Ping(_) => {
//!                 ctx.schedule_in(SimTime::ZERO, Ev::Stop);
//!             }
//!             Ev::Stop => ctx.request_stop(),
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, Ev::Ping(0));
//! let mut counter = Counter { pings: 0 };
//! let report = engine.run(&mut counter);
//! assert_eq!(counter.pings, 3);
//! assert_eq!(report.events_processed, 5);
//! assert_eq!(engine.now(), SimTime::from_secs(3.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod event;
pub mod fluid;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Context, Engine, EventHandler, RunReport, StopReason};
pub use event::{EventKey, EventQueue, ScheduledEvent};
pub use fluid::{ActivityId, ActivityMap, FluidModel, ResourceId};
pub use rng::Rng;
pub use time::SimTime;
