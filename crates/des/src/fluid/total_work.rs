//! Total-work accounting for the single-bottleneck fluid fast path.
//!
//! dslab's `FairThroughputSharingModel` observes that on a *single* fairly
//! shared resource the whole max-min problem degenerates: every activity's
//! rate is `φ·w_i` with one shared fair-share-per-weight `φ = C / Σw`, so the
//! solver only needs the capacity and the running weight sum — a "total work"
//! metric — instead of a per-activity filling pass. The same collapse happens
//! on any component with a provable single bottleneck: when one resource is
//! crossed by *every* activity of the component and wins the progressive
//! filling argmin, round one freezes everything and the solve is a single
//! division.
//!
//! [`TotalWorkIndex`] maintains, per resource:
//!
//! * the running weight sum over live route occurrences, updated at admit and
//!   retire time (the accounting analogue of dslab's cumulative TW metric);
//! * whether that running sum is **exact** — bit-for-bit what the slow path's
//!   ascending-order summation would produce. Integer-valued weights no
//!   larger than 2⁵³-bounded sums are associative in `f64` (every partial sum
//!   is an exactly representable integer), so the incremental total equals
//!   the recomputed total in any order. A non-integer or oversized weight
//!   taints the resource until its user list drains, and a tainted resource
//!   disqualifies its whole component from the fast path — the slow path is
//!   the semantics, the fast path only engages where it is provably
//!   bit-identical;
//! * the `φ` of the last fast solve that used the resource as its hub (NaN
//!   when no such solve is current). When a re-solve computes the same `φ`
//!   bitwise, every previously rated activity already holds `φ·w_i` and the
//!   solve touches only freshly admitted slots — steady churn on a
//!   single-bottleneck component does no per-slot filling at all.

use super::{ResourceState, EPSILON};

/// Largest weight accepted as exactly summable (2³²). Production weights are
/// far smaller: transfers use 1.0, time-shared execution uses core counts.
const MAX_EXACT_WEIGHT: f64 = 4_294_967_296.0;

/// Largest running sum guaranteed exact for integer addends in `f64` (2⁵³).
const MAX_EXACT_SUM: f64 = 9_007_199_254_740_992.0;

/// Per-resource total-work accounting: running weight sums with exactness
/// tracking, plus the cached fair share of the last single-bottleneck solve.
#[derive(Debug, Clone, Default)]
pub(super) struct TotalWorkIndex {
    /// Running weight sum over live route occurrences of each resource.
    weight_sum: Vec<f64>,
    /// Whether `weight_sum` is provably bit-identical to an ascending-order
    /// recompute (all-integer weights, sum within 2⁵³).
    exact: Vec<bool>,
    /// `φ` of the last fast solve with this resource as hub; NaN = invalid.
    phi: Vec<f64>,
}

impl TotalWorkIndex {
    pub(super) fn push_resource(&mut self) {
        self.weight_sum.push(0.0);
        self.exact.push(true);
        self.phi.push(f64::NAN);
    }

    /// Accounts one route occurrence of weight `w` on resource `r`.
    pub(super) fn add_weight(&mut self, r: usize, w: f64) {
        if w.fract() != 0.0 || w > MAX_EXACT_WEIGHT {
            self.exact[r] = false;
        }
        self.weight_sum[r] += w;
        if self.weight_sum[r] > MAX_EXACT_SUM {
            self.exact[r] = false;
        }
    }

    /// Removes one route occurrence of weight `w` from resource `r`.
    /// `now_empty` — the resource's user list drained with this removal —
    /// heals the running sum (and any accumulated taint) back to zero.
    pub(super) fn sub_weight(&mut self, r: usize, w: f64, now_empty: bool) {
        if now_empty {
            self.weight_sum[r] = 0.0;
            self.exact[r] = true;
        } else {
            self.weight_sum[r] -= w;
        }
    }

    /// Cached fair share of resource `r` (NaN when invalid).
    pub(super) fn phi(&self, r: u32) -> f64 {
        self.phi[r as usize]
    }

    pub(super) fn set_phi(&mut self, r: u32, phi: f64) {
        self.phi[r as usize] = phi;
    }

    pub(super) fn invalidate_phi(&mut self, r: u32) {
        self.phi[r as usize] = f64::NAN;
    }

    /// Decides whether the component over `comp_res` (sorted ascending) is
    /// single-bottleneck-solvable, returning its hub resource and fair share
    /// per weight when it is.
    ///
    /// The rule mirrors the slow path's first round exactly: the hub is the
    /// first resource (ascending) minimising `capacity / Σw` over positive
    /// weight sums — the same argmin, over bitwise-equal sums (`exact` must
    /// hold on every member), with the same `>=`-keeps-earlier tie-break. The
    /// component qualifies when that hub is crossed by every live activity of
    /// the component (then round one freezes everything at `φ·w_i` and later
    /// rounds never run). Routes listing a resource twice (`dups > 0`) would
    /// double-count user-list entries, so they disqualify the component.
    pub(super) fn classify(
        &self,
        comp_res: &[u32],
        resources: &[ResourceState],
        acts: u32,
        dups: u32,
    ) -> Option<(u32, f64)> {
        if dups > 0 {
            return None;
        }
        let mut best: Option<(u32, f64)> = None;
        for &r in comp_res {
            if !self.exact[r as usize] {
                return None;
            }
            let ws = self.weight_sum[r as usize];
            if ws > EPSILON {
                let share = resources[r as usize].capacity / ws;
                match best {
                    Some((_, b)) if share >= b => {}
                    _ => best = Some((r, share)),
                }
            }
        }
        let (hub, phi) = best?;
        (resources[hub as usize].users.len() as u32 == acts).then_some((hub, phi))
    }
}
