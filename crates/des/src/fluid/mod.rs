//! Fluid resource-sharing model with progressive-filling max-min fairness.
//!
//! SimGrid's accuracy advantage over coarse-grained simulators comes from its
//! *fluid* models: concurrent activities (network transfers, time-shared
//! computations) continuously share resource capacity, and the share of every
//! activity is recomputed whenever an activity starts or finishes. CGSim-RS
//! uses this model for wide-area network transfers (a transfer traverses a
//! multi-link route and is bottlenecked by the most contended link) and,
//! optionally, for time-shared CPU execution.
//!
//! The sharing discipline implemented here is weighted max-min fairness via
//! the classic *progressive filling* algorithm:
//!
//! 1. all unfrozen activities grow their rate at the same speed (scaled by
//!    their weight),
//! 2. the first resource to saturate freezes every activity that crosses it
//!    at the current rate,
//! 3. repeat with the remaining capacity and activities until all activities
//!    are frozen.
//!
//! The result is the unique max-min fair allocation. The model then knows the
//! rate of every activity, so the next completion time is simply
//! `min(remaining_i / rate_i)` — this is what the discrete-event loop uses to
//! schedule the next "transfer finished" event.
//!
//! # Incremental recomputation: components and dirtiness
//!
//! Re-running progressive filling over the *whole* bipartite graph on every
//! admit/retire/re-rate makes each event O(N) in the number of concurrent
//! activities and whole runs O(N²). The model therefore maintains the
//! **connected components** of the constraint graph (resources are connected
//! when a live activity crosses both) and re-solves only the components a
//! change touched:
//!
//! * A union-find over resources records connectivity. Admitting an activity
//!   unions its route; because unions cannot be undone, retires leave the
//!   partition a *conservative over-approximation* (components may stay
//!   merged after the bridging activity left). That is always correct: the
//!   progressive-filling rounds of two disconnected sub-graphs never interact
//!   — running the algorithm on their union performs the exact same
//!   floating-point operations on each side, in the same order, as running it
//!   on each part alone (the global bottleneck, when it lies in part A, is
//!   also A's local bottleneck, and freezing it only touches A's residuals).
//!   The partition is re-tightened by rebuilding the union-find from the live
//!   activity set once retires since the last rebuild exceed the live count.
//! * Every mutation marks the resources it touched **dirty**: an admit marks
//!   its (freshly unioned) route, a retire marks every resource of the
//!   departing activity (so a later rebuild cannot strand a stale
//!   sub-component), a capacity change marks the resource. `ensure_shares`
//!   resolves the dirty components only; untouched components keep their
//!   frozen rates *exactly* — not approximately — because the per-component
//!   solve is bit-for-bit the global pass restricted to that component.
//!
//! # Completion tracking: deferred remaining work and the projection heap
//!
//! The O(N) per-event scans of `advance`/`time_to_next_completion` are
//! replaced by per-activity *projected completion times* kept in an indexed
//! binary min-heap ordered by `(projection, slot)`:
//!
//! * Each activity stores `(remaining, synced_at)` — its remaining work at
//!   the instant its rate last changed — instead of a value decremented on
//!   every advance. Remaining work at the current clock is
//!   `remaining − rate·(clock − synced_at)`, materialised (and `synced_at`
//!   reset) only when a re-solve changes the activity's rate **bitwise**.
//!   Rate-preserving re-solves therefore leave the stored state untouched,
//!   which keeps the materialisation schedule a pure function of the model's
//!   call history — the reproducibility contract.
//! * The projection is `synced_at + remaining/rate` (immediate for zero work
//!   or sub-resolution remnants, absent for zero-rate activities).
//!   `advance(dt)` moves the clock and pops every projection within
//!   [`TIME_RESOLUTION_S`] of it — O(completions·log N) instead of O(N) — and
//!   `time_to_next_completion` is a heap peek.
//!
//! # Single-bottleneck fast path (total-work accounting)
//!
//! Dense contended components — every transfer of a burst crossing one hot
//! backbone link — still cost a full per-slot filling pass per recompute
//! under the incremental solver. For those, the model keeps dslab-style
//! *total-work* accounting (see [`total_work`]): per-resource running weight
//! sums maintained at admit/retire time. At solve time a component is
//! **classified**:
//!
//! * it qualifies for the fast path when (a) no live route lists a resource
//!   twice, (b) every member resource's running weight sum is provably
//!   bit-identical to the slow path's recomputed sum (all-integer weights —
//!   transfers weigh 1, time-shared execution weighs whole cores — with sums
//!   within 2⁵³), and (c) the progressive-filling argmin over those sums
//!   picks a *hub* resource crossed by every live activity of the component.
//!   Round one of progressive filling then freezes the entire component at
//!   `rate_i = φ·w_i` with `φ = capacity(hub) / Σw(hub)`, so the solve is a
//!   single division. Single-resource components are the trivial case (the
//!   only resource is the hub).
//! * Additionally, the hub's `φ` is cached: when a re-solve computes the same
//!   `φ` **bitwise** (steady churn — an admit replacing an equal-weight
//!   retire), every previously rated slot already holds `φ·w_i`, and only
//!   freshly admitted slots are rated — `ensure_shares` does no per-slot
//!   filling at all, making admit/retire/`set_capacity`/
//!   `time_to_next_completion` O(log n) on such components.
//! * anything else — genuinely multi-constrained components, tainted weight
//!   sums — falls back to the progressive-filling solve, and components
//!   migrate between the two modes automatically as admits/retires change
//!   their topology (classification is stateless per solve; there is no mode
//!   flag to migrate).
//!
//! The fast path engages **only** where it is provably bit-identical to
//! progressive filling: the same hub the slow argmin would pick (same
//! ascending scan, same `>=`-keeps-earlier tie-break, over bitwise-equal
//! sums), the same `capacity/Σw` division, the same `φ·w_i` products, and
//! the same materialisation rule (remaining work folded only on a bitwise
//! rate change). Rates, remaining work and completion times are therefore
//! indistinguishable from the slow path wherever they are observable.
//!
//! # Slab layout and determinism
//!
//! Activities live in a *slab*: a dense `Vec` of slots addressed by index,
//! with freed slots kept on a LIFO free list and reused. An [`ActivityId`] is
//! a `(slot, generation)` pair packed into a `u64`; every release bumps the
//! slot's generation, so a stale handle held after its activity finished (or
//! after the slot was recycled by a newer activity) is rejected by every
//! lookup instead of silently aliasing the new occupant.
//!
//! Share recomputation iterates a component's resources and slots in strictly
//! ascending index order, and per-resource user lists are kept sorted by slot
//! index. There is no hash map anywhere on the path, so floating-point
//! accumulation order — and therefore every transfer rate, every completion
//! time and ultimately whole simulations — is bit-for-bit identical between
//! two runs of the same scenario. The scratch buffers used by the solver are
//! owned by the model and reused across calls, so steady-state recomputation
//! performs no allocation at all.

use crate::define_id;
use crate::time::SimTime;

mod total_work;
use total_work::TotalWorkIndex;

define_id!(
    /// Identifier of a shared resource (a link, or a time-shared CPU pool).
    ResourceId,
    "resource"
);

/// Generation-tagged handle of a fluid activity (e.g. one file transfer).
///
/// Packs a slab slot index (low 32 bits) and the slot's generation at
/// creation time (high 32 bits). The generation lets the model reject stale
/// handles: once an activity completes or is removed, its slot's generation
/// is bumped, so every later lookup through the old id returns `None` even if
/// the slot has been recycled for a new activity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ActivityId(u64);

impl ActivityId {
    /// Packs a slot index and generation into an id.
    fn pack(slot: u32, generation: u32) -> Self {
        ActivityId((u64::from(generation) << 32) | u64::from(slot))
    }

    /// The slab slot this id points at.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The slot generation this id was created under.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Display for ActivityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "activity#{}@{}", self.slot(), self.generation())
    }
}

/// Numerical tolerance used when comparing work/capacity quantities.
pub const EPSILON: f64 = 1e-9;

/// Virtual-time resolution of the fluid model, in seconds. Any activity whose
/// remaining work would finish within this much time at its current rate is
/// considered complete. Without this, floating-point residue after an
/// `advance` (remaining ≈ 10⁻⁷ bytes on a multi-GB transfer) produces a next
/// completion time far below the representable increment of the simulation
/// clock, and the discrete-event loop degenerates into an endless stream of
/// zero-length `FluidAdvance` events at the same timestamp. One microsecond is
/// far below anything the grid model resolves (WAN latencies are milliseconds,
/// walltimes are minutes to hours).
pub const TIME_RESOLUTION_S: f64 = 1e-6;

/// Sentinel for "not in the completion heap".
const NO_POS: u32 = u32::MAX;

/// Minimum number of retires before the component partition is rebuilt.
const REBUILD_MIN_RETIRES: usize = 64;

#[derive(Debug, Clone)]
struct ResourceState {
    capacity: f64,
    /// Slots of the activities currently demanding this resource, kept sorted
    /// by slot index so iteration order is independent of insertion history.
    users: Vec<u32>,
}

/// One slab slot. Freed slots keep their `resources` allocation for reuse.
#[derive(Debug, Clone, Default)]
struct ActivitySlot {
    generation: u32,
    live: bool,
    /// Remaining work at virtual time `synced_at` (NOT at the current clock;
    /// see the module docs on deferred remaining work).
    remaining: f64,
    /// Virtual time at which `remaining` was last materialised — the instant
    /// of the activity's most recent bitwise rate change.
    synced_at: f64,
    weight: f64,
    rate: f64,
    /// Projected absolute completion time (meaningful while in the heap).
    proj: f64,
    /// Admitted since the last solve (not yet rated by any solve).
    fresh: bool,
    resources: Vec<ResourceId>,
}

/// True when a route lists the same resource more than once. Routes are a
/// handful of links, so the quadratic scan beats any indexed structure.
fn route_has_duplicates(route: &[ResourceId]) -> bool {
    route
        .iter()
        .enumerate()
        .any(|(i, r)| route[..i].contains(r))
}

/// Union-find over resource indices with per-root member lists, tracking the
/// connected components of the activity↔resource constraint graph.
///
/// Unions are monotone (admits only); the partition is an over-approximation
/// after retires and is re-tightened by [`ResourceComponents::reset`] plus
/// re-unioning the live activity set (see `FluidModel::rebuild_components`).
#[derive(Debug, Clone, Default)]
struct ResourceComponents {
    parent: Vec<u32>,
    size: Vec<u32>,
    /// Member resource indices per root (unsorted; only valid at roots).
    members: Vec<Vec<u32>>,
    /// Live activities per component (only valid at roots).
    acts: Vec<u32>,
    /// Live activities whose route lists a resource more than once, per
    /// component (only valid at roots) — such routes disqualify the
    /// component from the single-bottleneck fast path.
    dups: Vec<u32>,
}

impl ResourceComponents {
    fn push_resource(&mut self) {
        let idx = self.parent.len() as u32;
        self.parent.push(idx);
        self.size.push(1);
        self.members.push(vec![idx]);
        self.acts.push(0);
        self.dups.push(0);
    }

    /// Root of `r`'s component, with path halving.
    fn find(&mut self, mut r: u32) -> u32 {
        while self.parent[r as usize] != r {
            let grandparent = self.parent[self.parent[r as usize] as usize];
            self.parent[r as usize] = grandparent;
            r = grandparent;
        }
        r
    }

    /// Merges the components of `a` and `b`; returns the surviving root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (winner, loser) = if self.size[ra as usize] > self.size[rb as usize]
            || (self.size[ra as usize] == self.size[rb as usize] && ra < rb)
        {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser as usize] = winner;
        self.size[winner as usize] += self.size[loser as usize];
        let mut moved = std::mem::take(&mut self.members[loser as usize]);
        self.members[winner as usize].extend_from_slice(&moved);
        moved.clear();
        self.members[loser as usize] = moved; // keep the allocation for reuse
        self.acts[winner as usize] += self.acts[loser as usize];
        self.acts[loser as usize] = 0;
        self.dups[winner as usize] += self.dups[loser as usize];
        self.dups[loser as usize] = 0;
        winner
    }

    /// Resets every resource to its own singleton component (allocations are
    /// kept so periodic rebuilds do not churn the allocator).
    fn reset(&mut self) {
        for i in 0..self.parent.len() {
            self.parent[i] = i as u32;
            self.size[i] = 1;
            self.members[i].clear();
            self.members[i].push(i as u32);
            self.acts[i] = 0;
            self.dups[i] = 0;
        }
    }
}

/// The fluid sharing model: a bipartite graph of resources and activities.
#[derive(Debug, Clone, Default)]
pub struct FluidModel {
    resources: Vec<ResourceState>,
    slots: Vec<ActivitySlot>,
    /// LIFO free list of released slots (deterministic reuse order).
    free: Vec<u32>,
    live_count: usize,
    /// Total virtual time this model has been advanced by.
    clock: f64,
    // Incremental-solver state.
    comps: ResourceComponents,
    /// Per-resource "marked dirty" flag (dedup for `dirty_list`).
    dirty_flag: Vec<bool>,
    /// Resources marked dirty since the last solve.
    dirty_list: Vec<u32>,
    retired_since_rebuild: usize,
    // Indexed min-heap of projected completion times, ordered by
    // `(slot.proj, slot)`; `heap_pos` maps slot -> heap index (NO_POS = out).
    heap: Vec<u32>,
    heap_pos: Vec<u32>,
    // Reusable scratch buffers (no steady-state allocation on the hot path).
    scratch_residual: Vec<f64>,
    scratch_weight_sum: Vec<f64>,
    scratch_frozen: Vec<bool>,
    /// Per-slot stamp for O(1) distinct-activity gathering.
    act_stamp: Vec<u64>,
    /// Per-resource stamp for O(1) distinct-root gathering.
    root_stamp: Vec<u64>,
    stamp: u64,
    scratch_comp_res: Vec<u32>,
    scratch_comp_acts: Vec<u32>,
    scratch_old_rates: Vec<f64>,
    scratch_roots: Vec<u32>,
    scratch_finished: Vec<u32>,
    // Single-bottleneck fast-path state (see the module docs and
    // [`total_work`]).
    tw: TotalWorkIndex,
    /// Slots admitted since the last solve (their `fresh` flag is set);
    /// cleared at the end of every `ensure_shares`.
    fresh_slots: Vec<u32>,
    /// Test instrumentation: route every solve down the progressive-filling
    /// slow path (observables are bit-identical either way by construction;
    /// the forced-full-recompute twin probe verifies exactly that).
    fast_path_disabled: bool,
    stat_fast_solves: u64,
    stat_slow_solves: u64,
}

impl FluidModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with the given capacity (e.g. link bandwidth in
    /// bytes/s, or host flops/s for a time-shared CPU pool).
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        let id = ResourceId::new(self.resources.len());
        self.resources.push(ResourceState {
            capacity,
            users: Vec::new(),
        });
        self.comps.push_resource();
        self.tw.push_resource();
        self.dirty_flag.push(false);
        id
    }

    /// Changes the capacity of an existing resource (used to model degraded
    /// links or dynamically resized CPU pools). Setting the capacity a
    /// resource already has is a no-op that does not dirty its component.
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        if self.resources[id.index()].capacity.to_bits() == capacity.to_bits() {
            return;
        }
        self.resources[id.index()].capacity = capacity;
        self.mark_dirty(id.index() as u32);
    }

    /// Returns the capacity of a resource.
    pub fn capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.index()].capacity
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of in-flight activities.
    pub fn activity_count(&self) -> usize {
        self.live_count
    }

    /// `(fast, slow)` counts of component solves taken by the
    /// single-bottleneck fast path vs the progressive-filling slow path since
    /// the model was created (diagnostics / tests — e.g. asserting that a
    /// topology change migrates a component between modes).
    pub fn solver_stats(&self) -> (u64, u64) {
        (self.stat_fast_solves, self.stat_slow_solves)
    }

    /// Test instrumentation: permanently routes every solve of this model
    /// down the progressive-filling slow path. All observable state stays
    /// bit-identical (the fast path only engages where it provably matches),
    /// which is exactly what the forced-full-recompute twin probe checks.
    #[doc(hidden)]
    pub fn disable_fast_path(&mut self) {
        self.fast_path_disabled = true;
    }

    /// Test instrumentation: marks every resource dirty so the next query
    /// re-solves every component from scratch.
    #[doc(hidden)]
    pub fn mark_all_dirty(&mut self) {
        for r in 0..self.resources.len() as u32 {
            self.mark_dirty(r);
        }
    }

    /// Marks a resource's component dirty (dedup'd via `dirty_flag`).
    fn mark_dirty(&mut self, resource: u32) {
        if !self.dirty_flag[resource as usize] {
            self.dirty_flag[resource as usize] = true;
            self.dirty_list.push(resource);
        }
    }

    /// Starts an activity requiring `amount` units of work across the listed
    /// resources with weight 1.
    pub fn add_activity(&mut self, amount: f64, resources: &[ResourceId]) -> ActivityId {
        self.add_weighted_activity(amount, resources, 1.0)
    }

    /// Starts an activity with an explicit fairness weight (a weight of 2
    /// receives twice the rate of a weight-1 activity on a shared bottleneck).
    pub fn add_weighted_activity(
        &mut self,
        amount: f64,
        resources: &[ResourceId],
        weight: f64,
    ) -> ActivityId {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "activity amount must be non-negative, got {amount}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "activity weight must be positive, got {weight}"
        );
        assert!(
            !resources.is_empty(),
            "an activity must use at least one resource"
        );
        let slot_idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let idx = self.slots.len();
                assert!(idx < u32::MAX as usize, "fluid slab exhausted");
                self.slots.push(ActivitySlot::default());
                self.heap_pos.push(NO_POS);
                idx as u32
            }
        };
        let clock = self.clock;
        let slot = &mut self.slots[slot_idx as usize];
        slot.live = true;
        slot.remaining = amount;
        slot.synced_at = clock;
        slot.weight = weight;
        slot.rate = 0.0;
        slot.proj = f64::INFINITY;
        slot.fresh = true;
        slot.resources.clear();
        slot.resources.extend_from_slice(resources);
        let generation = slot.generation;
        self.fresh_slots.push(slot_idx);
        for r in resources {
            let users = &mut self.resources[r.index()].users;
            let pos = users.binary_search(&slot_idx).unwrap_or_else(|p| p);
            users.insert(pos, slot_idx);
        }
        // Connect the route in the component index and dirty the (single,
        // freshly merged) component it now belongs to.
        let mut root = self.comps.find(resources[0].index() as u32);
        for r in &resources[1..] {
            root = self.comps.union(root, r.index() as u32);
        }
        self.comps.acts[root as usize] += 1;
        if route_has_duplicates(resources) {
            self.comps.dups[root as usize] += 1;
        }
        for r in resources {
            self.tw.add_weight(r.index(), weight);
        }
        self.mark_dirty(resources[0].index() as u32);
        self.live_count += 1;
        ActivityId::pack(slot_idx, generation)
    }

    /// Resolves an id to its slot index, rejecting stale generations.
    fn slot_of(&self, id: ActivityId) -> Option<usize> {
        let idx = id.slot() as usize;
        let slot = self.slots.get(idx)?;
        (slot.live && slot.generation == id.generation()).then_some(idx)
    }

    /// Unlinks a slot from its resources, bumps its generation (invalidating
    /// every outstanding id) and returns it to the free list. Every resource
    /// of the departing activity is marked dirty — marking just one would
    /// leave a stale sibling sub-component behind if a partition rebuild
    /// splits the component before the next solve.
    fn release_slot(&mut self, slot_idx: u32) {
        if self.heap_pos[slot_idx as usize] != NO_POS {
            self.heap_remove(slot_idx);
        }
        let resources = std::mem::take(&mut self.slots[slot_idx as usize].resources);
        let weight = self.slots[slot_idx as usize].weight;
        for r in &resources {
            let users = &mut self.resources[r.index()].users;
            if let Ok(pos) = users.binary_search(&slot_idx) {
                users.remove(pos);
            }
        }
        let root = self.comps.find(resources[0].index() as u32);
        self.comps.acts[root as usize] -= 1;
        if route_has_duplicates(&resources) {
            self.comps.dups[root as usize] -= 1;
        }
        for r in &resources {
            let now_empty = self.resources[r.index()].users.is_empty();
            self.tw.sub_weight(r.index(), weight, now_empty);
        }
        for r in &resources {
            self.mark_dirty(r.index() as u32);
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.resources = resources;
        slot.resources.clear();
        slot.live = false;
        slot.generation = slot.generation.wrapping_add(1);
        slot.remaining = 0.0;
        slot.synced_at = 0.0;
        slot.rate = 0.0;
        slot.weight = 0.0;
        slot.proj = f64::INFINITY;
        slot.fresh = false;
        self.free.push(slot_idx);
        self.live_count -= 1;
        self.retired_since_rebuild += 1;
    }

    /// Removes an activity regardless of remaining work (e.g. a cancelled
    /// transfer). Returns the remaining amount at the current virtual time,
    /// if the activity existed.
    pub fn remove_activity(&mut self, id: ActivityId) -> Option<f64> {
        let idx = self.slot_of(id)?;
        let slot = &self.slots[idx];
        let remaining = slot.remaining - slot.rate * (self.clock - slot.synced_at);
        self.release_slot(idx as u32);
        Some(remaining)
    }

    /// Remaining work of an activity at the current virtual time (`None` for
    /// stale/unknown ids).
    pub fn remaining(&self, id: ActivityId) -> Option<f64> {
        self.slot_of(id).map(|idx| {
            let slot = &self.slots[idx];
            slot.remaining - slot.rate * (self.clock - slot.synced_at)
        })
    }

    /// Current max-min fair rate of an activity (`None` for stale ids).
    pub fn rate(&mut self, id: ActivityId) -> Option<f64> {
        self.ensure_shares();
        self.slot_of(id).map(|idx| self.slots[idx].rate)
    }

    /// Re-solves the dirty components, if any. Clean components keep their
    /// frozen rates — bit-identical to what a full recompute would assign.
    fn ensure_shares(&mut self) {
        if self.dirty_list.is_empty() {
            return;
        }
        if self.retired_since_rebuild >= REBUILD_MIN_RETIRES.max(self.live_count) {
            self.rebuild_components();
        }
        let n_res = self.resources.len();
        if self.scratch_residual.len() < n_res {
            self.scratch_residual.resize(n_res, 0.0);
            self.scratch_weight_sum.resize(n_res, 0.0);
            self.root_stamp.resize(n_res, 0);
        }
        let n_slots = self.slots.len();
        if self.scratch_frozen.len() < n_slots {
            self.scratch_frozen.resize(n_slots, false);
            self.act_stamp.resize(n_slots, 0);
        }
        // Collect the distinct dirty component roots, ascending.
        self.stamp += 1;
        let stamp = self.stamp;
        let mut roots = std::mem::take(&mut self.scratch_roots);
        roots.clear();
        for i in 0..self.dirty_list.len() {
            let r = self.dirty_list[i];
            self.dirty_flag[r as usize] = false;
            let root = self.comps.find(r);
            if self.root_stamp[root as usize] != stamp {
                self.root_stamp[root as usize] = stamp;
                roots.push(root);
            }
        }
        self.dirty_list.clear();
        roots.sort_unstable();
        for &root in &roots {
            self.solve_component(root);
        }
        roots.clear();
        self.scratch_roots = roots;
        // Every admit since the previous solve was just rated by its
        // component's solve (fast or slow); drop the fresh markers.
        for i in 0..self.fresh_slots.len() {
            let u = self.fresh_slots[i] as usize;
            self.slots[u].fresh = false;
        }
        self.fresh_slots.clear();
    }

    /// Rebuilds the component partition from the live activity set,
    /// re-tightening the over-approximation left behind by retires. Rates are
    /// unaffected: refining the partition never changes what any solve
    /// computes (see the module docs).
    fn rebuild_components(&mut self) {
        self.comps.reset();
        for idx in 0..self.slots.len() {
            if !self.slots[idx].live {
                continue;
            }
            let mut root = self.comps.find(self.slots[idx].resources[0].index() as u32);
            for k in 1..self.slots[idx].resources.len() {
                root = self
                    .comps
                    .union(root, self.slots[idx].resources[k].index() as u32);
            }
            self.comps.acts[root as usize] += 1;
            if route_has_duplicates(&self.slots[idx].resources) {
                self.comps.dups[root as usize] += 1;
            }
        }
        self.retired_since_rebuild = 0;
    }

    /// Solves one component: classifies it against the total-work index and
    /// routes it to the single-bottleneck fast path when that is provably
    /// bit-identical, or to the progressive-filling slow path otherwise (see
    /// the module docs). Classification is stateless — components migrate
    /// between modes solve-to-solve as their topology changes.
    fn solve_component(&mut self, root: u32) {
        if self.comps.acts[root as usize] == 0 {
            // No live activity crosses this component, so both paths would
            // no-op; skip the solve. (A retire can empty its resources right
            // before a rebuild splits them off as dirty singletons.) Cached
            // hub shares stay valid: every later admit is rated as fresh.
            return;
        }
        let mut comp_res = std::mem::take(&mut self.scratch_comp_res);
        comp_res.clear();
        comp_res.extend_from_slice(&self.comps.members[root as usize]);
        comp_res.sort_unstable();

        let fast = if self.fast_path_disabled {
            None
        } else {
            self.tw.classify(
                &comp_res,
                &self.resources,
                self.comps.acts[root as usize],
                self.comps.dups[root as usize],
            )
        };
        match fast {
            Some((hub, phi)) => self.solve_component_fast(root, &comp_res, hub, phi),
            None => self.solve_component_slow(&comp_res),
        }

        comp_res.clear();
        self.scratch_comp_res = comp_res;
    }

    /// Single-bottleneck solve: the whole component freezes in round one at
    /// `rate_i = φ·w_i`, so no filling rounds run. When the hub's cached `φ`
    /// is unchanged bitwise (steady churn), previously rated slots already
    /// hold exactly `φ·w_i` and only freshly admitted slots are touched — no
    /// per-slot work at all.
    fn solve_component_fast(&mut self, root: u32, comp_res: &[u32], hub: u32, phi: f64) {
        self.stat_fast_solves += 1;
        let stable = self.tw.phi(hub).to_bits() == phi.to_bits();
        for &r in comp_res {
            if r != hub {
                self.tw.invalidate_phi(r);
            }
        }
        self.tw.set_phi(hub, phi);
        let clock = self.clock;
        if stable {
            let fresh = std::mem::take(&mut self.fresh_slots);
            for &u in &fresh {
                if !self.slots[u as usize].fresh {
                    continue; // retired again before this solve
                }
                let r0 = self.slots[u as usize].resources[0].index() as u32;
                if self.comps.find(r0) != root {
                    continue; // belongs to a different dirty component
                }
                self.slots[u as usize].fresh = false;
                let rate = phi * self.slots[u as usize].weight;
                self.apply_rate(u, rate, clock);
            }
            self.fresh_slots = fresh;
        } else {
            // One sweep over the hub's user list — which is exactly the
            // component's activity set, already in ascending slot order.
            let users = std::mem::take(&mut self.resources[hub as usize].users);
            for &u in &users {
                self.slots[u as usize].fresh = false;
                let rate = phi * self.slots[u as usize].weight;
                self.apply_rate(u, rate, clock);
            }
            self.resources[hub as usize].users = users;
        }
    }

    /// Applies a freshly solved rate to one slot with the slow path's exact
    /// materialisation semantics: remaining work is folded (and `synced_at`
    /// reset) only on a bitwise rate change, then the completion projection
    /// is refreshed.
    fn apply_rate(&mut self, u: u32, new_rate: f64, clock: f64) {
        let slot = &mut self.slots[u as usize];
        if slot.rate.to_bits() != new_rate.to_bits() {
            slot.remaining -= slot.rate * (clock - slot.synced_at);
            slot.synced_at = clock;
            slot.rate = new_rate;
        }
        let proj = projected_completion(slot.remaining, slot.rate, slot.synced_at);
        self.heap_set(u, proj);
    }

    /// Progressive-filling max-min fairness over one component.
    ///
    /// This is exactly the global algorithm restricted to the component's
    /// resources and activities: every loop walks indices in ascending order,
    /// so the floating-point accumulation order is a pure function of the
    /// component's membership — and therefore identical to what a full
    /// recompute would perform for these activities.
    fn solve_component_slow(&mut self, comp_res: &[u32]) {
        self.stat_slow_solves += 1;
        // Any cached fair share on these resources is stale once the slow
        // path re-rates the component.
        for &r in comp_res {
            self.tw.invalidate_phi(r);
        }

        let mut residual = std::mem::take(&mut self.scratch_residual);
        let mut weight_sum = std::mem::take(&mut self.scratch_weight_sum);
        let mut frozen = std::mem::take(&mut self.scratch_frozen);
        let mut comp_acts = std::mem::take(&mut self.scratch_comp_acts);
        let mut old_rates = std::mem::take(&mut self.scratch_old_rates);
        comp_acts.clear();
        old_rates.clear();

        // Gather the component's distinct activities and reset residuals.
        self.stamp += 1;
        let stamp = self.stamp;
        for &r in comp_res {
            residual[r as usize] = self.resources[r as usize].capacity;
            for &u in &self.resources[r as usize].users {
                if self.act_stamp[u as usize] != stamp {
                    self.act_stamp[u as usize] = stamp;
                    comp_acts.push(u);
                }
            }
        }
        for &u in &comp_acts {
            old_rates.push(self.slots[u as usize].rate);
            self.slots[u as usize].rate = 0.0;
            frozen[u as usize] = false;
        }
        let mut unfrozen = comp_acts.len();

        // Each iteration freezes at least one activity, so at most n rounds.
        while unfrozen > 0 {
            // Weight of unfrozen activities crossing each member resource.
            for &r in comp_res {
                let mut sum = 0.0;
                for &u in &self.resources[r as usize].users {
                    if !frozen[u as usize] {
                        sum += self.slots[u as usize].weight;
                    }
                }
                weight_sum[r as usize] = sum;
            }
            // Fair share increment per unit weight = min over member
            // resources of residual / weight_sum (first such resource on
            // ties — ascending order matches the global pass).
            let mut bottleneck: Option<(u32, f64)> = None;
            for &r in comp_res {
                let w = weight_sum[r as usize];
                if w > EPSILON {
                    let share = residual[r as usize] / w;
                    match bottleneck {
                        Some((_, best)) if share >= best => {}
                        _ => bottleneck = Some((r, share)),
                    }
                }
            }
            let Some((bottleneck_idx, fair_rate_per_weight)) = bottleneck else {
                // No unfrozen activity uses any resource with positive
                // weight; freeze the remainder at zero rate.
                break;
            };

            // Freeze every unfrozen activity crossing the bottleneck
            // resource, in ascending slot order.
            let mut froze_any = false;
            let mut cursor = 0;
            while cursor < self.resources[bottleneck_idx as usize].users.len() {
                let slot_idx = self.resources[bottleneck_idx as usize].users[cursor] as usize;
                cursor += 1;
                if frozen[slot_idx] {
                    continue;
                }
                let rate = fair_rate_per_weight * self.slots[slot_idx].weight;
                for r in &self.slots[slot_idx].resources {
                    residual[r.index()] = (residual[r.index()] - rate).max(0.0);
                }
                self.slots[slot_idx].rate = rate;
                frozen[slot_idx] = true;
                unfrozen -= 1;
                froze_any = true;
            }
            if !froze_any {
                break;
            }
        }

        // Post-pass: materialise remaining work for activities whose rate
        // changed bitwise, and refresh their completion projections.
        let clock = self.clock;
        for (i, &u) in comp_acts.iter().enumerate() {
            let old_rate = old_rates[i];
            let slot = &mut self.slots[u as usize];
            if slot.rate.to_bits() != old_rate.to_bits() {
                slot.remaining -= old_rate * (clock - slot.synced_at);
                slot.synced_at = clock;
            }
            let proj = projected_completion(slot.remaining, slot.rate, slot.synced_at);
            self.heap_set(u, proj);
        }

        self.scratch_residual = residual;
        self.scratch_weight_sum = weight_sum;
        self.scratch_frozen = frozen;
        comp_acts.clear();
        self.scratch_comp_acts = comp_acts;
        old_rates.clear();
        self.scratch_old_rates = old_rates;
    }

    // ---- indexed completion heap ------------------------------------------

    /// True when heap element `a` orders before `b`: lexicographic on
    /// `(projection, slot)` — the slot tie-break keeps pops deterministic.
    #[inline]
    fn heap_less(&self, a: u32, b: u32) -> bool {
        let pa = self.slots[a as usize].proj;
        let pb = self.slots[b as usize].proj;
        match pa.partial_cmp(&pb) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => a < b,
        }
    }

    fn sift_up(&mut self, mut i: usize) -> usize {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                self.heap_pos[self.heap[i] as usize] = i as u32;
                self.heap_pos[self.heap[parent] as usize] = parent as u32;
                i = parent;
            } else {
                break;
            }
        }
        i
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut smallest = i;
            if left < self.heap.len() && self.heap_less(self.heap[left], self.heap[smallest]) {
                smallest = left;
            }
            if right < self.heap.len() && self.heap_less(self.heap[right], self.heap[smallest]) {
                smallest = right;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            self.heap_pos[self.heap[i] as usize] = i as u32;
            self.heap_pos[self.heap[smallest] as usize] = smallest as u32;
            i = smallest;
        }
    }

    /// Sets slot `u`'s projection and repositions (or inserts/removes) it in
    /// the heap. Infinite projections (zero-rate activities) stay out of the
    /// heap entirely; unchanged projections are a no-op.
    fn heap_set(&mut self, u: u32, proj: f64) {
        let pos = self.heap_pos[u as usize];
        if proj.is_infinite() {
            self.slots[u as usize].proj = proj;
            if pos != NO_POS {
                self.heap_remove(u);
            }
            return;
        }
        let old = self.slots[u as usize].proj;
        self.slots[u as usize].proj = proj;
        if pos == NO_POS {
            self.heap_pos[u as usize] = self.heap.len() as u32;
            self.heap.push(u);
            self.sift_up(self.heap.len() - 1);
        } else if proj.to_bits() != old.to_bits() {
            let settled = self.sift_up(pos as usize);
            if settled == pos as usize {
                self.sift_down(settled);
            }
        }
    }

    /// Removes slot `u` from the heap (it must be present).
    fn heap_remove(&mut self, u: u32) {
        let pos = self.heap_pos[u as usize] as usize;
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        self.heap_pos[u as usize] = NO_POS;
        if pos < self.heap.len() {
            let moved = self.heap[pos];
            self.heap_pos[moved as usize] = pos as u32;
            let settled = self.sift_up(pos);
            if settled == pos {
                self.sift_down(settled);
            }
        }
    }

    // ---- completion queries -----------------------------------------------

    /// Time until the next activity completes at current rates, if any
    /// activity is in flight with a defined completion (zero-work activities
    /// complete immediately; zero-rate activities never do).
    pub fn time_to_next_completion(&mut self) -> Option<SimTime> {
        self.ensure_shares();
        let &next = self.heap.first()?;
        let dt = (self.slots[next as usize].proj - self.clock).max(0.0);
        Some(SimTime::from_secs(dt))
    }

    /// Advances every in-flight activity by `dt` of virtual time and returns
    /// the activities that completed (remaining work reached zero), removing
    /// them from the model. The returned ids are in ascending slot order — a
    /// deterministic order for downstream event scheduling.
    pub fn advance(&mut self, dt: SimTime) -> Vec<ActivityId> {
        let mut finished = Vec::new();
        self.advance_into(dt, &mut finished);
        finished
    }

    /// Allocation-free variant of [`FluidModel::advance`]: clears `out` and
    /// fills it with the completed activities in ascending slot order. Core
    /// loops that advance on every event should hold one buffer and reuse it.
    pub fn advance_into(&mut self, dt: SimTime, out: &mut Vec<ActivityId>) {
        out.clear();
        self.ensure_shares();
        self.clock += dt.as_secs();
        // An activity is done when its projected completion falls within the
        // fluid model's time resolution of the new clock — the tolerance
        // absorbs floating-point residue that would otherwise stall the event
        // loop on sub-resolvable completion times.
        let deadline = self.clock + TIME_RESOLUTION_S;
        let mut finished = std::mem::take(&mut self.scratch_finished);
        finished.clear();
        while let Some(&top) = self.heap.first() {
            if self.slots[top as usize].proj <= deadline {
                self.heap_remove(top);
                finished.push(top);
            } else {
                break;
            }
        }
        finished.sort_unstable();
        for &u in &finished {
            out.push(ActivityId::pack(u, self.slots[u as usize].generation));
        }
        for &u in &finished {
            self.release_slot(u);
        }
        finished.clear();
        self.scratch_finished = finished;
    }

    /// Total allocated rate on a resource (diagnostics / tests).
    pub fn allocated_on(&mut self, resource: ResourceId) -> f64 {
        self.ensure_shares();
        self.slots
            .iter()
            .filter(|s| s.live && s.resources.contains(&resource))
            .map(|s| s.rate)
            .sum()
    }

    /// Current rates of all activities (diagnostics / tests), in ascending
    /// slot order.
    pub fn rates(&mut self) -> Vec<(ActivityId, f64)> {
        let mut out = Vec::new();
        self.rates_into(&mut out);
        out
    }

    /// Allocation-free variant of [`FluidModel::rates`]: clears `out` and
    /// fills it with `(id, rate)` pairs in ascending slot order.
    pub fn rates_into(&mut self, out: &mut Vec<(ActivityId, f64)>) {
        self.ensure_shares();
        out.clear();
        out.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.live)
                .map(|(idx, s)| (ActivityId::pack(idx as u32, s.generation), s.rate)),
        );
    }
}

/// Absolute virtual completion time of an activity with `remaining` work at
/// `synced_at` flowing at `rate`: immediate for zero work or sub-resolution
/// remnants, unreachable (infinite, kept out of the heap) at zero rate.
#[inline]
fn projected_completion(remaining: f64, rate: f64, synced_at: f64) -> f64 {
    if remaining <= EPSILON {
        synced_at
    } else if rate > EPSILON {
        if remaining <= rate * TIME_RESOLUTION_S {
            synced_at
        } else {
            synced_at + remaining / rate
        }
    } else {
        f64::INFINITY
    }
}

/// A secondary map keyed by [`ActivityId`], slab-parallel to [`FluidModel`].
///
/// Stores one value per live activity in a dense `Vec` indexed by the id's
/// slot, with the generation recorded alongside so stale ids miss instead of
/// aliasing a recycled slot. This replaces `HashMap<ActivityId, T>` in
/// consumers (the simulation core keeps its per-activity `(job, phase)`
/// bookkeeping here): lookups are O(1) index arithmetic and iteration-free,
/// and no hashing ever happens on the per-event path.
#[derive(Debug, Clone)]
pub struct ActivityMap<T> {
    entries: Vec<Option<(u32, T)>>,
    len: usize,
}

impl<T> Default for ActivityMap<T> {
    fn default() -> Self {
        ActivityMap {
            entries: Vec::new(),
            len: 0,
        }
    }
}

impl<T> ActivityMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associates `value` with `id`, returning the previous value for the
    /// same id. A value left behind by a stale id on the same slot is
    /// discarded silently.
    pub fn insert(&mut self, id: ActivityId, value: T) -> Option<T> {
        let idx = id.slot() as usize;
        if idx >= self.entries.len() {
            self.entries.resize_with(idx + 1, || None);
        }
        let previous = self.entries[idx].take();
        self.entries[idx] = Some((id.generation(), value));
        match previous {
            Some((generation, old)) if generation == id.generation() => Some(old),
            Some(_) => None, // overwrote a stale entry; occupancy unchanged
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// The value associated with `id`, if current.
    pub fn get(&self, id: ActivityId) -> Option<&T> {
        match self.entries.get(id.slot() as usize)? {
            Some((generation, value)) if *generation == id.generation() => Some(value),
            _ => None,
        }
    }

    /// Removes and returns the value associated with `id`, if current.
    pub fn remove(&mut self, id: ActivityId) -> Option<T> {
        let entry = self.entries.get_mut(id.slot() as usize)?;
        match entry {
            Some((generation, _)) if *generation == id.generation() => {
                self.len -= 1;
                entry.take().map(|(_, value)| value)
            }
            _ => None,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_activity_gets_full_capacity() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1000.0, &[link]);
        assert!((m.rate(a).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(
            m.time_to_next_completion().unwrap(),
            SimTime::from_secs(10.0)
        );
    }

    #[test]
    fn two_activities_share_equally() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(500.0, &[link]);
        let b = m.add_activity(1000.0, &[link]);
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        // a completes first after 10s.
        let dt = m.time_to_next_completion().unwrap();
        assert!((dt.as_secs() - 10.0).abs() < 1e-9);
        let done = m.advance(dt);
        assert_eq!(done, vec![a]);
        // b now gets the full link.
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_the_share() {
        let mut m = FluidModel::new();
        let link = m.add_resource(90.0);
        let heavy = m.add_weighted_activity(1e9, &[link], 2.0);
        let light = m.add_weighted_activity(1e9, &[link], 1.0);
        assert!((m.rate(heavy).unwrap() - 60.0).abs() < 1e-9);
        assert!((m.rate(light).unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn multi_link_route_bottlenecked_by_slowest() {
        let mut m = FluidModel::new();
        let fast = m.add_resource(1000.0);
        let slow = m.add_resource(10.0);
        let a = m.add_activity(100.0, &[fast, slow]);
        assert!((m.rate(a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn classic_max_min_three_flows() {
        // Two links of capacity 10; flow A uses link1, flow B uses link2,
        // flow C uses both. Both links saturate simultaneously at rate 5, so
        // the max-min allocation is A=B=C=5.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(10.0);
        let a = m.add_activity(1e9, &[l1]);
        let b = m.add_activity(1e9, &[l2]);
        let c = m.add_activity(1e9, &[l1, l2]);
        let ra = m.rate(a).unwrap();
        let rb = m.rate(b).unwrap();
        let rc = m.rate(c).unwrap();
        assert!((ra - 5.0).abs() < 1e-9, "ra={ra}");
        assert!((rb - 5.0).abs() < 1e-9, "rb={rb}");
        assert!((rc - 5.0).abs() < 1e-9, "rc={rc}");
    }

    #[test]
    fn asymmetric_max_min() {
        // link1 cap 10 shared by A and C; link2 cap 100 used by B and C.
        // Progressive filling: bottleneck link1 at rate 5 freezes A and C;
        // B then grows to 95 on link2.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(100.0);
        let a = m.add_activity(1e9, &[l1]);
        let b = m.add_activity(1e9, &[l2]);
        let c = m.add_activity(1e9, &[l1, l2]);
        assert!((m.rate(a).unwrap() - 5.0).abs() < 1e-9);
        assert!((m.rate(c).unwrap() - 5.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut m = FluidModel::new();
        let links: Vec<_> = (0..5)
            .map(|i| m.add_resource(10.0 * (i + 1) as f64))
            .collect();
        for i in 0..20 {
            let r1 = links[i % 5];
            let r2 = links[(i * 3 + 1) % 5];
            let route = if r1 == r2 { vec![r1] } else { vec![r1, r2] };
            m.add_activity(1e6, &route);
        }
        for (idx, &l) in links.iter().enumerate() {
            let alloc = m.allocated_on(l);
            let cap = 10.0 * (idx + 1) as f64;
            assert!(
                alloc <= cap + 1e-6,
                "resource {idx} over-allocated: {alloc} > {cap}"
            );
        }
    }

    #[test]
    fn removing_activity_restores_capacity() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        let b = m.add_activity(1e6, &[link]);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        let remaining = m.remove_activity(a).unwrap();
        assert!(remaining > 0.0);
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
        assert!(m.remove_activity(a).is_none());
    }

    #[test]
    fn zero_work_activity_completes_immediately() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(0.0, &[link]);
        assert_eq!(m.time_to_next_completion().unwrap(), SimTime::ZERO);
        let done = m.advance(SimTime::ZERO);
        assert_eq!(done, vec![a]);
    }

    #[test]
    fn set_capacity_changes_rates() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        assert!((m.rate(a).unwrap() - 100.0).abs() < 1e-9);
        m.set_capacity(link, 10.0);
        assert!((m.rate(a).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sub_resolution_remnant_completes_with_the_advance_that_produced_it() {
        let mut m = FluidModel::new();
        let link = m.add_resource(1e9);
        let a = m.add_activity(1e9, &[link]);
        // Stop 500 ns short of the analytic completion time: the ~500 bytes
        // left are below the model's time resolution and must complete with
        // this advance rather than generate a separate sub-microsecond event
        // (which the engine could not resolve against the current timestamp).
        let done = m.advance(SimTime::from_secs(1.0 - 5e-7));
        assert_eq!(done, vec![a]);
        assert_eq!(m.activity_count(), 0);
    }

    #[test]
    fn completion_loop_converges_despite_floating_point_residue() {
        // Awkward, non-round capacities and amounts so that remaining work
        // accumulates floating-point residue; the advance-to-next-completion
        // loop must still terminate in a bounded number of steps.
        let mut m = FluidModel::new();
        let shared = m.add_resource(1.234_567_89e9);
        let uplink = m.add_resource(9.871_234_5e8);
        let mut ids = Vec::new();
        for i in 0..13 {
            let amount = 1.0e9 + (i as f64) * 0.123_456_7;
            let route = if i % 2 == 0 {
                vec![shared]
            } else {
                vec![shared, uplink]
            };
            ids.push(m.add_activity(amount, &route));
        }
        let mut steps = 0usize;
        let mut completed = 0usize;
        while let Some(dt) = m.time_to_next_completion() {
            completed += m.advance(dt).len();
            steps += 1;
            assert!(steps < 1_000, "completion loop did not converge");
            if m.activity_count() == 0 {
                break;
            }
        }
        assert_eq!(completed, ids.len());
        assert!(steps <= 2 * ids.len(), "too many advance steps: {steps}");
    }

    #[test]
    fn advance_until_empty_conserves_work() {
        let mut m = FluidModel::new();
        let link = m.add_resource(50.0);
        let work = [100.0, 200.0, 300.0];
        let mut ids = Vec::new();
        for w in work {
            ids.push(m.add_activity(w, &[link]));
        }
        let mut elapsed = 0.0;
        let mut completed = 0;
        while let Some(dt) = m.time_to_next_completion() {
            elapsed += dt.as_secs();
            completed += m.advance(dt).len();
            if completed == work.len() {
                break;
            }
        }
        assert_eq!(completed, 3);
        // Total work 600 through a 50-unit link, always saturated => 12s.
        assert!((elapsed - 12.0).abs() < 1e-6, "elapsed={elapsed}");
    }

    #[test]
    fn slots_are_reused_and_stale_ids_rejected() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        assert_eq!(a.slot(), 0);
        assert_eq!(a.generation(), 0);
        m.remove_activity(a).unwrap();

        // The freed slot is recycled under a new generation.
        let b = m.add_activity(2e6, &[link]);
        assert_eq!(b.slot(), 0);
        assert_eq!(b.generation(), 1);
        assert_ne!(a, b);

        // The stale id misses every lookup instead of aliasing b.
        assert_eq!(m.remaining(a), None);
        assert_eq!(m.rate(a), None);
        assert_eq!(m.remove_activity(a), None);
        assert!((m.remaining(b).unwrap() - 2e6).abs() < 1e-9);
        assert_eq!(m.activity_count(), 1);
    }

    #[test]
    fn duplicate_resources_in_route_are_tolerated() {
        // A route listing the same resource twice inserts the slot twice into
        // that resource's user list; release must remove both copies (one per
        // occurrence in the activity's resource list), leaving no dangling
        // slot index behind.
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(100.0, &[link, link]);
        // The duplicated entry counts the weight twice, halving the rate —
        // same as the pre-slab behaviour.
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        m.remove_activity(a).unwrap();

        // The slot recycles cleanly: a fresh activity not crossing the
        // duplicated entry sees the full capacity, completes, and the model
        // drains to empty (a stale user entry would corrupt the weight sums
        // or panic the freezing loop).
        let b = m.add_activity(100.0, &[link]);
        assert!((m.rate(b).unwrap() - 100.0).abs() < 1e-9);
        let done = m.advance(SimTime::from_secs(1.0));
        assert_eq!(done, vec![b]);
        assert_eq!(m.activity_count(), 0);
        assert!(m.time_to_next_completion().is_none());
    }

    #[test]
    fn completed_activity_id_is_stale_after_advance() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(100.0, &[link]);
        let done = m.advance(SimTime::from_secs(1.0));
        assert_eq!(done, vec![a]);
        assert_eq!(m.remaining(a), None);
        assert_eq!(m.rate(a), None);
    }

    #[test]
    fn rates_are_identical_under_permuted_insertion_order() {
        // Exactly representable capacities and unit weights: the max-min
        // allocation is then order-independent *bit for bit*, so two models
        // holding the same activity set in different slots must agree.
        let build = |order: &[usize]| {
            let mut m = FluidModel::new();
            let l1 = m.add_resource(8.0);
            let l2 = m.add_resource(2.0);
            let l3 = m.add_resource(16.0);
            let routes: [Vec<ResourceId>; 4] = [vec![l1], vec![l1, l2], vec![l2, l3], vec![l3]];
            let mut ids = vec![None; routes.len()];
            for &k in order {
                ids[k] = Some(m.add_activity(1e6, &routes[k]));
            }
            let rates: Vec<f64> = ids
                .into_iter()
                .map(|id| m.rate(id.expect("all inserted")).unwrap())
                .collect();
            rates
        };
        let forward = build(&[0, 1, 2, 3]);
        let reversed = build(&[3, 2, 1, 0]);
        let shuffled = build(&[2, 0, 3, 1]);
        for (i, r) in forward.iter().enumerate() {
            assert_eq!(r.to_bits(), reversed[i].to_bits(), "activity {i}");
            assert_eq!(r.to_bits(), shuffled[i].to_bits(), "activity {i}");
        }
    }

    #[test]
    fn recompute_is_identical_across_independently_built_models() {
        // Same construction sequence → bit-identical rates, including after
        // churn (removals re-sorting the user lists and recycling slots).
        let build = || {
            let mut m = FluidModel::new();
            let links: Vec<_> = (0..6).map(|i| m.add_resource(10.0 + i as f64)).collect();
            let mut ids = Vec::new();
            for i in 0..40 {
                let route = vec![links[i % 6], links[(i * 5 + 2) % 6]];
                ids.push(m.add_activity(1e5 + i as f64, &route));
            }
            for i in (0..40).step_by(3) {
                m.remove_activity(ids[i]);
            }
            for i in 0..10 {
                m.add_activity(5e4 + i as f64, &[links[i % 6]]);
            }
            let rates: Vec<((u32, u32), u64)> = m
                .rates()
                .into_iter()
                .map(|(id, r)| ((id.slot(), id.generation()), r.to_bits()))
                .collect();
            rates
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn activity_map_tracks_generations() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let mut map: ActivityMap<&str> = ActivityMap::new();

        let a = m.add_activity(1e6, &[link]);
        assert_eq!(map.insert(a, "first"), None);
        assert_eq!(map.get(a), Some(&"first"));
        assert_eq!(map.len(), 1);

        m.remove_activity(a).unwrap();
        let b = m.add_activity(1e6, &[link]);
        assert_eq!(b.slot(), a.slot(), "slot is recycled");

        // The stale id no longer resolves; the new id takes over the slot.
        assert_eq!(map.insert(b, "second"), None);
        assert_eq!(map.len(), 1, "stale entry replaced, not accumulated");
        assert_eq!(map.get(a), None);
        assert_eq!(map.remove(a), None);
        assert_eq!(map.remove(b), Some("second"));
        assert!(map.is_empty());
    }

    #[test]
    fn activity_id_display_shows_slot_and_generation() {
        let mut m = FluidModel::new();
        let link = m.add_resource(1.0);
        let a = m.add_activity(1.0, &[link]);
        assert_eq!(format!("{a}"), "activity#0@0");
        m.remove_activity(a).unwrap();
        let b = m.add_activity(1.0, &[link]);
        assert_eq!(format!("{b}"), "activity#0@1");
    }

    // ---- incremental-solver specific tests --------------------------------

    #[test]
    fn disjoint_component_rates_are_untouched_by_churn_elsewhere() {
        // Two islands that never share a resource: churn in island B must
        // leave island A's rates bit-identical (its component is never
        // dirtied, so its slots are never rewritten).
        let mut m = FluidModel::new();
        let a1 = m.add_resource(10.0);
        let a2 = m.add_resource(7.0);
        let b1 = m.add_resource(100.0);
        let x = m.add_activity(1e9, &[a1, a2]);
        let y = m.add_activity(1e9, &[a1]);
        let rx = m.rate(x).unwrap();
        let ry = m.rate(y).unwrap();
        let mut others = Vec::new();
        for i in 0..50 {
            others.push(m.add_weighted_activity(1e9, &[b1], 1.0 + i as f64));
            if i % 3 == 0 {
                if let Some(&victim) = others.first() {
                    m.remove_activity(victim);
                    others.remove(0);
                }
            }
            // Query forces a solve of the dirty component (island B only).
            let _ = m.time_to_next_completion();
            assert_eq!(m.rate(x).unwrap().to_bits(), rx.to_bits());
            assert_eq!(m.rate(y).unwrap().to_bits(), ry.to_bits());
        }
    }

    #[test]
    fn incremental_rates_match_a_freshly_built_model_after_heavy_churn() {
        // Drive enough retires through the model to cross the partition
        // rebuild threshold several times, then compare against a fresh model
        // holding the same final activity set: rates must agree bit-for-bit
        // (the decomposition argument, exercised end-to-end).
        let mut m = FluidModel::new();
        let links: Vec<_> = (0..8).map(|i| m.add_resource(50.0 + i as f64)).collect();
        let mut live: Vec<(ActivityId, f64, Vec<ResourceId>, f64)> = Vec::new();
        let mut counter = 0u64;
        for step in 0..600 {
            if step % 3 == 2 && !live.is_empty() {
                let (id, _, _, _) = live.remove(step % live.len());
                m.remove_activity(id).unwrap();
            } else {
                counter += 1;
                let amount = 1e7 + counter as f64;
                let weight = 1.0 + (counter % 5) as f64;
                let r1 = links[(counter as usize) % 8];
                let r2 = links[(counter as usize * 5 + 1) % 8];
                let route = if r1 == r2 { vec![r1] } else { vec![r1, r2] };
                let id = m.add_weighted_activity(amount, &route, weight);
                live.push((id, amount, route, weight));
            }
            let _ = m.time_to_next_completion();
        }
        // Rebuild threshold is max(64, live): 200 retires crossed it.
        let mut fresh = FluidModel::new();
        for i in 0..8 {
            fresh.add_resource(50.0 + i as f64);
        }
        let mut fresh_of = std::collections::HashMap::new();
        for (id, amount, route, weight) in &live {
            fresh_of.insert(*id, fresh.add_weighted_activity(*amount, route, *weight));
        }
        for (id, _, _, _) in &live {
            let incremental = m.rate(*id).unwrap();
            let reference = fresh.rate(fresh_of[id]).unwrap();
            assert_eq!(incremental.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn re_rate_mid_flight_reprojects_completions() {
        // Two transfers on separate links; degrading one link mid-flight must
        // flip which activity completes next and keep remaining-work
        // accounting consistent.
        let mut m = FluidModel::new();
        let l1 = m.add_resource(100.0);
        let l2 = m.add_resource(100.0);
        let a = m.add_activity(1000.0, &[l1]); // 10s at full rate
        let b = m.add_activity(1500.0, &[l2]); // 15s at full rate
        assert!((m.time_to_next_completion().unwrap().as_secs() - 10.0).abs() < 1e-9);
        m.advance(SimTime::from_secs(5.0)); // a: 500 left, b: 1000 left
        m.set_capacity(l1, 10.0); // a now needs 50 more seconds
        let dt = m.time_to_next_completion().unwrap();
        assert!((dt.as_secs() - 10.0).abs() < 1e-9, "b finishes first now");
        let done = m.advance(dt);
        assert_eq!(done, vec![b]);
        assert!((m.remaining(a).unwrap() - 400.0).abs() < 1e-6);
        let dt = m.time_to_next_completion().unwrap();
        let done = m.advance(dt);
        assert_eq!(done, vec![a]);
        assert_eq!(m.activity_count(), 0);
    }

    #[test]
    fn set_capacity_to_same_value_does_not_dirty() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        let r0 = m.rate(a).unwrap();
        m.set_capacity(link, 100.0); // bit-identical capacity: no-op
        assert_eq!(m.rate(a).unwrap().to_bits(), r0.to_bits());
    }

    #[test]
    fn advance_into_reuses_buffer_and_matches_advance() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(100.0, &[link]);
        let b = m.add_activity(100.0, &[link]);
        let mut buf = Vec::with_capacity(8);
        buf.push(ActivityId::pack(99, 99)); // stale content must be cleared
        m.advance_into(SimTime::from_secs(2.0), &mut buf);
        assert_eq!(buf, vec![a, b]);
        m.advance_into(SimTime::from_secs(1.0), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn rates_into_reuses_buffer() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        let mut buf = vec![(ActivityId::pack(7, 7), -1.0)];
        m.rates_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].0, a);
        assert!((buf[0].1 - 100.0).abs() < 1e-9);
    }

    // ---- single-bottleneck fast-path tests --------------------------------

    #[test]
    fn single_resource_component_takes_the_fast_path() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(1e6, &[link]);
        let b = m.add_activity(1e6, &[link]);
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 50.0).abs() < 1e-9);
        let (fast, slow) = m.solver_stats();
        assert!(fast >= 1, "single-resource solve must take the fast path");
        assert_eq!(slow, 0);
    }

    #[test]
    fn steady_churn_on_a_stable_hub_skips_per_slot_filling() {
        // Equal-weight churn keeps Σw — and therefore φ — bitwise stable, so
        // after the first sweep every further solve touches only the freshly
        // admitted slot. We can't observe "no per-slot work" directly, but we
        // can pin that every solve stays on the fast path and rates stay
        // bit-identical to a freshly built model.
        let mut m = FluidModel::new();
        let hub = m.add_resource(1e9);
        let uplinks: Vec<_> = (0..4).map(|_| m.add_resource(1e12)).collect();
        let mut live: Vec<ActivityId> = (0..64)
            .map(|i| m.add_activity(1e12, &[uplinks[i % 4], hub]))
            .collect();
        let _ = m.time_to_next_completion();
        for i in 0..200 {
            let victim = live.remove(i % live.len());
            m.remove_activity(victim).unwrap();
            live.push(m.add_activity(1e12 + i as f64, &[uplinks[i % 4], hub]));
            let _ = m.time_to_next_completion();
        }
        let (fast, slow) = m.solver_stats();
        assert!(fast >= 200, "churn solves must stay on the fast path");
        assert_eq!(slow, 0);
        let expected: f64 = 1e9 / 64.0;
        for &id in &live {
            assert_eq!(m.rate(id).unwrap().to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn component_migrates_between_fast_and_slow_modes() {
        // Start single-bottleneck (fast), admit an activity that makes a
        // second resource the binding constraint for part of the component
        // (slow), retire it (fast again) — rates always match a twin model
        // forced down the slow path.
        let mut m = FluidModel::new();
        let mut twin = FluidModel::new();
        twin.disable_fast_path();
        let l1 = m.add_resource(10.0);
        let l2 = m.add_resource(100.0);
        twin.add_resource(10.0);
        twin.add_resource(100.0);
        let check = |m: &mut FluidModel, twin: &mut FluidModel| {
            let rates: Vec<(ActivityId, u64)> = m
                .rates()
                .into_iter()
                .map(|(i, r)| (i, r.to_bits()))
                .collect();
            let twin_rates: Vec<(ActivityId, u64)> = twin
                .rates()
                .into_iter()
                .map(|(i, r)| (i, r.to_bits()))
                .collect();
            assert_eq!(rates, twin_rates);
        };

        // Phase 1: everything crosses l1 and is bottlenecked there.
        let _a = m.add_activity(1e9, &[l1, l2]);
        twin.add_activity(1e9, &[l1, l2]);
        let _c = m.add_activity(1e9, &[l1]);
        twin.add_activity(1e9, &[l1]);
        check(&mut m, &mut twin);
        let fast_after_phase1 = m.solver_stats().0;
        assert!(fast_after_phase1 >= 1, "single-bottleneck phase is fast");

        // Phase 2: an l2-only activity makes the component multi-constrained
        // (l2 users ≠ all activities, and l2 is not everyone's bottleneck).
        let b = m.add_activity(1e9, &[l2]);
        let b_twin = twin.add_activity(1e9, &[l2]);
        check(&mut m, &mut twin);
        let slow_after_phase2 = m.solver_stats().1;
        assert!(slow_after_phase2 >= 1, "multi-constrained phase is slow");

        // Phase 3: retiring the l2-only activity migrates the component back.
        m.remove_activity(b).unwrap();
        twin.remove_activity(b_twin).unwrap();
        check(&mut m, &mut twin);
        let (fast_final, slow_final) = m.solver_stats();
        assert!(fast_final > fast_after_phase1, "fast path re-engages");
        assert_eq!(slow_final, slow_after_phase2, "no further slow solves");
    }

    #[test]
    fn non_integer_weights_gate_the_component_to_the_slow_path() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_weighted_activity(1e9, &[link], 1.5);
        let b = m.add_weighted_activity(1e9, &[link], 1.0);
        assert!((m.rate(a).unwrap() - 60.0).abs() < 1e-9);
        assert!((m.rate(b).unwrap() - 40.0).abs() < 1e-9);
        let (fast, slow) = m.solver_stats();
        assert_eq!(fast, 0, "fractional weights must not take the fast path");
        assert!(slow >= 1);

        // Draining the tainted resource heals it: a fresh integer-weight
        // activity set goes fast again.
        m.remove_activity(a).unwrap();
        m.remove_activity(b).unwrap();
        let _ = m.time_to_next_completion();
        let c = m.add_activity(1e9, &[link]);
        assert!((m.rate(c).unwrap() - 100.0).abs() < 1e-9);
        assert!(m.solver_stats().0 >= 1, "healed resource re-qualifies");
    }

    #[test]
    fn duplicate_route_entries_gate_the_component_to_the_slow_path() {
        let mut m = FluidModel::new();
        let link = m.add_resource(100.0);
        let a = m.add_activity(100.0, &[link, link]);
        assert!((m.rate(a).unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(m.solver_stats().0, 0, "duplicated route must solve slow");
    }

    #[test]
    fn simultaneous_completions_pop_in_slot_order() {
        // Equal work on equal dedicated links: identical projections; the
        // heap's slot tie-break must hand them back in ascending slot order.
        let mut m = FluidModel::new();
        let ids: Vec<_> = (0..5)
            .map(|_| {
                let l = m.add_resource(100.0);
                m.add_activity(1000.0, &[l])
            })
            .collect();
        let done = m.advance(SimTime::from_secs(10.0));
        assert_eq!(done, ids);
    }
}
