//! Deterministic random number generation and distributions.
//!
//! Every source of randomness in CGSim-RS (synthetic trace generation, random
//! allocation policies, failure injection, random-search calibration) flows
//! through this module so that a simulation run is fully reproducible from a
//! single 64-bit seed. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction recommended by the xoshiro authors —
//! implemented locally to keep the simulation core free of non-deterministic
//! dependencies.
//!
//! The distribution set covers what the PanDA-like workload model needs:
//! uniform, normal (Box–Muller), log-normal (job walltimes are approximately
//! log-normal in the ATLAS production logs), exponential (inter-arrival
//! times), Poisson (file counts), Pareto (heavy-tailed file sizes), and
//! weighted discrete choice (site assignment skew).

/// A deterministic pseudo-random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Cached second normal variate from the Box–Muller transform.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator (used to give each site or each
    /// calibration worker its own stream without correlation).
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        Rng::new(base)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result =
            rotl(self.state[0].wrapping_add(self.state[3]), 23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = rotl(self.state[3], 45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo, "uniform_range requires hi >= lo");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Multiply-shift; bias is negligible for the ranges used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi >= lo);
        let span = (hi - lo) as u64 + 1;
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as i64
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal variate via Box–Muller.
    pub fn normal_std(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 to keep ln finite.
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal_std()
    }

    /// Log-normal variate parameterised by the mean and standard deviation of
    /// the *underlying* normal distribution.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Log-normal variate parameterised by the desired mean and coefficient of
    /// variation of the log-normal itself (convenient for workload models).
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0 && cv >= 0.0);
        if cv == 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Exponential variate with the given rate (`1/mean`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Weibull variate with the given scale and shape, via inversion:
    /// `scale * (-ln(1 - u))^(1/shape)`. Shape 1 reduces to the exponential
    /// distribution with mean `scale`; shape > 1 models wear-out failures,
    /// shape < 1 infant-mortality clustering (reliability modelling for the
    /// fault-injection subsystem).
    pub fn weibull(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(
            scale > 0.0 && shape > 0.0,
            "weibull scale and shape must be positive"
        );
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Poisson variate with mean `lambda` (Knuth's algorithm for small lambda,
    /// normal approximation above 30).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let v = self.normal(lambda, lambda.sqrt()).round();
            return v.max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Pareto variate with scale `x_min` and shape `alpha` (heavy-tailed file
    /// sizes and straggler walltimes).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        x_min / u.powf(1.0 / alpha)
    }

    /// Picks an index in `[0, weights.len())` with probability proportional to
    /// the weights. Panics on an empty or all-zero weight vector.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index needs a positive total weight");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Picks a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(1234);
        let mut b = Rng::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Rng::new(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(99);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn lognormal_mean_cv_matches_target() {
        let mut rng = Rng::new(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_cv(100.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean={mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_mean_small_and_large_lambda() {
        let mut rng = Rng::new(13);
        for &lambda in &[0.5, 3.0, 50.0] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let mut rng = Rng::new(15);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.weibull(2.0, 1.0)).sum::<f64>() / n as f64;
        // Shape 1 => mean equals the scale.
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        // Shape 2 (Rayleigh): mean = scale * Γ(1.5) ≈ 0.8862 * scale.
        let mean2: f64 = (0..n).map(|_| rng.weibull(2.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean2 - 2.0 * 0.886_226_9).abs() < 0.05, "mean2={mean2}");
        assert!((0..1000).all(|_| rng.weibull(1.0, 0.5) >= 0.0));
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = Rng::new(17);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = Rng::new(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut rng = Rng::new(29);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.index(10)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count={c}");
        }
    }

    #[test]
    fn int_range_inclusive_bounds() {
        let mut rng = Rng::new(31);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.int_range(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(37);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_uncorrelated() {
        let mut parent = Rng::new(41);
        let mut a = parent.fork(0);
        let mut b = parent.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(43);
        assert!(!(0..1000).any(|_| rng.chance(0.0)));
        assert!((0..1000).all(|_| rng.chance(1.0)));
    }
}
