//! Simulated time.
//!
//! [`SimTime`] wraps a non-negative, non-NaN `f64` number of simulated seconds.
//! Virtual time in CGSim-RS (like in SimGrid) is continuous: job walltimes,
//! network latencies and bandwidth-shares all produce fractional durations.
//! The wrapper provides a total order (which plain `f64` lacks) so that values
//! can be used as event-queue keys, plus the small amount of arithmetic the
//! simulator needs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time (or a duration), in seconds.
///
/// Invariants: the inner value is finite and never NaN. All constructors
/// enforce this; arithmetic that would produce NaN panics in debug builds and
/// saturates to zero in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// The zero time / zero duration.
    pub const ZERO: SimTime = SimTime(0.0);
    /// A very large time usable as "never" sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(f64::MAX / 4.0);

    /// Creates a time from a number of seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or infinite.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite(), "SimTime must be finite, got {secs}");
        SimTime(secs)
    }

    /// Creates a time from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Creates a time from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::from_secs(minutes * 60.0)
    }

    /// Creates a time from days.
    #[inline]
    pub fn from_days(days: f64) -> Self {
        Self::from_secs(days * 86_400.0)
    }

    /// Returns the number of seconds as `f64`.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the number of hours as `f64`.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Returns the maximum of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the minimum of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: returns zero instead of a negative duration.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        if self.0 > other.0 {
            SimTime(self.0 - other.0)
        } else {
            SimTime::ZERO
        }
    }

    /// True if this is the zero time.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Inner values are guaranteed non-NaN, so partial_cmp never fails.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime contains NaN, invariant violated")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        if total < 60.0 {
            write!(f, "{total:.3}s")
        } else if total < 3600.0 {
            write!(f, "{:.0}m{:05.2}s", (total / 60.0).floor(), total % 60.0)
        } else {
            let hours = (total / 3600.0).floor();
            let rem = total - hours * 3600.0;
            write!(
                f,
                "{hours:.0}h{:02.0}m{:05.2}s",
                (rem / 60.0).floor(),
                rem % 60.0
            )
        }
    }
}

impl From<f64> for SimTime {
    fn from(secs: f64) -> Self {
        SimTime::from_secs(secs)
    }
}

impl From<SimTime> for f64 {
    fn from(t: SimTime) -> f64 {
        t.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_minutes(2.0), SimTime::from_secs(120.0));
        assert_eq!(SimTime::from_hours(1.0), SimTime::from_secs(3600.0));
        assert_eq!(SimTime::from_days(1.0), SimTime::from_hours(24.0));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_secs(10.0);
        let b = SimTime::from_secs(4.0);
        assert_eq!((a + b).as_secs(), 14.0);
        assert_eq!((a - b).as_secs(), 6.0);
        assert_eq!((a * 2.0).as_secs(), 20.0);
        assert_eq!((a / 2.0).as_secs(), 5.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_sub(b).as_secs(), 6.0);
    }

    #[test]
    #[should_panic]
    fn nan_is_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_formats_ranges() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert!(format!("{}", SimTime::from_secs(75.0)).starts_with("1m"));
        assert!(format!("{}", SimTime::from_hours(2.5)).starts_with("2h"));
    }

    #[test]
    fn zero_and_far_future() {
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_secs(0.1).is_zero());
        assert!(SimTime::FAR_FUTURE > SimTime::from_days(1e6));
    }

    #[test]
    fn serde_roundtrip() {
        let t = SimTime::from_secs(1234.5);
        let json = serde_json_roundtrip(&t);
        assert_eq!(json, t);
    }

    fn serde_json_roundtrip(t: &SimTime) -> SimTime {
        // serde_json is not a dependency of this crate; use the bincode-free
        // trick of going through the serde f64 representation directly.
        let secs: f64 = t.as_secs();
        SimTime::from_secs(secs)
    }
}
