//! Statistics helpers used across the workspace.
//!
//! Calibration (paper §4.2) reports the *relative mean absolute error* of job
//! walltimes per site and the *geometric mean* of that error across sites; the
//! scalability analysis (Fig. 4) needs scaling-exponent fits; the monitoring
//! layer needs streaming summaries. All of that lives here so that the
//! numerical definitions are shared by the library, the tests and the
//! benchmark harness.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Full distribution summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of the sample; returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        Some(Summary {
            count: values.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Percentile (linear interpolation) of an already sorted, non-empty slice.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be in [0,100]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of strictly positive values.
///
/// The paper reports the geometric mean of per-site relative MAE across the
/// 50 WLCG sites (Fig. 3).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Mean absolute error between predictions and ground truth.
pub fn mean_absolute_error(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Relative mean absolute error: `mean(|p - t| / |t|)`, the per-site metric of
/// Fig. 3. Ground-truth values of zero are skipped.
pub fn relative_mae(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, t) in predicted.iter().zip(truth) {
        if t.abs() > f64::EPSILON {
            total += (p - t).abs() / t.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Least-squares fit of `y = a + b*x`; returns `(a, b)`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    assert!(sxx > 0.0, "x values are all identical");
    let b = sxy / sxx;
    let a = my - b * mx;
    let _ = n;
    (a, b)
}

/// Fits a power law `y = c * x^k` by regressing `ln y` on `ln x`; returns the
/// exponent `k`. Used to verify the scaling claims of Fig. 4 (sub-quadratic
/// job scaling, near-linear site scaling).
pub fn scaling_exponent(x: &[f64], y: &[f64]) -> f64 {
    let lx: Vec<f64> = x.iter().map(|&v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|&v| v.max(1e-300).ln()).collect();
    linear_fit(&lx, &ly).1
}

/// A fixed-width histogram over `[lo, hi)` with values outside clamped into
/// the first / last bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (self.bins.len() - 1) as f64) as usize;
        self.bins[idx] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Lower edge of bin `i`.
    pub fn bin_edge(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.bins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineStats::new();
        for &v in &values {
            acc.push(v);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_single_pass() {
        let a_vals = [1.0, 2.0, 3.0];
        let b_vals = [10.0, 20.0, 30.0, 40.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &v in &a_vals {
            a.push(v);
            all.push(v);
        }
        for &v in &b_vals {
            b.push(v);
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_online_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_percentiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&values).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p95 - 95.05).abs() < 0.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn mae_and_relative_mae() {
        let truth = [10.0, 20.0, 40.0];
        let pred = [12.0, 18.0, 40.0];
        assert!((mean_absolute_error(&pred, &truth) - (2.0 + 2.0 + 0.0) / 3.0).abs() < 1e-12);
        let rel = relative_mae(&pred, &truth);
        assert!((rel - (0.2 + 0.1 + 0.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn relative_mae_skips_zero_truth() {
        let rel = relative_mae(&[1.0, 5.0], &[0.0, 5.0]);
        assert_eq!(rel, 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 + 2.0 * v).collect();
        let (a, b) = linear_fit(&x, &y);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_exponent_detects_quadratic_and_linear() {
        let x: Vec<f64> = (1..=20).map(|i| i as f64 * 100.0).collect();
        let y_lin: Vec<f64> = x.iter().map(|&v| 3.0 * v).collect();
        let y_quad: Vec<f64> = x.iter().map(|&v| 0.01 * v * v).collect();
        assert!((scaling_exponent(&x, &y_lin) - 1.0).abs() < 1e-6);
        assert!((scaling_exponent(&x, &y_quad) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -5.0, 50.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 3); // 0.5, 1.5 and clamped -5.0
        assert_eq!(h.counts()[4], 2); // 9.9 and clamped 50.0
        assert!((h.bin_edge(1) - 2.0).abs() < 1e-12);
    }
}
