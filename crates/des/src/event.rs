//! Time-ordered event queue.
//!
//! The queue is a binary heap keyed by `(SimTime, sequence number)`. The
//! sequence number makes the order of simultaneous events deterministic
//! (insertion order), which in turn makes whole simulations reproducible —
//! one of the requirements for the calibration experiments, where the same
//! trace must produce the same walltimes on every evaluation of a candidate
//! parameter vector.
//!
//! Events can be cancelled through the [`EventKey`] returned by
//! [`EventQueue::schedule`]; cancellation is lazy (a tombstone set), so it is
//! O(log n) amortised and does not disturb the heap.

use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    /// Raw sequence number (mostly useful in logs and tests).
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// An event plus the time it is scheduled for.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties deterministically.
    pub key: EventKey,
    /// The payload.
    pub event: E,
}

/// Internal heap entry ordered so the `BinaryHeap` (a max-heap) pops the
/// earliest time / lowest sequence first.
struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest (time, seq) should be the heap maximum.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable, time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    scheduled_total: u64,
    cancelled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            cancelled: HashSet::new(),
            next_seq: 0,
            scheduled_total: 0,
            cancelled_total: 0,
        }
    }

    /// Schedules `event` at absolute time `time` and returns a cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(HeapEntry { time, seq, event });
        EventKey(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. had not been popped or cancelled before).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq {
            return false;
        }
        let inserted = self.cancelled.insert(key.0);
        if inserted {
            self.cancelled_total += 1;
        }
        inserted
    }

    /// Removes and returns the next (earliest) non-cancelled event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some(ScheduledEvent {
                time: entry.time,
                key: EventKey(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// Returns the time of the next non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries lazily so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of events currently pending (including not-yet-skipped
    /// cancelled entries' complement, i.e. this is the *live* count).
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventKey(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.cancel(k);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
