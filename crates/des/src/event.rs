//! Time-ordered event queue.
//!
//! The queue is a binary heap keyed by `(SimTime, sequence number)`. The
//! sequence number makes the order of simultaneous events deterministic
//! (insertion order), which in turn makes whole simulations reproducible —
//! one of the requirements for the calibration experiments, where the same
//! trace must produce the same walltimes on every evaluation of a candidate
//! parameter vector.
//!
//! Events can be cancelled through the [`EventKey`] returned by
//! [`EventQueue::schedule`]; cancellation is lazy (a tombstone in the status
//! table), so it is O(1) amortised and does not disturb the heap. Two
//! mechanisms keep memory bounded under heavy cancellation (fault injection
//! cancels timers constantly):
//!
//! * **Heap tombstone compaction.** Whenever cancelled tombstones outnumber
//!   live entries (beyond a small slack), the heap is rebuilt from its live
//!   entries only. Rebuilding cannot change pop order: the `(time, seq)` key
//!   is a total order, so the pop sequence is independent of the heap's
//!   internal layout.
//! * **Status-table windowing.** Statuses are kept in a `VecDeque` starting
//!   at sequence `base`; once the oldest events are all delivered or
//!   cancelled, the front of the window is dropped. When a long-lived
//!   pending event pins the front (a far-future maintenance timer while
//!   millions of job events retire behind it), the window is swept instead:
//!   the still-pending sequence numbers move to a small `stragglers` set and
//!   the window restarts at the next sequence, keeping resident state O(live)
//!   rather than O(total scheduled). A key below the window is pending iff it
//!   is in the straggler set; anything else retired long ago, so `cancel` on
//!   it is a reported no-op — exactly as before.
//!
//! The queue additionally maintains the invariant that the heap top is never
//! a tombstone (skimming happens inside `cancel`/`pop`, the only operations
//! that can put a tombstone on top). That makes [`EventQueue::peek_time`] an
//! honest `&self` accessor instead of a `&mut self` lazy skim.

use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Extra tombstones tolerated in the heap before compaction kicks in (avoids
/// rebuild thrash on tiny queues).
const COMPACT_SLACK: usize = 64;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    /// Raw sequence number (mostly useful in logs and tests).
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// An event plus the time it is scheduled for.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties deterministically.
    pub key: EventKey,
    /// The payload.
    pub event: E,
}

/// Lifecycle of one scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventStatus {
    /// Scheduled and not yet popped or cancelled.
    Pending,
    /// Popped by [`EventQueue::pop`] and handed to the caller.
    Delivered,
    /// Cancelled (or dropped by [`EventQueue::clear`]) before delivery.
    Cancelled,
}

/// Internal heap entry ordered so the `BinaryHeap` (a max-heap) pops the
/// earliest time / lowest sequence first.
struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest (time, seq) should be the heap maximum.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable, time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    /// Status window of recent events, indexed by `seq - base`. Events below
    /// `base` are all retired (delivered or cancelled) unless they appear in
    /// `stragglers`.
    status: VecDeque<EventStatus>,
    /// Sequence number of `status.front()`.
    base: u64,
    /// Still-pending events swept out of the window when a long-lived
    /// pending event would otherwise pin `base` (at most `live` entries).
    stragglers: BTreeSet<u64>,
    /// Total number of events ever scheduled.
    scheduled_total: u64,
    /// Number of `Pending` events (the live count; never underflows because
    /// every decrement is guarded by a `Pending` status check).
    live: usize,
    cancelled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            status: VecDeque::new(),
            base: 0,
            stragglers: BTreeSet::new(),
            scheduled_total: 0,
            live: 0,
            cancelled_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            status: VecDeque::with_capacity(cap),
            base: 0,
            stragglers: BTreeSet::new(),
            scheduled_total: 0,
            live: 0,
            cancelled_total: 0,
        }
    }

    fn is_pending(&self, seq: u64) -> bool {
        match seq.checked_sub(self.base) {
            Some(offset) => self.status.get(offset as usize).copied() == Some(EventStatus::Pending),
            None => self.stragglers.contains(&seq),
        }
    }

    /// Drops the retired prefix of the status window; if a long-lived
    /// pending event still pins the front while the window has outgrown the
    /// live count, sweeps the remaining pending sequences into the straggler
    /// set and restarts the window. Either way the resident status state is
    /// O(live), never O(total scheduled).
    fn compact_status(&mut self) {
        while matches!(self.status.front(), Some(s) if *s != EventStatus::Pending) {
            self.status.pop_front();
            self.base += 1;
        }
        if self.status.len() > 2 * self.live + COMPACT_SLACK {
            for (offset, status) in self.status.iter().enumerate() {
                if *status == EventStatus::Pending {
                    self.stragglers.insert(self.base + offset as u64);
                }
            }
            self.status.clear();
            self.base = self.scheduled_total;
        }
    }

    /// Restores the invariant that the heap top is not a tombstone.
    fn skim(&mut self) {
        while let Some(entry) = self.heap.peek() {
            if self.is_pending(entry.seq) {
                return;
            }
            self.heap.pop();
        }
    }

    /// Rebuilds the heap from its live entries once tombstones dominate.
    fn maybe_compact_heap(&mut self) {
        if self.heap.len() > 2 * self.live + COMPACT_SLACK {
            let entries = std::mem::take(&mut self.heap).into_vec();
            self.heap = entries
                .into_iter()
                .filter(|e| self.is_pending(e.seq))
                .collect();
        }
    }

    /// Schedules `event` at absolute time `time` and returns a cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.scheduled_total;
        self.scheduled_total += 1;
        self.status.push_back(EventStatus::Pending);
        self.live += 1;
        self.heap.push(HeapEntry { time, seq, event });
        EventKey(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending — i.e. had not been popped or cancelled before. A key
    /// whose event was already delivered is a no-op reporting `false` (it
    /// must not leave a tombstone behind, or the live count would drift).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(offset) = key.0.checked_sub(self.base) else {
            // Below the window: pending only if it survived a sweep.
            if !self.stragglers.remove(&key.0) {
                return false; // retired long ago
            }
            self.live -= 1;
            self.cancelled_total += 1;
            self.skim();
            self.maybe_compact_heap();
            return true;
        };
        match self.status.get_mut(offset as usize) {
            Some(status @ EventStatus::Pending) => {
                *status = EventStatus::Cancelled;
                self.live -= 1;
                self.cancelled_total += 1;
                self.compact_status();
                self.skim();
                self.maybe_compact_heap();
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the next (earliest) non-cancelled event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        // The skim invariant guarantees the top entry (if any) is pending.
        let entry = self.heap.pop()?;
        debug_assert!(self.is_pending(entry.seq), "tombstone surfaced on top");
        match entry.seq.checked_sub(self.base) {
            Some(offset) => {
                if let Some(status) = self.status.get_mut(offset as usize) {
                    *status = EventStatus::Delivered;
                }
            }
            None => {
                self.stragglers.remove(&entry.seq);
            }
        }
        self.live -= 1;
        self.compact_status();
        self.skim();
        self.maybe_compact_heap();
        Some(ScheduledEvent {
            time: entry.time,
            key: EventKey(entry.seq),
            event: entry.event,
        })
    }

    /// Returns the time of the next non-cancelled event without removing it.
    ///
    /// The skim invariant (tombstones never rest on top of the heap) makes
    /// this a plain `&self` read; it is exact, not an upper bound.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.time)
    }

    /// Returns the time and key of the next non-cancelled event without
    /// removing it (cancellation-safe peek for callers that need to decide
    /// whether to cancel what they are looking at).
    pub fn peek_key(&self) -> Option<(SimTime, EventKey)> {
        self.heap
            .peek()
            .map(|entry| (entry.time, EventKey(entry.seq)))
    }

    /// Number of events currently pending (scheduled, not yet delivered or
    /// cancelled).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Number of entries physically held by the heap, live plus tombstones
    /// (diagnostics: compaction keeps this within `2·len() + O(1)`).
    pub fn heap_entries(&self) -> usize {
        self.heap.len()
    }

    /// Width of the status window plus swept stragglers (diagnostics: the
    /// sweep keeps this within `2·len() + O(1)` even when one early event
    /// stays pending while millions retire behind it).
    pub fn status_entries(&self) -> usize {
        self.status.len() + self.stragglers.len()
    }

    /// Removes every pending event (their keys then behave like cancelled
    /// ones: a later `cancel` reports `false`).
    ///
    /// Sequence numbers keep growing monotonically across a clear, so an
    /// `EventKey` issued before the clear can never alias an event scheduled
    /// after it.
    pub fn clear(&mut self) {
        self.heap.clear();
        for status in self.status.iter_mut() {
            if *status == EventStatus::Pending {
                *status = EventStatus::Cancelled;
            }
        }
        self.stragglers.clear();
        self.live = 0;
        self.compact_status();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventKey(99)));
    }

    #[test]
    fn cancel_after_delivery_is_rejected() {
        // Regression: cancelling a key whose event was already popped used to
        // insert a permanent tombstone, making `len()` underflow (panic in
        // debug, a huge bogus count in release) on the next computation.
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1.0), "a");
        let delivered = q.pop().unwrap();
        assert_eq!(delivered.key, k);
        assert!(!q.cancel(k), "consumed key must not be cancellable");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.cancelled_total(), 0);

        // The queue keeps functioning normally afterwards.
        let k2 = q.schedule(SimTime::from_secs(2.0), "b");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(k2));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn peek_key_identifies_the_next_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_secs(1.0), "a");
        let k2 = q.schedule(SimTime::from_secs(2.0), "b");
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(1.0), k1)));
        // Cancelling exactly what was peeked is safe and exposes the next.
        assert!(q.cancel(k1));
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(2.0), k2)));
        q.cancel(k2);
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.cancel(k);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn cleared_keys_cannot_be_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(!q.cancel(k));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn tombstone_compaction_bounds_memory_and_preserves_pop_order() {
        // Heavy-cancellation regression: waves of schedule-then-cancel (the
        // fault injector's timer pattern) must not grow the heap or the
        // status window without bound, and the survivors must pop in exactly
        // the order a cancellation-free queue would produce.
        let mut q = EventQueue::new();
        let mut survivors = Vec::new();
        for wave in 0..100u64 {
            let mut keys = Vec::new();
            for i in 0..100u64 {
                let t = SimTime::from_secs((wave * 100 + (i * 37) % 100) as f64);
                let payload = wave * 100 + i;
                keys.push((q.schedule(t, payload), t, payload));
            }
            for (n, &(key, t, payload)) in keys.iter().enumerate() {
                if n % 100 < 99 {
                    assert!(q.cancel(key));
                } else {
                    survivors.push((t, key.sequence(), payload));
                }
                assert!(
                    q.heap_entries() <= 2 * q.len() + 64,
                    "heap grew unboundedly: {} entries for {} live",
                    q.heap_entries(),
                    q.len()
                );
            }
        }
        survivors.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push(ev.event);
        }
        let expected: Vec<u64> = survivors.iter().map(|&(_, _, p)| p).collect();
        assert_eq!(popped, expected);
        // Fully drained: both stores are empty again.
        assert_eq!(q.heap_entries(), 0);
        assert_eq!(q.status_entries(), 0);
        assert_eq!(q.scheduled_total(), 10_000);
    }

    #[test]
    fn pinned_base_does_not_grow_status_window() {
        // Regression (PR 10): one far-future pending event used to pin
        // `base`, so the status window grew to O(total events scheduled) —
        // at 10⁶ job events behind a single maintenance timer that is a
        // gigabyte-scale leak. The sweep must keep the resident status state
        // O(live) throughout, and deliver everything in the right order.
        let mut q = EventQueue::new();
        let far = q.schedule(SimTime::from_secs(1e12), u64::MAX);

        let mut next_expected = 0u64;
        let total: u64 = 1_000_000;
        let batch: u64 = 1_000;
        for wave in 0..(total / batch) {
            let mut keys = Vec::new();
            for i in 0..batch {
                let payload = wave * batch + i;
                keys.push(q.schedule(SimTime::from_secs(payload as f64), payload));
            }
            // Cancel a few per wave so the straggler path sees cancellation.
            for (n, key) in keys.iter().enumerate() {
                if n % 250 == 0 {
                    assert!(q.cancel(*key));
                }
            }
            while q.len() > 1 {
                let ev = q.pop().unwrap();
                assert!(ev.event >= next_expected, "pop went backwards");
                next_expected = ev.event + 1;
            }
            assert!(
                q.status_entries() <= 2 * q.len() + 2 * 64 + 2,
                "status state grew unboundedly: {} entries for {} live",
                q.status_entries(),
                q.len()
            );
        }

        // The far-future straggler is still pending, cancellable, and the
        // queue drains clean.
        assert_eq!(q.len(), 1);
        assert!(q.cancel(far));
        assert!(!q.cancel(far), "double cancel reports false");
        assert!(q.pop().is_none());
        assert_eq!(q.status_entries(), 0);
        assert_eq!(q.scheduled_total(), total + 1);
    }

    #[test]
    fn swept_straggler_still_pops_in_order() {
        // A swept-out pending event must still deliver (not just cancel):
        // pop must find its status in the straggler set once `base` has
        // moved past it.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1e9), "far");
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_secs(i as f64), "near");
            let ev = q.pop().unwrap();
            assert_eq!(ev.event, "near");
        }
        assert!(
            q.status_entries() <= 2 * q.len() + 2 * 64 + 2,
            "window not swept: {} entries",
            q.status_entries()
        );
        let ev = q.pop().unwrap();
        assert_eq!(ev.event, "far");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
        assert_eq!(q.status_entries(), 0);
    }

    #[test]
    fn status_window_retires_delivered_prefix() {
        let mut q = EventQueue::new();
        for i in 0..1000 {
            q.schedule(SimTime::from_secs(i as f64), i);
        }
        for _ in 0..1000 {
            q.pop().unwrap();
        }
        assert_eq!(q.status_entries(), 0, "fully drained window must be empty");
        // Keys from the retired window are not cancellable, and new events
        // keep working.
        assert!(!q.cancel(EventKey(0)));
        let k = q.schedule(SimTime::ZERO, 1000);
        assert_eq!(k.sequence(), 1000);
        assert!(q.cancel(k));
    }
}
