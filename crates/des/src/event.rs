//! Time-ordered event queue.
//!
//! The queue is a binary heap keyed by `(SimTime, sequence number)`. The
//! sequence number makes the order of simultaneous events deterministic
//! (insertion order), which in turn makes whole simulations reproducible —
//! one of the requirements for the calibration experiments, where the same
//! trace must produce the same walltimes on every evaluation of a candidate
//! parameter vector.
//!
//! Events can be cancelled through the [`EventKey`] returned by
//! [`EventQueue::schedule`]; cancellation is lazy (a tombstone in the status
//! table), so it is O(1) and does not disturb the heap. The queue tracks the
//! status of every event it has ever issued — pending, delivered or
//! cancelled — in a flat `Vec` indexed by sequence number (one byte per
//! event), so a cancel racing a delivery is detected instead of corrupting
//! the live count: cancelling an already-popped key is a reported no-op.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    /// Raw sequence number (mostly useful in logs and tests).
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// An event plus the time it is scheduled for.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties deterministically.
    pub key: EventKey,
    /// The payload.
    pub event: E,
}

/// Lifecycle of one scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventStatus {
    /// Scheduled and not yet popped or cancelled.
    Pending,
    /// Popped by [`EventQueue::pop`] and handed to the caller.
    Delivered,
    /// Cancelled (or dropped by [`EventQueue::clear`]) before delivery.
    Cancelled,
}

/// Internal heap entry ordered so the `BinaryHeap` (a max-heap) pops the
/// earliest time / lowest sequence first.
struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest (time, seq) should be the heap maximum.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, cancellable, time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    /// Status of every event ever scheduled, indexed by sequence number.
    status: Vec<EventStatus>,
    /// Number of `Pending` events (the live count; never underflows because
    /// every decrement is guarded by a `Pending` status check).
    live: usize,
    cancelled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            status: Vec::new(),
            live: 0,
            cancelled_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            status: Vec::with_capacity(cap),
            live: 0,
            cancelled_total: 0,
        }
    }

    /// Schedules `event` at absolute time `time` and returns a cancellation key.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.status.len() as u64;
        self.status.push(EventStatus::Pending);
        self.live += 1;
        self.heap.push(HeapEntry { time, seq, event });
        EventKey(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending — i.e. had not been popped or cancelled before. A key
    /// whose event was already delivered is a no-op reporting `false` (it
    /// must not leave a tombstone behind, or the live count would drift).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.status.get_mut(key.0 as usize) {
            Some(status @ EventStatus::Pending) => {
                *status = EventStatus::Cancelled;
                self.live -= 1;
                self.cancelled_total += 1;
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the next (earliest) non-cancelled event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            let status = &mut self.status[entry.seq as usize];
            if *status != EventStatus::Pending {
                continue; // cancelled tombstone — drop it
            }
            *status = EventStatus::Delivered;
            self.live -= 1;
            return Some(ScheduledEvent {
                time: entry.time,
                key: EventKey(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// Returns the time of the next non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries lazily so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.status[entry.seq as usize] == EventStatus::Pending {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of events currently pending (scheduled, not yet delivered or
    /// cancelled).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.status.len() as u64
    }

    /// Total number of events ever cancelled on this queue.
    pub fn cancelled_total(&self) -> u64 {
        self.cancelled_total
    }

    /// Removes every pending event (their keys then behave like cancelled
    /// ones: a later `cancel` reports `false`).
    ///
    /// The status table is deliberately *not* truncated: sequence numbers
    /// keep growing monotonically, so an `EventKey` issued before the clear
    /// can never alias an event scheduled after it. The cost is one byte per
    /// event ever scheduled for the queue's lifetime — bounded by the run's
    /// total event count, which the engine already tracks (a fresh queue per
    /// simulation keeps it per-run).
    pub fn clear(&mut self) {
        for entry in self.heap.drain() {
            let status = &mut self.status[entry.seq as usize];
            if *status == EventStatus::Pending {
                *status = EventStatus::Cancelled;
            }
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventKey(99)));
    }

    #[test]
    fn cancel_after_delivery_is_rejected() {
        // Regression: cancelling a key whose event was already popped used to
        // insert a permanent tombstone, making `len()` underflow (panic in
        // debug, a huge bogus count in release) on the next computation.
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1.0), "a");
        let delivered = q.pop().unwrap();
        assert_eq!(delivered.key, k);
        assert!(!q.cancel(k), "consumed key must not be cancellable");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.cancelled_total(), 0);

        // The queue keeps functioning normally afterwards.
        let k2 = q.schedule(SimTime::from_secs(2.0), "b");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(k2));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.cancel(k);
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.cancelled_total(), 1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn cleared_keys_cannot_be_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(!q.cancel(k));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
