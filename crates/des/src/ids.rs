//! Typed index identifiers.
//!
//! Simulation state is held in flat vectors (sites, hosts, links, jobs, …) and
//! referenced by index. Using raw `usize` everywhere invites mixing up a host
//! index with a site index; the [`define_id!`] macro stamps out zero-cost
//! newtype wrappers with the small trait surface the rest of the workspace
//! needs (ordering, hashing, `Display`, conversion from/to `usize`).

/// Defines a newtype identifier around `usize`.
///
/// ```
/// cgsim_des::define_id!(ExampleId, "example");
/// let id = ExampleId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "example#3");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $label:literal) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!($label, "#{}"), self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    define_id!(TestId, "test");

    #[test]
    fn roundtrip_and_display() {
        let id = TestId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(TestId::from(42), id);
        assert_eq!(format!("{id}"), "test#42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TestId::new(1) < TestId::new(2));
        assert_eq!(TestId::new(7), TestId::new(7));
    }

    #[test]
    fn usable_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TestId::new(1), "one");
        assert_eq!(m[&TestId::new(1)], "one");
    }
}
