//! Property-based tests for the DES substrate.

use cgsim_des::stats::{geometric_mean, mean, percentile_sorted, OnlineStats, Summary};
use cgsim_des::{EventQueue, FluidModel, Rng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order and every live event is
    /// delivered exactly once.
    #[test]
    fn event_queue_orders_and_conserves(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen = vec![false; times.len()];
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last);
            last = ev.time;
            prop_assert!(!seen[ev.event]);
            seen[ev.event] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Cancelled events are never delivered; everything else is.
    #[test]
    fn event_queue_cancellation(times in prop::collection::vec(0.0f64..1e3, 1..100),
                                cancel_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            keys.push(q.schedule(SimTime::from_secs(t), i));
        }
        let mut cancelled = std::collections::HashSet::new();
        for (i, &c) in cancel_mask.iter().enumerate() {
            if c && i < keys.len() {
                q.cancel(keys[i]);
                cancelled.insert(i);
            }
        }
        let mut delivered = std::collections::HashSet::new();
        while let Some(ev) = q.pop() {
            delivered.insert(ev.event);
        }
        for i in 0..times.len() {
            if cancelled.contains(&i) {
                prop_assert!(!delivered.contains(&i));
            } else {
                prop_assert!(delivered.contains(&i));
            }
        }
    }

    /// Arbitrary interleavings of pops and (possibly stale) cancels never
    /// corrupt the live count: `len()` always equals scheduled − delivered −
    /// cancelled. Regression property for the cancel-after-delivery bug,
    /// where a consumed key left a permanent tombstone and `len()`
    /// underflowed `usize`.
    #[test]
    fn event_queue_len_is_always_consistent(
        times in prop::collection::vec(0.0f64..1e3, 1..100),
        ops in prop::collection::vec((any::<bool>(), 0usize..100), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            keys.push(q.schedule(SimTime::from_secs(t), i));
        }
        let mut delivered = 0usize;
        let mut cancelled = 0usize;
        for &(do_pop, k) in &ops {
            if do_pop {
                if q.pop().is_some() {
                    delivered += 1;
                }
            } else if q.cancel(keys[k % keys.len()]) {
                cancelled += 1;
            }
        }
        prop_assert_eq!(q.len(), times.len() - delivered - cancelled);
        prop_assert_eq!(q.cancelled_total() as usize, cancelled);
        prop_assert_eq!(q.scheduled_total() as usize, times.len());
    }

    /// Two models built from the same scenario description produce
    /// bit-identical max-min rates — the determinism contract of the
    /// slab-indexed fluid model.
    #[test]
    fn fluid_rates_reproducible_across_rebuilds(
        caps in prop::collection::vec(1.0f64..1000.0, 1..8),
        activities in prop::collection::vec((0usize..8, 0usize..8, 1.0f64..1e6), 1..40),
    ) {
        let build = || {
            let mut m = FluidModel::new();
            let ids: Vec<_> = caps.iter().map(|&c| m.add_resource(c)).collect();
            for &(a, b, work) in &activities {
                let r1 = ids[a % ids.len()];
                let r2 = ids[b % ids.len()];
                let route = if r1 == r2 { vec![r1] } else { vec![r1, r2] };
                m.add_activity(work, &route);
            }
            m.rates()
                .into_iter()
                .map(|(id, r)| (id, r.to_bits()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(build(), build());
    }

    /// Max-min sharing never over-allocates any resource and never assigns a
    /// negative rate.
    #[test]
    fn fluid_respects_capacities(
        caps in prop::collection::vec(1.0f64..1000.0, 1..8),
        activities in prop::collection::vec((0usize..8, 0usize..8, 1.0f64..1e6), 1..40),
    ) {
        let mut m = FluidModel::new();
        let ids: Vec<_> = caps.iter().map(|&c| m.add_resource(c)).collect();
        for &(a, b, work) in &activities {
            let r1 = ids[a % ids.len()];
            let r2 = ids[b % ids.len()];
            let route = if r1 == r2 { vec![r1] } else { vec![r1, r2] };
            m.add_activity(work, &route);
        }
        for (i, &r) in ids.iter().enumerate() {
            let alloc = m.allocated_on(r);
            prop_assert!(alloc <= caps[i] * (1.0 + 1e-6) + 1e-9,
                "resource {} over-allocated: {} > {}", i, alloc, caps[i]);
        }
        for (_, rate) in m.rates() {
            prop_assert!(rate >= 0.0);
        }
    }

    /// Advancing the fluid model until all activities finish conserves work:
    /// the saturated single-link case completes in total_work / capacity.
    #[test]
    fn fluid_single_link_work_conservation(
        cap in 1.0f64..500.0,
        works in prop::collection::vec(1.0f64..1e4, 1..20),
    ) {
        let mut m = FluidModel::new();
        let link = m.add_resource(cap);
        for &w in &works {
            m.add_activity(w, &[link]);
        }
        let mut elapsed = 0.0;
        let mut guard = 0;
        while m.activity_count() > 0 {
            let dt = m.time_to_next_completion().expect("in-flight activities");
            elapsed += dt.as_secs();
            m.advance(dt);
            guard += 1;
            prop_assert!(guard < 10_000);
        }
        let expected = works.iter().sum::<f64>() / cap;
        prop_assert!((elapsed - expected).abs() < expected * 1e-6 + 1e-6,
            "elapsed {} vs expected {}", elapsed, expected);
    }

    /// Percentiles stay inside [min, max] and the median of a sorted sample is
    /// monotone in the requested percentile.
    #[test]
    fn percentiles_are_bounded_and_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = percentile_sorted(&sorted, 10.0);
        let p50 = percentile_sorted(&sorted, 50.0);
        let p90 = percentile_sorted(&sorted, 90.0);
        prop_assert!(p10 >= sorted[0] - 1e-9);
        prop_assert!(p90 <= sorted[sorted.len() - 1] + 1e-9);
        prop_assert!(p10 <= p50 + 1e-9);
        prop_assert!(p50 <= p90 + 1e-9);
    }

    /// The geometric mean of positive values never exceeds the arithmetic mean
    /// (AM–GM inequality).
    #[test]
    fn am_gm_inequality(values in prop::collection::vec(1e-3f64..1e6, 1..100)) {
        let gm = geometric_mean(&values);
        let am = mean(&values);
        prop_assert!(gm <= am * (1.0 + 1e-9));
    }

    /// Merging two online accumulators equals accumulating everything at once.
    #[test]
    fn online_stats_merge_consistency(
        a in prop::collection::vec(-1e4f64..1e4, 0..100),
        b in prop::collection::vec(-1e4f64..1e4, 0..100),
    ) {
        let mut sa = OnlineStats::new();
        let mut sb = OnlineStats::new();
        let mut sall = OnlineStats::new();
        for &x in &a { sa.push(x); sall.push(x); }
        for &x in &b { sb.push(x); sall.push(x); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), sall.count());
        if sall.count() > 0 {
            prop_assert!((sa.mean() - sall.mean()).abs() < 1e-6);
            prop_assert!((sa.variance() - sall.variance()).abs() < 1e-4);
        }
    }

    /// Uniform samples stay in [0,1) and weighted choice never picks an index
    /// whose weight is zero.
    #[test]
    fn rng_uniform_and_weighted(seed in any::<u64>(), weights in prop::collection::vec(0.0f64..10.0, 2..10)) {
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
        if weights.iter().sum::<f64>() > 0.0 {
            for _ in 0..100 {
                let idx = rng.weighted_index(&weights);
                prop_assert!(weights[idx] > 0.0);
            }
        }
    }

    /// Summary::of never panics on finite inputs and is internally consistent.
    #[test]
    fn summary_consistency(values in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let s = Summary::of(&values).unwrap();
        prop_assert_eq!(s.count, values.len());
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// The engine's clock never runs backwards for arbitrarily interleaved
    /// scheduling patterns.
    #[test]
    fn engine_clock_is_monotone(delays in prop::collection::vec(0.0f64..100.0, 1..100)) {
        use cgsim_des::{Context, Engine, EventHandler};

        struct Model {
            delays: Vec<f64>,
            cursor: usize,
            observed: Vec<f64>,
        }
        impl EventHandler<u32> for Model {
            fn handle(&mut self, ctx: &mut Context<'_, u32>, _event: u32) {
                self.observed.push(ctx.now().as_secs());
                if self.cursor < self.delays.len() {
                    let d = self.delays[self.cursor];
                    self.cursor += 1;
                    ctx.schedule_in(SimTime::from_secs(d), 0);
                }
            }
        }

        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, 0);
        let mut model = Model { delays, cursor: 0, observed: Vec::new() };
        engine.run(&mut model);
        for pair in model.observed.windows(2) {
            prop_assert!(pair[1] >= pair[0]);
        }
    }
}
